// E7 — Corollary 7.1 (ACT): the wait-free solvability decision.
//
// Regenerates the corollary's verdicts across the paper's tasks: the IS
// task is solvable at depth 1, the full Chr^2 task at depth 2 (the t = n
// degeneracy of Section 7: GACT collapses to ACT in the wait-free case),
// while the total-order task and 2-process consensus exhaust every depth.
// Benchmarks the search per task and depth.
//
// Usage: bench_act_wait_free [max_depth] [gbench args...] — caps every
// task's search depth (default 3, the historical per-task maxima).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_size.h"
#include "core/act_solver.h"
#include "tasks/standard_tasks.h"

namespace {

using namespace gact;

int g_max_depth = 3;

void report_task(const tasks::Task& task, int max_k) {
    const core::ActResult r = core::solve_act(task, max_k);
    std::cout << task.name << ": ";
    if (r.solvable) {
        std::cout << "solvable at depth " << r.witness_depth;
    } else {
        std::cout << "no witness up to depth " << max_k
                  << (r.exhausted_all_depths ? " (search exhausted)"
                                             : " (budget hit)");
    }
    std::cout << "; backtracks per depth:";
    for (std::size_t b : r.backtracks_per_depth) std::cout << " " << b;
    std::cout << "\n";
}

void print_report() {
    std::cout << "=== E7: wait-free solvability via ACT (Corollary 7.1) "
                 "===\n";
    report_task(tasks::immediate_snapshot_task(1).task,
                std::min(2, g_max_depth));
    report_task(tasks::immediate_snapshot_task(2).task,
                std::min(2, g_max_depth));
    report_task(tasks::t_resilience_task(1, 1).task,
                std::min(3, g_max_depth));  // Chr^2, t = n
    report_task(tasks::total_order_task(1).task, std::min(3, g_max_depth));
    report_task(tasks::consensus_task(2, 2), std::min(3, g_max_depth));
    report_task(tasks::k_set_agreement_task(2, 2, 2),
                std::min(1, g_max_depth));
    std::cout << std::endl;
}

void BM_ActImmediateSnapshot(benchmark::State& state) {
    const tasks::AffineTask is =
        tasks::immediate_snapshot_task(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_act(is.task, 2));
    }
}
BENCHMARK(BM_ActImmediateSnapshot)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_ActConsensusExhaustion(benchmark::State& state) {
    const tasks::Task consensus = tasks::consensus_task(2, 2);
    const int depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_act(consensus, depth));
    }
}
BENCHMARK(BM_ActConsensusExhaustion)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_ActTotalOrderExhaustion(benchmark::State& state) {
    const tasks::AffineTask lord = tasks::total_order_task(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_act(lord.task, 3));
    }
}
BENCHMARK(BM_ActTotalOrderExhaustion)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_max_depth =
        static_cast<int>(gact::bench::consume_size_arg(argc, argv, 3));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
