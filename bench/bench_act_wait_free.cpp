// E7 — Corollary 7.1 (ACT): the wait-free solvability decision, through
// the unified engine.
//
// Regenerates the corollary's verdicts across the paper's tasks by
// solving the registry's wait-free scenarios: the IS task is solvable at
// depth 1, the full Chr^2 task at depth 2 (the t = n degeneracy of
// Section 7: GACT collapses to ACT in the wait-free case), while the
// total-order task and 2-process consensus exhaust every depth.
// Benchmarks the search per task and depth.
//
// Usage: bench_act_wait_free [max_depth] [gbench args...] — caps every
// scenario's search depth (default 3, the historical per-task maxima).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_size.h"
#include "engine/engine.h"
#include "engine/scenario_registry.h"

namespace {

using namespace gact;

int g_max_depth = 3;

const engine::Engine& eng() {
    static const engine::Engine e;
    return e;
}

engine::Scenario capped(const char* name) {
    engine::Scenario s =
        *engine::ScenarioRegistry::standard().find(name);
    s.options.max_depth = std::min(s.options.max_depth, g_max_depth);
    return s;
}

void report_scenario(const engine::Scenario& scenario) {
    const engine::SolveReport r = eng().solve(scenario);
    std::cout << scenario.task.name << ": ";
    if (r.solvable()) {
        std::cout << "solvable at depth " << r.witness_depth;
    } else {
        std::cout << "no witness up to depth " << scenario.options.max_depth
                  << (r.verdict == engine::Verdict::kUnsolvableAtDepth
                          ? " (search exhausted)"
                          : " (budget hit)");
    }
    std::cout << "; backtracks per depth:";
    for (std::size_t b : r.backtracks_per_depth) std::cout << " " << b;
    std::cout << "\n";
}

void print_report() {
    std::cout << "=== E7: wait-free solvability via ACT (Corollary 7.1) "
                 "===\n";
    for (const char* name : {"is-1-wf", "is-2-wf", "chr2-2p-wf",
                             "lord-2p-wf", "consensus-2-wf",
                             "ksa-2p-k2-wf"}) {
        report_scenario(capped(name));
    }
    std::cout << std::endl;
}

void BM_ActImmediateSnapshot(benchmark::State& state) {
    const engine::Scenario scenario =
        capped(state.range(0) == 1 ? "is-1-wf" : "is-2-wf");
    for (auto _ : state) {
        benchmark::DoNotOptimize(eng().solve(scenario));
    }
}
BENCHMARK(BM_ActImmediateSnapshot)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_ActConsensusExhaustion(benchmark::State& state) {
    engine::Scenario scenario = capped("consensus-2-wf");
    scenario.options.max_depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(eng().solve(scenario));
    }
}
BENCHMARK(BM_ActConsensusExhaustion)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_ActTotalOrderExhaustion(benchmark::State& state) {
    const engine::Scenario scenario = capped("lord-2p-wf");
    for (auto _ : state) {
        benchmark::DoNotOptimize(eng().solve(scenario));
    }
}
BENCHMARK(BM_ActTotalOrderExhaustion)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_max_depth =
        static_cast<int>(gact::bench::consume_size_arg(argc, argv, 3));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
