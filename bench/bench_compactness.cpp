// E6 — Lemma 5.1: the metric space of runs is compact.
//
// Regenerates the lemma's construction: from a pseudo-random family of
// runs, the diagonal argument extracts a subsequence agreeing on longer
// and longer prefixes, so pairwise distances drop as 1/(1+k). Benchmarks
// the run metric and the extraction.
//
// Usage: bench_compactness [family_size] [gbench args...] — size of the
// random run family in the report (default 2000).
#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "bench_size.h"
#include "iis/compactness.h"
#include "iis/run_enumeration.h"

namespace {

using namespace gact;

std::size_t g_family_size = 2000;

std::vector<iis::Run> random_family(std::size_t count) {
    std::mt19937 rng(2024);
    std::vector<iis::Run> out;
    out.reserve(count);
    while (out.size() < count) {
        iis::Run r = iis::random_stabilized_run(rng, 3, 3);
        // Full participation keeps the classes interesting: a run whose
        // first round is a singleton is constant forever.
        if (r.participants() == ProcessSet::full(3)) out.push_back(std::move(r));
    }
    return out;
}

void print_report() {
    std::cout << "=== E6: compactness of the run space (Lemma 5.1) ===\n";
    const std::vector<iis::Run> family = random_family(g_family_size);
    std::cout << "family of " << family.size()
              << " random stabilized runs (3 processes)\n";
    const iis::DiagonalExtraction extraction =
        iis::diagonal_extraction(family, 5);
    for (std::size_t depth = 0; depth < extraction.class_sizes.size();
         ++depth) {
        std::cout << "depth " << depth
                  << ": survivors = " << extraction.class_sizes[depth]
                  << " (bound on distance to limit: 1/" << depth + 2 << ")\n";
    }
    Rational max_d(0);
    for (const iis::Run& r : extraction.survivors) {
        const Rational d = r.distance_to(extraction.limit);
        if (d > max_d) max_d = d;
    }
    std::cout << "max distance of a survivor to the limit: "
              << max_d.to_string()
              << "\nthe diagonal subsequence converges, as the lemma "
                 "proves.\n"
              << std::endl;
}

void BM_RunDistance(benchmark::State& state) {
    const auto family = random_family(64);
    std::size_t i = 0;
    for (auto _ : state) {
        const iis::Run& a = family[i % family.size()];
        const iis::Run& b = family[(i + 7) % family.size()];
        benchmark::DoNotOptimize(a.distance_to(b));
        ++i;
    }
}
BENCHMARK(BM_RunDistance);

void BM_DiagonalExtraction(benchmark::State& state) {
    const auto family = random_family(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(iis::diagonal_extraction(family, 3));
    }
}
BENCHMARK(BM_DiagonalExtraction)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_MinimalRun(benchmark::State& state) {
    const auto family = random_family(64);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(family[i % family.size()].minimal());
        ++i;
    }
}
BENCHMARK(BM_MinimalRun);

}  // namespace

int main(int argc, char** argv) {
    g_family_size = static_cast<std::size_t>(
        gact::bench::consume_size_arg(argc, argv, 2000));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
