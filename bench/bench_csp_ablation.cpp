// E12 (ablation) — design choices of the chromatic-map solver.
//
// The solver exposes its search strategy through SolverConfig: the seed's
// plain backtracker (SolverConfig::naive()) against forward checking with
// MRV/degree variable ordering, the incremental layers on top of FC —
// the constraint-evaluation cache (core/eval_cache.h) and nogood
// learning (core/nogood_store.h) — and a portfolio race. This bench pits
// the engine ladder against the Proposition 9.2 instance — the chromatic
// simplicial approximation K(T) -> L_t for n = 2, t = 1 — across the two
// orthogonal problem ablations the seed measured: identity fixing of R_0
// and radial-projection candidate guidance.
//
// Per problem cell it prints one row per engine:
//   naive            — the seed backtracker (baseline);
//   FC               — forward checking + MRV, caches and nogoods OFF
//                      (the PR-2 engine, kept as the wall-time baseline
//                      for the incremental layers);
//   FC+cache         — plus the evaluation cache;
//   FC+cache+nogoods — plus nogood learning (the PR-3 shipped engine);
//   +backjump        — plus conflict-directed backjumping
//                      (SolverConfig::fast(), the shipped default);
//   warm re-solve    — the shipped engine re-solving with a
//                      SharedNogoodPool its own cold run populated
//                      (cross-solve nogood reuse);
//   portfolio x2     — two diversified shipped searches racing.
// Rows report found/exhausted, backtracks, backjumps, nogood
// prunings/recordings, pool seeding, cache hit rates, and wall time; the
// summary lines compare naive vs the shipped engine (backtracks), FC vs
// the layered engines (wall time), backjump-off vs -on (backtracks —
// strictly fewer is the PR-4 acceptance bar), and cold vs warm (reuse).
//
// Usage: bench_csp_ablation [extra_stages] [gbench args...]
// `extra_stages` (default 2) is the number of stabilization stages past
// Chr^2; CI smoke-runs pass 1, so the default instance (the source of
// the ROADMAP backtrack numbers) only runs when invoked by hand.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_size.h"
#include "core/lt_pipeline.h"

namespace {

using namespace gact;
using core::ChromaticMapProblem;
using core::LtGuidance;
using core::SolverConfig;
using core::TerminatingSubdivision;

std::size_t g_extra_stages = 2;

struct Instance {
    tasks::AffineTask task = tasks::t_resilience_task(2, 1);
    TerminatingSubdivision tsub;

    Instance() {
        tsub = TerminatingSubdivision(
            topo::ChromaticComplex::standard_simplex(2));
        const auto nothing = [](const topo::SubdividedComplex&,
                                const topo::Simplex&) { return false; };
        tsub.advance(nothing);
        tsub.advance(nothing);
        for (std::size_t i = 0; i < g_extra_stages; ++i) {
            tsub.advance([](const topo::SubdividedComplex& cx,
                            const topo::Simplex& s) {
                return core::lt_stable_rule(2, 1, cx, s);
            });
        }
    }

    ChromaticMapProblem problem(bool fix_identity, bool guide,
                                core::SharedNogoodPool* pool = nullptr) const {
        return core::lt_approximation_problem(
            task, tsub, fix_identity,
            guide ? LtGuidance::kRadial : LtGuidance::kNone, nullptr, pool);
    }
};

const Instance& instance() {
    static const Instance i;
    return i;
}

struct Cell {
    bool found = false;
    std::size_t backtracks = 0;
    bool exhausted = false;
    double millis = 0.0;
    std::size_t backjumps = 0;
    std::size_t nogood_prunings = 0;
    std::size_t nogoods_recorded = 0;
    std::size_t pool_seeded = 0;
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
};

Cell run_cell(const ChromaticMapProblem& problem, const SolverConfig& config) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = core::solve_chromatic_map(problem, config);
    const auto end = std::chrono::steady_clock::now();
    Cell cell;
    cell.found = result.map.has_value();
    cell.backtracks = result.backtracks;
    cell.exhausted = result.exhausted;
    cell.millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    cell.backjumps = result.backjumps;
    cell.nogood_prunings = result.nogood_prunings;
    cell.nogoods_recorded = result.nogoods_recorded;
    cell.pool_seeded = result.pool_seeded;
    cell.cache_hits = result.eval_cache_hits;
    cell.cache_misses = result.eval_cache_misses;
    return cell;
}

void print_cell(const char* engine, const Cell& c) {
    std::cout << "    " << engine << ": "
              << (c.found ? "found" : "NOT found") << ", " << c.backtracks
              << " backtracks, " << c.millis << " ms";
    if (c.backjumps != 0) std::cout << ", " << c.backjumps << " backjumps";
    if (c.nogoods_recorded != 0 || c.nogood_prunings != 0) {
        std::cout << ", nogoods " << c.nogoods_recorded << " recorded / "
                  << c.nogood_prunings << " prunings";
    }
    if (c.pool_seeded != 0) {
        std::cout << ", pool " << c.pool_seeded << " seeded";
    }
    if (c.cache_hits + c.cache_misses != 0) {
        const double rate = 100.0 * static_cast<double>(c.cache_hits) /
                            static_cast<double>(c.cache_hits + c.cache_misses);
        std::cout << ", cache " << static_cast<int>(rate) << "% hits";
    }
    std::cout << (c.exhausted || c.found ? "" : " (budget hit)") << "\n";
}

/// The engine ladder of one problem cell (see the header comment).
SolverConfig fc_plain_config(std::size_t budget) {
    SolverConfig c = SolverConfig::fast(budget);
    c.eval_cache = false;
    c.nogood_learning = false;
    c.backjumping = false;
    c.allowed_lru_capacity = 0;
    return c;
}

SolverConfig fc_cache_config(std::size_t budget) {
    SolverConfig c = SolverConfig::fast(budget);
    c.nogood_learning = false;
    c.backjumping = false;
    return c;
}

SolverConfig fc_nogoods_config(std::size_t budget) {
    SolverConfig c = SolverConfig::fast(budget);
    c.backjumping = false;
    return c;
}

void print_report() {
    std::cout << "=== E12 (ablation): chromatic-map solver engines on the "
                 "L_t (n=2, t=1) approximation (extra_stages="
              << g_extra_stages << ") ===\n";
    const Instance& inst = instance();
    struct Config {
        const char* name;
        bool fix;
        bool guide;
        std::size_t budget;
    };
    const Config configs[] = {
        {"identity-fixed + radial guidance (shipped)", true, true, 2000000},
        {"identity-fixed, unguided candidates", true, false, 2000000},
        {"free R_0 (no fixing), radial guidance", false, true, 2000000},
    };
    for (const Config& c : configs) {
        const auto problem = inst.problem(c.fix, c.guide);
        std::cout << c.name << ":\n";
        const Cell naive =
            run_cell(problem, SolverConfig::naive(c.budget));
        print_cell("naive (seed backtracker)   ", naive);
        const Cell fc_plain = run_cell(problem, fc_plain_config(c.budget));
        print_cell("FC (PR-2 engine, no cache) ", fc_plain);
        const Cell fc_cache = run_cell(problem, fc_cache_config(c.budget));
        print_cell("FC+cache                   ", fc_cache);
        const Cell fc_nogoods =
            run_cell(problem, fc_nogoods_config(c.budget));
        print_cell("FC+cache+nogoods (PR-3)    ", fc_nogoods);
        const Cell fast = run_cell(problem, SolverConfig::fast(c.budget));
        print_cell("FC+cache+nogoods+backjump  ", fast);
        // Cross-solve reuse: the shipped engine against a pool its own
        // cold run populated (the cold run repeats the `fast` cell, plus
        // publishing).
        core::SharedNogoodPool pool;
        const auto pooled_problem = inst.problem(c.fix, c.guide, &pool);
        const Cell cold = run_cell(pooled_problem, SolverConfig::fast(c.budget));
        const Cell warm = run_cell(pooled_problem, SolverConfig::fast(c.budget));
        print_cell("warm re-solve (shared pool)", warm);
        const Cell portfolio =
            run_cell(problem, SolverConfig::portfolio(2, c.budget));
        print_cell("portfolio x2 (shipped race)", portfolio);

        // The incremental layers must not change what is found, only how
        // fast; a divergence is a solver bug ONLY when the not-found
        // side proved unsatisfiability (exhausted) — a budget-limited
        // plain FC losing to the nogood engine is legitimate pruning.
        const auto settled_disagree = [&fc_plain](const Cell& layered) {
            return layered.found != fc_plain.found &&
                   (layered.found ? fc_plain.exhausted : layered.exhausted);
        };
        if (settled_disagree(fc_cache) || settled_disagree(fc_nogoods) ||
            settled_disagree(fast) || settled_disagree(warm)) {
            std::cout << "    cache-vs-plain: engines DISAGREE on "
                         "satisfiability — solver bug\n";
        } else if (fc_cache.found != fc_plain.found ||
                   fast.found != fc_plain.found) {
            std::cout << "    cache-vs-plain: plain FC inconclusive at its "
                         "budget; the layered engine settled the instance "
                         "(wall times not comparable)\n";
        } else if (fc_plain.millis > 0.0 && fast.millis > 0.0) {
            std::cout << "    FC wall time: " << fc_plain.millis << " -> "
                      << fc_cache.millis << " ms (cache) -> "
                      << fc_nogoods.millis << " ms (cache+nogoods) -> "
                      << fast.millis << " ms (+backjump), speedup x"
                      << (fc_plain.millis / fast.millis) << "\n";
        }
        // The two PR-4 summary lines: backjumping (vs the PR-3 engine on
        // the same problem) and cross-solve reuse (cold vs warm against
        // one pool).
        if (fast.found == fc_nogoods.found &&
            fast.exhausted == fc_nogoods.exhausted) {
            std::cout << "    backjumping: " << fc_nogoods.backtracks
                      << " -> " << fast.backtracks << " backtracks ("
                      << (fast.backtracks < fc_nogoods.backtracks
                              ? "strictly fewer"
                              : fast.backtracks == fc_nogoods.backtracks
                                    ? "equal"
                                    : "MORE — regression")
                      << "), " << fast.backjumps << " jumps\n";
        }
        if (cold.found == warm.found && cold.exhausted == warm.exhausted) {
            std::cout << "    nogood reuse: cold " << cold.backtracks
                      << " -> warm " << warm.backtracks << " backtracks ("
                      << warm.pool_seeded << " nogoods seeded from the "
                      << "pool)\n";
        }
        const bool loser_exhausted =
            naive.found ? fast.exhausted : naive.exhausted;
        if (naive.found != fast.found && loser_exhausted) {
            // One engine proved the opposite of what the other found.
            std::cout << "    old-vs-new: engines DISAGREE on "
                         "satisfiability — solver bug\n";
        } else if (naive.found != fast.found) {
            const char* loser = naive.found ? "FC+MRV" : "naive";
            const Cell& found_cell = naive.found ? naive : fast;
            const Cell& lost_cell = naive.found ? fast : naive;
            std::cout << "    old-vs-new: " << loser
                      << " inconclusive at its budget (" << lost_cell.backtracks
                      << " backtracks); the other engine found a witness at "
                      << found_cell.backtracks << "\n";
        } else if (!naive.found && !naive.exhausted && !fast.exhausted) {
            // Neither engine settled the instance: budget-truncated
            // backtrack counts measure the budget, not the engines.
            std::cout << "    old-vs-new: both inconclusive (budgets "
                         "exhausted without a witness or a refutation); "
                         "backtrack counts not comparable\n";
        } else if (!naive.found && naive.exhausted != fast.exhausted) {
            const char* settled = naive.exhausted ? "naive" : "FC+MRV";
            const char* hit = naive.exhausted ? "FC+MRV" : "naive";
            std::cout << "    old-vs-new: " << settled
                      << " proved unsatisfiability; " << hit
                      << " budgeted out (counts not comparable)\n";
        } else {
            std::cout << "    old-vs-new: " << naive.backtracks << " -> "
                      << fast.backtracks << " backtracks ("
                      << (fast.backtracks < naive.backtracks
                              ? "strictly fewer"
                              : fast.backtracks == naive.backtracks
                                    ? "equal"
                                    : "MORE — regression")
                      << "), " << naive.millis << " -> " << fast.millis
                      << " ms\n";
        }
    }
    std::cout << std::endl;
}

void BM_SolverNaive(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, SolverConfig::naive()));
    }
}
BENCHMARK(BM_SolverNaive)->Unit(benchmark::kMillisecond);

void BM_SolverFast(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, SolverConfig::fast()));
    }
}
BENCHMARK(BM_SolverFast)->Unit(benchmark::kMillisecond);

void BM_SolverFcPlain(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, fc_plain_config(1000000)));
    }
}
BENCHMARK(BM_SolverFcPlain)->Unit(benchmark::kMillisecond);

void BM_SolverFastUnguided(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, SolverConfig::fast(2000000)));
    }
}
BENCHMARK(BM_SolverFastUnguided)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_SolverFastNoFixing(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(false, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, SolverConfig::fast(2000000)));
    }
}
BENCHMARK(BM_SolverFastNoFixing)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_extra_stages = static_cast<std::size_t>(
        gact::bench::consume_size_arg(argc, argv, 2));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
