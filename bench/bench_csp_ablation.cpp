// E12 (ablation) — design choices of the chromatic-map solver.
//
// DESIGN.md calls out two solver decisions: (i) decomposing the free
// vertices into independent components (the three corner strips of the
// L_1 collar), and (ii) ordering each vertex's candidates by geometric
// distance to the radial projection. This bench quantifies both against
// the Proposition 9.2 instance: without the geometric guidance the search
// degrades sharply, and the full-problem search without decomposition is
// reported for reference through the solver's backtrack counter.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "core/lt_pipeline.h"

namespace {

using namespace gact;
using core::ChromaticMapProblem;
using core::TerminatingSubdivision;

struct Instance {
    tasks::AffineTask task = tasks::t_resilience_task(2, 1);
    TerminatingSubdivision tsub;

    Instance() {
        tsub = TerminatingSubdivision(
            topo::ChromaticComplex::standard_simplex(2));
        const auto nothing = [](const topo::SubdividedComplex&,
                                const topo::Simplex&) { return false; };
        tsub.advance(nothing);
        tsub.advance(nothing);
        for (int i = 0; i < 2; ++i) {
            tsub.advance([](const topo::SubdividedComplex& cx,
                            const topo::Simplex& s) {
                return core::lt_stable_rule(2, 1, cx, s);
            });
        }
    }

    ChromaticMapProblem problem(bool fix_identity, bool guide) const {
        ChromaticMapProblem p;
        p.domain = &tsub.stable_complex();
        p.codomain = &task.task.outputs;
        p.allowed = [this](const topo::Simplex& sigma)
            -> const topo::SimplicialComplex& {
            return task.task.delta.at(tsub.stable_carrier(sigma));
        };
        if (fix_identity) {
            for (topo::VertexId v : tsub.stable_complex().vertex_ids()) {
                const auto lv = task.subdivision.find_vertex(
                    tsub.stable_position(v), tsub.stable_complex().color(v));
                if (lv.has_value() && task.l_complex.contains_vertex(*lv)) {
                    p.fixed[v] = *lv;
                }
            }
        }
        if (guide) {
            p.candidate_order = [this](topo::VertexId v) {
                const topo::Color color = tsub.stable_complex().color(v);
                const topo::BaryPoint target = core::radial_projection_l1(
                    task, tsub.stable_position(v));
                std::vector<std::pair<Rational, topo::VertexId>> scored;
                for (topo::VertexId w : task.task.outputs.vertex_ids()) {
                    if (task.task.outputs.color(w) != color) continue;
                    scored.emplace_back(
                        target.l1_distance(task.subdivision.position(w)), w);
                }
                std::sort(scored.begin(), scored.end());
                std::vector<topo::VertexId> order;
                for (const auto& [d, w] : scored) order.push_back(w);
                return order;
            };
        }
        return p;
    }
};

const Instance& instance() {
    static const Instance i;
    return i;
}

void print_report() {
    std::cout << "=== E12 (ablation): chromatic-map solver design choices "
                 "===\n";
    const Instance& inst = instance();
    struct Config {
        const char* name;
        bool fix;
        bool guide;
        std::size_t budget;
    };
    const Config configs[] = {
        {"identity-fixed + radial guidance (shipped)", true, true, 2000000},
        {"identity-fixed, unguided candidates", true, false, 2000000},
        {"free R_0 (no fixing), radial guidance", false, true, 2000000},
    };
    for (const Config& c : configs) {
        const auto problem = inst.problem(c.fix, c.guide);
        const auto result = core::solve_chromatic_map(problem, c.budget);
        std::cout << c.name << ": "
                  << (result.map ? "found" : "NOT found") << ", "
                  << result.backtracks << " backtracks"
                  << (result.exhausted ? "" : " (budget hit)") << "\n";
    }
    std::cout << std::endl;
}

void BM_SolverShipped(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_chromatic_map(problem));
    }
}
BENCHMARK(BM_SolverShipped)->Unit(benchmark::kMillisecond);

void BM_SolverUnguided(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_chromatic_map(problem, 2000000));
    }
}
BENCHMARK(BM_SolverUnguided)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_SolverNoFixing(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(false, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_chromatic_map(problem, 2000000));
    }
}
BENCHMARK(BM_SolverNoFixing)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
