// E12 (ablation) — design choices of the chromatic-map solver.
//
// The solver exposes its search strategy through SolverConfig: the seed's
// plain backtracker (SolverConfig::naive()) against forward checking with
// MRV/degree variable ordering, the incremental layers on top of FC —
// the constraint-evaluation cache (core/eval_cache.h) and nogood
// learning (core/nogood_store.h) — and a portfolio race. This bench pits
// the engine ladder against the Proposition 9.2 instance — the chromatic
// simplicial approximation K(T) -> L_t for n = 2, t = 1 — across the two
// orthogonal problem ablations the seed measured: identity fixing of R_0
// and radial-projection candidate guidance.
//
// Per problem cell it prints one row per engine:
//   naive            — the seed backtracker (baseline);
//   FC               — forward checking + MRV, caches and nogoods OFF
//                      (the PR-2 engine, kept as the wall-time baseline
//                      for the incremental layers);
//   FC+cache         — plus the evaluation cache;
//   FC+cache+nogoods — plus nogood learning (the PR-3 shipped engine);
//   +backjump        — plus conflict-directed backjumping
//                      (SolverConfig::fast(), the shipped default);
//   warm re-solve    — the shipped engine re-solving with a
//                      SharedNogoodPool its own cold run populated
//                      (cross-solve nogood reuse);
//   portfolio x2     — two diversified shipped searches racing (the
//                      shipped race now trades nogoods mid-flight:
//                      SolverConfig::live_exchange).
// After the cells, a dedicated exchange-ablation section races the
// free-R_0 *unguided* instance with the mid-flight exchange off vs on —
// the one report instance whose race runs long enough for the trade to
// reach the settling thread (see the section comment) — and a
// nogood-lifecycle section measures the PR-6 knobs on the same
// instance: Luby restarts off vs forced-frequent, and a deliberately
// tiny nogood store with GC off (the legacy at-capacity learning
// freeze) vs on (`restarts:` / `gc:` summary lines, gated by CI).
// Rows report found/exhausted, backtracks, backjumps, nogood
// prunings/recordings, pool seeding, exchange traffic, cache hit rates,
// and wall time; the summary lines compare naive vs the shipped engine
// (backtracks), FC vs the layered engines (wall time), backjump-off vs
// -on (backtracks — strictly fewer is the PR-4 acceptance bar), cold vs
// warm (reuse), and the portfolio with the exchange off vs on (the PR-5
// mid-flight number; CI fails on a regression past the race-noise
// slack).
//
// Usage: bench_csp_ablation [extra_stages] [gbench args...]
// `extra_stages` (default 2) is the number of stabilization stages past
// Chr^2; CI smoke-runs pass 1, so the default instance (the source of
// the ROADMAP backtrack numbers) only runs when invoked by hand.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_size.h"
#include "core/lt_pipeline.h"

namespace {

using namespace gact;
using core::ChromaticMapProblem;
using core::LtGuidance;
using core::SolverConfig;
using core::TerminatingSubdivision;

std::size_t g_extra_stages = 2;

struct Instance {
    tasks::AffineTask task = tasks::t_resilience_task(2, 1);
    TerminatingSubdivision tsub;

    Instance() {
        tsub = TerminatingSubdivision(
            topo::ChromaticComplex::standard_simplex(2));
        const auto nothing = [](const topo::SubdividedComplex&,
                                const topo::Simplex&) { return false; };
        tsub.advance(nothing);
        tsub.advance(nothing);
        for (std::size_t i = 0; i < g_extra_stages; ++i) {
            tsub.advance([](const topo::SubdividedComplex& cx,
                            const topo::Simplex& s) {
                return core::lt_stable_rule(2, 1, cx, s);
            });
        }
    }

    ChromaticMapProblem problem(bool fix_identity, bool guide,
                                core::SharedNogoodPool* pool = nullptr) const {
        return core::lt_approximation_problem(
            task, tsub, fix_identity,
            guide ? LtGuidance::kRadial : LtGuidance::kNone, nullptr, pool);
    }
};

const Instance& instance() {
    static const Instance i;
    return i;
}

struct Cell {
    bool found = false;
    bool exhausted = false;
    double millis = 0.0;
    core::SearchCounters counters;
};

Cell run_cell(const ChromaticMapProblem& problem, const SolverConfig& config) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = core::solve_chromatic_map(problem, config);
    const auto end = std::chrono::steady_clock::now();
    Cell cell;
    cell.found = result.map.has_value();
    cell.exhausted = result.exhausted;
    cell.millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    cell.counters = result.counters;
    return cell;
}

void print_cell(const char* engine, const Cell& c) {
    const core::SearchCounters& n = c.counters;
    std::cout << "    " << engine << ": "
              << (c.found ? "found" : "NOT found") << ", " << n.backtracks
              << " backtracks, " << c.millis << " ms";
    if (n.backjumps != 0) std::cout << ", " << n.backjumps << " backjumps";
    if (n.nogoods_recorded != 0 || n.nogood_prunings != 0) {
        std::cout << ", nogoods " << n.nogoods_recorded << " recorded / "
                  << n.nogood_prunings << " prunings";
    }
    if (n.pool_seeded != 0) {
        std::cout << ", pool " << n.pool_seeded << " seeded";
    }
    if (n.exchange_published != 0 || n.exchange_imported != 0) {
        std::cout << ", exchange " << n.exchange_published
                  << " published / " << n.exchange_imported << " imported";
    }
    if (n.eval_cache_hits + n.eval_cache_misses != 0) {
        const double rate =
            100.0 * static_cast<double>(n.eval_cache_hits) /
            static_cast<double>(n.eval_cache_hits + n.eval_cache_misses);
        std::cout << ", cache " << static_cast<int>(rate) << "% hits";
    }
    std::cout << (c.exhausted || c.found ? "" : " (budget hit)") << "\n";
}

/// The engine ladder of one problem cell (see the header comment).
SolverConfig fc_plain_config(std::size_t budget) {
    SolverConfig c = SolverConfig::fast(budget);
    c.eval_cache = false;
    c.nogood_learning = false;
    c.backjumping = false;
    c.allowed_lru_capacity = 0;
    return c;
}

SolverConfig fc_cache_config(std::size_t budget) {
    SolverConfig c = SolverConfig::fast(budget);
    c.nogood_learning = false;
    c.backjumping = false;
    return c;
}

SolverConfig fc_nogoods_config(std::size_t budget) {
    SolverConfig c = SolverConfig::fast(budget);
    c.backjumping = false;
    return c;
}

void print_report() {
    std::cout << "=== E12 (ablation): chromatic-map solver engines on the "
                 "L_t (n=2, t=1) approximation (extra_stages="
              << g_extra_stages << ") ===\n";
    const Instance& inst = instance();
    struct Config {
        const char* name;
        bool fix;
        bool guide;
        std::size_t budget;
    };
    const Config configs[] = {
        {"identity-fixed + radial guidance (shipped)", true, true, 2000000},
        {"identity-fixed, unguided candidates", true, false, 2000000},
        {"free R_0 (no fixing), radial guidance", false, true, 2000000},
    };
    for (const Config& c : configs) {
        const auto problem = inst.problem(c.fix, c.guide);
        std::cout << c.name << ":\n";
        const Cell naive =
            run_cell(problem, SolverConfig::naive(c.budget));
        print_cell("naive (seed backtracker)   ", naive);
        const Cell fc_plain = run_cell(problem, fc_plain_config(c.budget));
        print_cell("FC (PR-2 engine, no cache) ", fc_plain);
        const Cell fc_cache = run_cell(problem, fc_cache_config(c.budget));
        print_cell("FC+cache                   ", fc_cache);
        const Cell fc_nogoods =
            run_cell(problem, fc_nogoods_config(c.budget));
        print_cell("FC+cache+nogoods (PR-3)    ", fc_nogoods);
        const Cell fast = run_cell(problem, SolverConfig::fast(c.budget));
        print_cell("FC+cache+nogoods+backjump  ", fast);
        // Cross-solve reuse: the shipped engine against a pool its own
        // cold run populated (the cold run repeats the `fast` cell, plus
        // publishing).
        core::SharedNogoodPool pool;
        const auto pooled_problem = inst.problem(c.fix, c.guide, &pool);
        const Cell cold = run_cell(pooled_problem, SolverConfig::fast(c.budget));
        const Cell warm = run_cell(pooled_problem, SolverConfig::fast(c.budget));
        print_cell("warm re-solve (shared pool)", warm);
        const Cell portfolio =
            run_cell(problem, SolverConfig::portfolio(2, c.budget));
        print_cell("portfolio x2 (shipped race)", portfolio);

        // The incremental layers must not change what is found, only how
        // fast; a divergence is a solver bug ONLY when the not-found
        // side proved unsatisfiability (exhausted) — a budget-limited
        // plain FC losing to the nogood engine is legitimate pruning.
        const auto settled_disagree = [&fc_plain](const Cell& layered) {
            return layered.found != fc_plain.found &&
                   (layered.found ? fc_plain.exhausted : layered.exhausted);
        };
        if (settled_disagree(fc_cache) || settled_disagree(fc_nogoods) ||
            settled_disagree(fast) || settled_disagree(warm)) {
            std::cout << "    cache-vs-plain: engines DISAGREE on "
                         "satisfiability — solver bug\n";
        } else if (fc_cache.found != fc_plain.found ||
                   fast.found != fc_plain.found) {
            std::cout << "    cache-vs-plain: plain FC inconclusive at its "
                         "budget; the layered engine settled the instance "
                         "(wall times not comparable)\n";
        } else if (fc_plain.millis > 0.0 && fast.millis > 0.0) {
            std::cout << "    FC wall time: " << fc_plain.millis << " -> "
                      << fc_cache.millis << " ms (cache) -> "
                      << fc_nogoods.millis << " ms (cache+nogoods) -> "
                      << fast.millis << " ms (+backjump), speedup x"
                      << (fc_plain.millis / fast.millis) << "\n";
        }
        // The two PR-4 summary lines: backjumping (vs the PR-3 engine on
        // the same problem) and cross-solve reuse (cold vs warm against
        // one pool).
        if (fast.found == fc_nogoods.found &&
            fast.exhausted == fc_nogoods.exhausted) {
            const std::size_t off = fc_nogoods.counters.backtracks;
            const std::size_t on = fast.counters.backtracks;
            std::cout << "    backjumping: " << off << " -> " << on
                      << " backtracks ("
                      << (on < off ? "strictly fewer"
                                   : on == off ? "equal"
                                               : "MORE — regression")
                      << "), " << fast.counters.backjumps << " jumps\n";
        }
        if (cold.found == warm.found && cold.exhausted == warm.exhausted) {
            std::cout << "    nogood reuse: cold "
                      << cold.counters.backtracks << " -> warm "
                      << warm.counters.backtracks << " backtracks ("
                      << warm.counters.pool_seeded
                      << " nogoods seeded from the " << "pool)\n";
        }
        const bool loser_exhausted =
            naive.found ? fast.exhausted : naive.exhausted;
        if (naive.found != fast.found && loser_exhausted) {
            // One engine proved the opposite of what the other found.
            std::cout << "    old-vs-new: engines DISAGREE on "
                         "satisfiability — solver bug\n";
        } else if (naive.found != fast.found) {
            const char* loser = naive.found ? "FC+MRV" : "naive";
            const Cell& found_cell = naive.found ? naive : fast;
            const Cell& lost_cell = naive.found ? fast : naive;
            std::cout << "    old-vs-new: " << loser
                      << " inconclusive at its budget ("
                      << lost_cell.counters.backtracks
                      << " backtracks); the other engine found a witness at "
                      << found_cell.counters.backtracks << "\n";
        } else if (!naive.found && !naive.exhausted && !fast.exhausted) {
            // Neither engine settled the instance: budget-truncated
            // backtrack counts measure the budget, not the engines.
            std::cout << "    old-vs-new: both inconclusive (budgets "
                         "exhausted without a witness or a refutation); "
                         "backtrack counts not comparable\n";
        } else if (!naive.found && naive.exhausted != fast.exhausted) {
            const char* settled = naive.exhausted ? "naive" : "FC+MRV";
            const char* hit = naive.exhausted ? "FC+MRV" : "naive";
            std::cout << "    old-vs-new: " << settled
                      << " proved unsatisfiability; " << hit
                      << " budgeted out (counts not comparable)\n";
        } else {
            const std::size_t old_bt = naive.counters.backtracks;
            const std::size_t new_bt = fast.counters.backtracks;
            std::cout << "    old-vs-new: " << old_bt << " -> " << new_bt
                      << " backtracks ("
                      << (new_bt < old_bt ? "strictly fewer"
                                          : new_bt == old_bt
                                                ? "equal"
                                                : "MORE — regression")
                      << "), " << naive.millis << " -> " << fast.millis
                      << " ms\n";
        }
    }

    // --- the mid-flight exchange ablation (PR 5) -----------------------
    // Measured on the free-R_0 UNGUIDED problem, deliberately not one of
    // the ladder cells above: it is the instance where the shipped
    // engine still searches long enough (hundreds of backtracks) for
    // the racing threads' mid-flight learning to reach the settling
    // thread before it finishes — on the radial-guided cells the race
    // settles too fast for any exchange to matter, which would make
    // this comparison vacuous. Counters report the settling thread, so
    // both numbers are one coherent search's account; they are racy by
    // nature (imports interleave differently run to run), so the
    // regression verdict allows race noise — only an exchange-on count
    // beyond twice the exchange-off count plus a small floor prints the
    // regression marker (which fails CI).
    {
        std::cout << "exchange ablation (free R_0, unguided candidates, "
                     "x2 threads):\n";
        const auto problem = inst.problem(false, false);
        SolverConfig race_off = SolverConfig::portfolio(2, 8000000);
        race_off.live_exchange = false;
        const Cell off_cell = run_cell(problem, race_off);
        print_cell("portfolio x2 (no exchange) ", off_cell);
        const Cell on_cell =
            run_cell(problem, SolverConfig::portfolio(2, 8000000));
        print_cell("portfolio x2 +exchange     ", on_cell);
        if (off_cell.found == on_cell.found &&
            off_cell.exhausted == on_cell.exhausted) {
            const std::size_t off = off_cell.counters.backtracks;
            const std::size_t on = on_cell.counters.backtracks;
            std::cout << "    exchange: x2 threads, off " << off
                      << " -> on " << on << " backtracks ("
                      << on_cell.counters.exchange_published
                      << " published / "
                      << on_cell.counters.exchange_imported << " imported"
                      << (on > 2 * off + 128
                              ? ") — MORE: exchange regression\n"
                              : on < off ? ", reduced)\n"
                                         : ", within race noise)\n");
        } else {
            std::cout << "    exchange: cells disagree on settling "
                         "(budget artifacts); backtracks not comparable\n";
        }
    }

    // --- the nogood-lifecycle ablation (PR 6) --------------------------
    // Same free-R_0 unguided instance as the exchange section, for the
    // same reason: its search runs long enough that restarts actually
    // fire and a tiny store actually fills. Single-threaded, so every
    // number here is deterministic.
    //
    // restarts: the shipped engine with the Luby schedule forced
    // frequent (unit = 16 backtracks) vs off. A restarted search replays
    // the identical DFS with a superset of the learned conflicts, so the
    // verdict is pinned; the backtrack count may move either way (the
    // replays re-spend budget, the extra nogoods prune), and only a
    // blow-up past twice the off count plus a floor is a regression.
    //
    // gc: the shipped engine against a deliberately tiny store (8
    // entries), with collection off — the legacy dead end where a full
    // store rejects every further conflict — vs on, where collections
    // evict the least active half and recording continues past the cap.
    // GC can only admit conflicts the frozen store rejected, so fewer
    // recordings with GC on is a regression.
    {
        std::cout << "nogood lifecycle ablation (free R_0, unguided "
                     "candidates):\n";
        const auto problem = inst.problem(false, false);
        SolverConfig restarts_off = SolverConfig::fast(8000000);
        restarts_off.restarts = false;
        const Cell r_off = run_cell(problem, restarts_off);
        print_cell("shipped, restarts off      ", r_off);
        SolverConfig restarts_on = SolverConfig::fast(8000000);
        restarts_on.restart_unit = 16;
        const Cell r_on = run_cell(problem, restarts_on);
        print_cell("shipped, Luby unit=16      ", r_on);
        if (r_off.found == r_on.found && r_off.exhausted == r_on.exhausted) {
            const std::size_t off = r_off.counters.backtracks;
            const std::size_t on = r_on.counters.backtracks;
            std::cout << "    restarts: off " << off << " -> on " << on
                      << " backtracks (" << r_on.counters.restarts
                      << " restarts"
                      << (on > 2 * off + 128
                              ? ") — MORE: restart regression\n"
                              : on < off ? ", reduced)\n" : ", bounded)\n");
        } else {
            std::cout << "    restarts: cells disagree on settling "
                         "(budget artifacts); backtracks not comparable — "
                         "solver bug if both settled\n";
        }

        SolverConfig frozen = SolverConfig::fast(8000000);
        frozen.nogood_capacity = 8;
        frozen.nogood_gc = false;
        const Cell gc_off = run_cell(problem, frozen);
        print_cell("tiny store (8), GC off     ", gc_off);
        SolverConfig collected = frozen;
        collected.nogood_gc = true;
        const Cell gc_on = run_cell(problem, collected);
        print_cell("tiny store (8), GC on      ", gc_on);
        const std::size_t frozen_recorded = gc_off.counters.nogoods_recorded;
        const std::size_t live_recorded = gc_on.counters.nogoods_recorded;
        std::cout << "    gc: capacity 8, off " << frozen_recorded
                  << " recorded (frozen at the cap) -> on " << live_recorded
                  << " recorded / " << gc_on.counters.nogoods_evicted
                  << " evicted"
                  << (live_recorded < frozen_recorded
                          ? " — FEWER: gc regression\n"
                          : live_recorded > collected.nogood_capacity
                                ? ", learning continued past the cap\n"
                                : ", store never filled at this size\n");
    }
    std::cout << std::endl;
}

void BM_SolverNaive(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, SolverConfig::naive()));
    }
}
BENCHMARK(BM_SolverNaive)->Unit(benchmark::kMillisecond);

void BM_SolverFast(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, SolverConfig::fast()));
    }
}
BENCHMARK(BM_SolverFast)->Unit(benchmark::kMillisecond);

void BM_SolverFcPlain(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, fc_plain_config(1000000)));
    }
}
BENCHMARK(BM_SolverFcPlain)->Unit(benchmark::kMillisecond);

void BM_SolverFastUnguided(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(true, false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, SolverConfig::fast(2000000)));
    }
}
BENCHMARK(BM_SolverFastUnguided)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_SolverFastNoFixing(benchmark::State& state) {
    const Instance& inst = instance();
    const auto problem = inst.problem(false, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solve_chromatic_map(problem, SolverConfig::fast(2000000)));
    }
}
BENCHMARK(BM_SolverFastNoFixing)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_extra_stages = static_cast<std::size_t>(
        gact::bench::consume_size_arg(argc, argv, 2));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
