// E13 — batched scenario solving: Engine::solve_batch, 1 thread vs N.
//
// The batch is the registry's standard quick sweep grid
// (ScenarioRegistry::quick_grid — every scenario family expanded at
// cheap parameter points, the same ~22 cells `gact_sweep --preset
// quick` runs): independent solvability questions of very different
// sizes (microsecond depth-0 witnesses up to the L_t pipeline), exactly
// the shape the self-scheduling shard pool targets: long solves overlap
// short ones instead of serializing. The report runs the grid
// sequentially and then sharded, and prints the speedup; reports are
// verified identical across the two runs.
//
// Usage: bench_engine_batch [num_scenarios] [gbench args...] — cap on how
// many grid cells run (default 0 = all; CI smoke passes 1).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>

#include "bench_size.h"
#include "engine/engine.h"
#include "engine/scenario_registry.h"

namespace {

using namespace gact;

std::size_t g_num_scenarios = 0;  // 0 = the whole quick sweep grid

std::vector<engine::Scenario> scenarios() {
    std::vector<engine::Scenario> out =
        engine::ScenarioRegistry::standard().quick_grid();
    if (g_num_scenarios != 0 && g_num_scenarios < out.size()) {
        out.resize(g_num_scenarios);
    }
    return out;
}

unsigned shard_width() {
    // At least 2 so the sharded leg always exercises the pool, capped at
    // 4 to keep the report stable across large machines.
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp(hw, 2u, 4u);
}

double run_batch(const engine::Engine& engine,
                 const std::vector<engine::Scenario>& batch,
                 unsigned threads,
                 std::vector<engine::SolveReport>& reports) {
    const auto start = std::chrono::steady_clock::now();
    reports = engine.solve_batch(batch, threads);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void print_report() {
    const auto batch = scenarios();
    const unsigned threads = shard_width();
    std::cout << "=== E13: Engine::solve_batch on " << batch.size()
              << " sweep grid cells, 1 thread vs " << threads << " ===\n";
    const engine::Engine engine;

    std::vector<engine::SolveReport> sequential;
    const double t1 = run_batch(engine, batch, 1, sequential);
    std::vector<engine::SolveReport> sharded;
    const double tn = run_batch(engine, batch, threads, sharded);

    // Reports carry wall times, so compare everything but the timings
    // (witnesses as vertex maps).
    bool identical = sequential.size() == sharded.size();
    for (std::size_t i = 0; identical && i < sequential.size(); ++i) {
        identical =
            sequential[i].scenario == sharded[i].scenario &&
            sequential[i].verdict == sharded[i].verdict &&
            sequential[i].detail == sharded[i].detail &&
            sequential[i].witness_depth == sharded[i].witness_depth &&
            sequential[i].total_backtracks == sharded[i].total_backtracks &&
            sequential[i].backtracks_per_depth ==
                sharded[i].backtracks_per_depth &&
            sequential[i].witness.has_value() ==
                sharded[i].witness.has_value() &&
            (!sequential[i].witness.has_value() ||
             sequential[i].witness->vertex_map() ==
                 sharded[i].witness->vertex_map()) &&
            sequential[i].model_runs.size() == sharded[i].model_runs.size();
    }
    for (const auto& report : sequential) {
        std::cout << "  " << report.summary() << "\n";
    }
    std::cout << "sequential: " << t1 << " ms; sharded x" << threads << ": "
              << tn << " ms; speedup " << (tn > 0 ? t1 / tn : 0.0) << "x; "
              << "reports identical: " << (identical ? "yes" : "NO — BUG")
              << "\n"
              << std::endl;
}

void BM_BatchSequential(benchmark::State& state) {
    const auto batch = scenarios();
    const engine::Engine engine;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.solve_batch(batch, 1));
    }
}
BENCHMARK(BM_BatchSequential)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_BatchSharded(benchmark::State& state) {
    const auto batch = scenarios();
    const engine::Engine engine;
    const unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.solve_batch(batch, threads));
    }
}
BENCHMARK(BM_BatchSharded)->Arg(2)->Arg(4)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_num_scenarios = static_cast<std::size_t>(
        gact::bench::consume_size_arg(argc, argv, 0));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
