// E14 — the exec substrate itself: what one fork/join round trip costs
// on the resident scheduler versus spawning-and-joining std::threads
// per call (the pattern every parallel layer used before src/exec/),
// plus steal throughput on a deliberately imbalanced fork.
//
// The spawn-per-call replica below is a faithful local copy of the old
// util/parallel.h loop: one std::thread per shard, self-scheduling
// atomic index, join-all — so the comparison isolates exactly what the
// refactor removed (thread creation + teardown per call), not a change
// in scheduling shape.
//
// Usage: bench_exec [rounds] [gbench args...] — fork/join rounds per
// measured leg of the report (default 2000; CI smoke passes 1).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_size.h"
#include "exec/for_index.h"
#include "exec/scheduler.h"
#include "exec/task_group.h"

namespace {

using namespace gact;

std::size_t g_rounds = 2000;

constexpr std::size_t kUnits = 64;   // indices per fork/join round
constexpr unsigned kParallelism = 4; // shard width of both legs

/// The pre-refactor substrate, verbatim shape: spawn min(threads, n)
/// std::threads, pull indices off a shared atomic, join them all.
void spawn_per_call_round(std::size_t n, unsigned num_threads) {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> sink{0};
    std::vector<std::thread> threads;
    const std::size_t spawn =
        std::min<std::size_t>(num_threads, n);
    threads.reserve(spawn);
    for (std::size_t t = 0; t < spawn; ++t) {
        threads.emplace_back([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n) break;
                sink.fetch_add(i, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread& t : threads) t.join();
    benchmark::DoNotOptimize(sink.load());
}

void scheduler_round(exec::Scheduler& scheduler, std::size_t n,
                     unsigned num_threads) {
    std::atomic<std::size_t> sink{0};
    exec::for_index(scheduler, n, num_threads, [&](std::size_t i) {
        sink.fetch_add(i, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sink.load());
}

void print_report() {
    std::cout << "=== E14: fork/join round trip, " << kUnits
              << " trivial units x" << kParallelism << ", " << g_rounds
              << " rounds ===\n";
    exec::Scheduler scheduler(kParallelism);

    auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < g_rounds; ++r) {
        spawn_per_call_round(kUnits, kParallelism);
    }
    const double spawn_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

    start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < g_rounds; ++r) {
        scheduler_round(scheduler, kUnits, kParallelism);
    }
    const double sched_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

    const double rounds = static_cast<double>(g_rounds);
    std::cout << "spawn-per-call: " << spawn_ms << " ms ("
              << spawn_ms * 1000.0 / rounds << " us/round); "
              << "resident scheduler: " << sched_ms << " ms ("
              << sched_ms * 1000.0 / rounds << " us/round); "
              << "ratio " << (sched_ms > 0 ? spawn_ms / sched_ms : 0.0)
              << "x\n";

    // Steal throughput: fork kUnits tasks from ONE worker (via a
    // detached driver that spins instead of draining its own deque) and
    // report how many the peers stole.
    exec::Scheduler steal_pool(kParallelism);
    std::atomic<bool> driver_done{false};
    steal_pool.submit([&steal_pool, &driver_done] {
        exec::TaskGroup group(steal_pool);
        std::atomic<std::size_t> done{0};
        for (std::size_t i = 0; i < kUnits; ++i) {
            group.run([&done] { done.fetch_add(1); });
        }
        while (done.load() < kUnits) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        group.wait();
        driver_done.store(true);
    });
    while (!driver_done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const exec::ExecStats stats = steal_pool.stats();
    std::cout << "imbalanced fork: " << stats.tasks_stolen << "/" << kUnits
              << " tasks stolen by peers\n"
              << std::endl;
}

void BM_SpawnPerCallForkJoin(benchmark::State& state) {
    for (auto _ : state) {
        spawn_per_call_round(kUnits, kParallelism);
    }
}
BENCHMARK(BM_SpawnPerCallForkJoin)->Unit(benchmark::kMicrosecond);

void BM_SchedulerForkJoin(benchmark::State& state) {
    exec::Scheduler scheduler(kParallelism);
    for (auto _ : state) {
        scheduler_round(scheduler, kUnits, kParallelism);
    }
}
BENCHMARK(BM_SchedulerForkJoin)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    g_rounds = static_cast<std::size_t>(
        gact::bench::consume_size_arg(argc, argv, 2000));
    if (g_rounds == 0) g_rounds = 1;
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
