// E8 — the headline reproduction: L_t solvable in Res_t via GACT
// (Theorem 6.1 + Proposition 9.2), executed end to end through the
// engine's general route.
//
// Regenerates the paper's claim as measurements: one Engine::solve on the
// registry's flagship (L_1, Res_1) scenario yields the terminating
// subdivision, delta, and the admissibility verdict; the report's
// artifacts feed protocol extraction and the Definition 4.1 verifier.
// Benchmarks every pipeline stage.
// Usage: bench_gact_t_resilient [prefix_depth] [gbench args...] — depth
// of the arbitrary-schedule prefix of the enumerated compact run families
// (default 1).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_size.h"
#include "engine/engine.h"
#include "engine/scenario_registry.h"
#include "iis/run_enumeration.h"
#include "protocol/gact_protocol.h"
#include "protocol/verifier.h"

namespace {

using namespace gact;

std::uint32_t g_prefix_depth = 1;

struct Setup {
    engine::Scenario scenario;
    engine::SolveReport report;

    Setup()
        : scenario(*engine::ScenarioRegistry::standard().find(
              "lt-2-1-res1")) {
        scenario.options.run_prefix_depth = g_prefix_depth;
        report = engine::Engine{}.solve(scenario);
    }
};

const Setup& setup() {
    static const Setup s;
    return s;
}

void print_report() {
    std::cout << "=== E8: L_1 solvable in Res_1 (Theorem 6.1 / Proposition "
                 "9.2) ===\n";
    const Setup& s = setup();
    std::cout << "engine: " << s.report.summary() << "\n";
    std::cout << "compact Res_1 family: " << s.report.model_runs.size()
              << " runs; admissible = " << s.report.admissibility->admissible
              << "; max landing round = "
              << s.report.admissibility->max_landing_round << "\n";
    iis::ViewArena arena;
    const auto build = protocol::build_gact_protocol(
        *s.report.tsub, *s.report.witness, s.report.model_runs, 8, arena);
    std::cout << "protocol: " << build.protocol.size() << " entries, "
              << build.conflicts << " conflicts, " << build.landed_runs << "/"
              << build.total_runs << " runs landed\n";
    const auto verification = protocol::verify_inputless(
        s.scenario.task, build.protocol, s.report.model_runs, 8, arena);
    std::cout << "Definition 4.1: " << verification.summary() << "\n";
    // Contrast with the wait-free model: WF contains runs that never land
    // (solo runs), so the same T is not admissible for all of WF.
    const auto all_runs = iis::enumerate_stabilized_runs(3, g_prefix_depth);
    const auto wf_adm =
        core::check_admissibility(*s.report.tsub, all_runs, 8);
    std::cout << "contrast (WF family): admissible = " << wf_adm.admissible
              << " with " << wf_adm.failures.size()
              << " non-landing runs - L_1 is a genuinely t-resilient task\n"
              << std::endl;
}

void BM_EngineSolveScenario(benchmark::State& state) {
    const Setup& s = setup();
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine::Engine{}.solve(s.scenario));
    }
}
BENCHMARK(BM_EngineSolveScenario)->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_Admissibility(benchmark::State& state) {
    const Setup& s = setup();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::check_admissibility(*s.report.tsub, s.report.model_runs, 8));
    }
}
BENCHMARK(BM_Admissibility)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_ProtocolExtraction(benchmark::State& state) {
    const Setup& s = setup();
    for (auto _ : state) {
        iis::ViewArena arena;
        benchmark::DoNotOptimize(protocol::build_gact_protocol(
            *s.report.tsub, *s.report.witness, s.report.model_runs, 8,
            arena));
    }
}
BENCHMARK(BM_ProtocolExtraction)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_Definition41Verification(benchmark::State& state) {
    const Setup& s = setup();
    iis::ViewArena arena;
    const auto build = protocol::build_gact_protocol(
        *s.report.tsub, *s.report.witness, s.report.model_runs, 8, arena);
    for (auto _ : state) {
        benchmark::DoNotOptimize(protocol::verify_inputless(
            s.scenario.task, build.protocol, s.report.model_runs, 8, arena));
    }
}
BENCHMARK(BM_Definition41Verification)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_SingleRunLanding(benchmark::State& state) {
    const Setup& s = setup();
    const iis::Run behind = iis::Run::forever(
        3,
        iis::OrderedPartition({ProcessSet::of({0, 1}), ProcessSet::of({2})}));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::find_landing(*s.report.tsub, behind, 8));
    }
}
BENCHMARK(BM_SingleRunLanding)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_prefix_depth = static_cast<std::uint32_t>(
        gact::bench::consume_size_arg(argc, argv, 1));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
