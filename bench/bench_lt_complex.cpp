// E3 — Section 9.2 figure: the complex L_1 for n = 2, and the L_t family.
//
// Regenerates the figure's data: facet counts of L_t per (n, t), the
// emptiness pattern of Delta on faces, and the link-connectedness
// verdicts the paper relies on (L_t link-connected; L_ord not).
// Benchmarks construction and the link-connectedness decision.
// Usage: bench_lt_complex [max_n] [gbench args...] — default 3; values
// below 3 skip the heavy n=3 section of the report, values above 3
// behave like 3 (the n=2 and n=3 sections are the implemented cases).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_size.h"
#include "tasks/standard_tasks.h"
#include "topology/connectivity.h"

namespace {

using namespace gact;

int g_max_n = 3;

void print_report() {
    std::cout << "=== E3: the t-resilience task L_t (Section 9.2 figure) "
                 "===\n";
    for (int t = 0; t <= 2; ++t) {
        const tasks::AffineTask lt = tasks::t_resilience_task(2, t);
        const auto report = topo::check_link_connected(lt.l_complex);
        std::cout << "n=2, t=" << t << ": " << lt.l_complex.facets().size()
                  << " facets, " << report.to_string() << "\n";
    }
    const tasks::AffineTask l1 = tasks::t_resilience_task(2, 1);
    std::cout << "L_1 Delta images: corners empty="
              << l1.task.delta.at(topo::Simplex{0}).is_empty()
              << ", edge {0,1} facets="
              << l1.task.delta.at(topo::Simplex{0, 1}).facets().size()
              << ", full=" << l1.task.delta.at(topo::Simplex{0, 1, 2})
                                  .facets()
                                  .size()
              << "\n";
    if (g_max_n >= 3) {
        for (int t = 1; t <= 3; ++t) {
            const tasks::AffineTask lt = tasks::t_resilience_task(3, t);
            std::cout << "n=3, t=" << t << ": "
                      << lt.l_complex.facets().size()
                      << " facets (link check skipped at this size)\n";
        }
    }
    const tasks::AffineTask lord = tasks::total_order_task(2);
    std::cout << "contrast: L_ord is "
              << topo::check_link_connected(lord.l_complex).to_string()
              << "\n"
              << std::endl;
}

void BM_BuildLt(benchmark::State& state) {
    const int t = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(tasks::t_resilience_task(2, t));
    }
}
BENCHMARK(BM_BuildLt)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_LinkConnectedDecision(benchmark::State& state) {
    const tasks::AffineTask lt = tasks::t_resilience_task(2, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(topo::check_link_connected(lt.l_complex));
    }
}
BENCHMARK(BM_LinkConnectedDecision)->Unit(benchmark::kMillisecond);

void BM_DeltaRestriction(benchmark::State& state) {
    const tasks::AffineTask lt = tasks::t_resilience_task(2, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tasks::affine_restriction(
            lt.subdivision, lt.l_complex, topo::Simplex{0, 1}));
    }
}
BENCHMARK(BM_DeltaRestriction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_max_n = static_cast<int>(gact::bench::consume_size_arg(argc, argv, 3));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
