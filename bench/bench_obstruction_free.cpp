// E9 — Section 4.5: L_ord solvable in OF_fast via commit-adopt, not in OF.
//
// Regenerates the section's claims as measurements: the commit-adopt
// protocol passes Definition 4.1 on the minimal obstruction-free runs and
// starves followers in the leader-ahead run. Benchmarks the commit-adopt
// evaluator and the verification.
// Usage: bench_obstruction_free [prefix_depth] [gbench args...] — depth
// of the arbitrary-schedule prefix of the enumerated runs (default 2).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_size.h"
#include "iis/run_enumeration.h"
#include "protocol/commit_adopt.h"
#include "protocol/verifier.h"

namespace {

using namespace gact;

std::uint32_t g_prefix_depth = 2;

struct Setup {
    tasks::AffineTask lord = tasks::total_order_task(2);
    std::vector<iis::Run> fast_runs;

    Setup() {
        const auto of1 = std::make_shared<iis::ObstructionFreeModel>(1);
        const iis::MinimalRunsModel of1_fast(of1);
        fast_runs = iis::filter_by_model(
            iis::enumerate_stabilized_runs(3, g_prefix_depth), of1_fast);
    }
};

const Setup& setup() {
    static const Setup s;
    return s;
}

void print_report() {
    std::cout << "=== E9: L_ord in OF_fast via commit-adopt (Section 4.5) "
                 "===\n";
    const Setup& s = setup();
    iis::ViewArena arena;
    const protocol::TotalOrderProtocol protocol(s.lord, arena);
    const auto fast_report = protocol::verify_inputless(
        s.lord.task, protocol, s.fast_runs, 10, arena);
    std::cout << "OF_1^fast (" << s.fast_runs.size()
              << " minimal runs): " << fast_report.summary() << "\n";

    const iis::Run leader_ahead = iis::Run::forever(
        3,
        iis::OrderedPartition({ProcessSet::of({0}), ProcessSet::of({1, 2})}));
    const auto of_report = protocol::verify_inputless(
        s.lord.task, protocol, {leader_ahead}, 10, arena);
    std::cout << "OF_1 leader-ahead run: " << of_report.summary() << "\n"
              << std::endl;
}

void BM_CommitAdoptDecision(benchmark::State& state) {
    iis::ViewArena arena;
    const iis::Run r = iis::Run::forever(
        3, iis::OrderedPartition::sequential({0, 1, 2}));
    const iis::ViewId view = r.view(2, 6, arena);
    const protocol::CommitAdoptEvaluator eval(arena);
    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.first_commit(view));
    }
}
BENCHMARK(BM_CommitAdoptDecision);

void BM_TotalOrderOutput(benchmark::State& state) {
    const Setup& s = setup();
    iis::ViewArena arena;
    const protocol::TotalOrderProtocol protocol(s.lord, arena);
    const iis::Run solo(3, {iis::OrderedPartition::sequential({0, 1, 2})},
                        {iis::OrderedPartition::concurrent(
                            ProcessSet::of({1}))});
    const iis::ViewId view = solo.view(1, 6, arena);
    for (auto _ : state) {
        benchmark::DoNotOptimize(protocol.output(view, arena));
    }
}
BENCHMARK(BM_TotalOrderOutput);

void BM_VerifyOfFast(benchmark::State& state) {
    const Setup& s = setup();
    for (auto _ : state) {
        iis::ViewArena arena;
        const protocol::TotalOrderProtocol protocol(s.lord, arena);
        benchmark::DoNotOptimize(protocol::verify_inputless(
            s.lord.task, protocol, s.fast_runs, 10, arena));
    }
}
BENCHMARK(BM_VerifyOfFast)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_prefix_depth = static_cast<std::uint32_t>(
        gact::bench::consume_size_arg(argc, argv, 2));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
