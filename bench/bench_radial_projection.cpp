// E5 — Section 9.2 figure: the radial projection f : |K(T)| -> |L_1| and
// the chromatic simplicial approximation delta (Theorem 8.4 in action).
//
// Regenerates the figure's data: f is the identity on R_0 and pushes the
// collar rings onto the boundary of R_0, preserving the faces of s; the
// CSP then finds delta guided by f. Benchmarks exact projections and the
// approximation search.
// Usage: bench_radial_projection [extra_stages] [gbench args...] —
// stabilization stages past Chr^2 in the pipeline (default 2).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_size.h"
#include "core/lt_pipeline.h"

namespace {

using namespace gact;

std::size_t g_extra_stages = 2;

const core::LtPipeline& pipeline() {
    static const core::LtPipeline p =
        core::build_lt_pipeline(2, 1, g_extra_stages);
    return p;
}

void print_report() {
    std::cout << "=== E5: radial projection + chromatic approximation "
                 "(Section 9.2) ===\n";
    const core::LtPipeline& p = pipeline();
    std::size_t fixed = 0;
    std::size_t moved = 0;
    for (topo::VertexId v : p.tsub.stable_complex().vertex_ids()) {
        const topo::BaryPoint& x = p.tsub.stable_position(v);
        const topo::BaryPoint fx = core::radial_projection_l1(p.task, x);
        if (fx == x) {
            ++fixed;
        } else {
            ++moved;
        }
    }
    std::cout << "K(T) vertices: " << fixed << " fixed by f (R_0), " << moved
              << " projected onto the R_0 boundary\n";
    std::cout << "boundary edges of |L_1|: "
              << core::l_boundary_edges(p.task).size() << "\n";
    std::cout << "delta: found with " << p.csp_backtracks
              << " CSP backtracks, "
              << p.tsub.stable_complex().vertex_ids().size()
              << " stable vertices mapped\n"
              << std::endl;
}

void BM_RadialProjection(benchmark::State& state) {
    const core::LtPipeline& p = pipeline();
    // Project a ring-1 vertex (one that actually moves).
    topo::BaryPoint x = topo::BaryPoint::vertex(0);
    for (topo::VertexId v : p.tsub.stable_complex().vertex_ids()) {
        const topo::BaryPoint& q = p.tsub.stable_position(v);
        if (!core::point_in_l(p.task, q)) {
            x = q;
            break;
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::radial_projection_l1(p.task, x));
    }
}
BENCHMARK(BM_RadialProjection);

void BM_PointInL(benchmark::State& state) {
    const core::LtPipeline& p = pipeline();
    const topo::BaryPoint center =
        topo::BaryPoint::barycenter(topo::Simplex{0, 1, 2});
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::point_in_l(p.task, center));
    }
}
BENCHMARK(BM_PointInL);

void BM_FullPipelineWithApproximation(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::build_lt_pipeline(2, 1, 2));
    }
}
BENCHMARK(BM_FullPipelineWithApproximation)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_extra_stages = static_cast<std::size_t>(
        gact::bench::consume_size_arg(argc, argv, 2));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
