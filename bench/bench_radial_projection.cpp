// E5 — Section 9.2 figure: the radial projection f : |K(T)| -> |L_1| and
// the chromatic simplicial approximation delta (Theorem 8.4 in action).
//
// Regenerates the figure's data: f is the identity on R_0 and pushes the
// collar rings onto the boundary of R_0, preserving the faces of s; the
// CSP then finds delta guided by f. The construction runs through the
// engine's general route with the L_t stable rule as a strategy instance
// (engine/general_route.h). Benchmarks exact projections and the
// approximation search.
// Usage: bench_radial_projection [extra_stages] [gbench args...] —
// stabilization stages past Chr^2 (default 2).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_size.h"
#include "engine/general_route.h"
#include "tasks/standard_tasks.h"

namespace {

using namespace gact;

std::size_t g_extra_stages = 2;

struct Figure {
    tasks::AffineTask task = tasks::t_resilience_task(2, 1);
    engine::GeneralWitness witness;

    Figure() {
        witness = engine::build_general_witness(
            task, engine::LtStableRule(2, 1), 2 + g_extra_stages,
            /*fix_identity=*/true, core::LtGuidance::kRadial,
            core::SolverConfig::fast());
    }
};

const Figure& figure() {
    static const Figure f;
    return f;
}

void print_report() {
    std::cout << "=== E5: radial projection + chromatic approximation "
                 "(Section 9.2) ===\n";
    const Figure& f = figure();
    std::size_t fixed = 0;
    std::size_t moved = 0;
    for (topo::VertexId v : f.witness.tsub.stable_complex().vertex_ids()) {
        const topo::BaryPoint& x = f.witness.tsub.stable_position(v);
        const topo::BaryPoint fx = core::radial_projection_l1(f.task, x);
        if (fx == x) {
            ++fixed;
        } else {
            ++moved;
        }
    }
    std::cout << "K(T) vertices: " << fixed << " fixed by f (R_0), " << moved
              << " projected onto the R_0 boundary\n";
    std::cout << "boundary edges of |L_1|: "
              << core::l_boundary_edges(f.task).size() << "\n";
    std::cout << "delta: found with " << f.witness.counters.backtracks
              << " CSP backtracks, "
              << f.witness.tsub.stable_complex().vertex_ids().size()
              << " stable vertices mapped\n"
              << std::endl;
}

void BM_RadialProjection(benchmark::State& state) {
    const Figure& f = figure();
    // Project a ring-1 vertex (one that actually moves).
    topo::BaryPoint x = topo::BaryPoint::vertex(0);
    for (topo::VertexId v : f.witness.tsub.stable_complex().vertex_ids()) {
        const topo::BaryPoint& q = f.witness.tsub.stable_position(v);
        if (!core::point_in_l(f.task, q)) {
            x = q;
            break;
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::radial_projection_l1(f.task, x));
    }
}
BENCHMARK(BM_RadialProjection);

void BM_PointInL(benchmark::State& state) {
    const Figure& f = figure();
    const topo::BaryPoint center =
        topo::BaryPoint::barycenter(topo::Simplex{0, 1, 2});
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::point_in_l(f.task, center));
    }
}
BENCHMARK(BM_PointInL);

void BM_FullPipelineWithApproximation(benchmark::State& state) {
    const Figure& f = figure();
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine::build_general_witness(
            f.task, engine::LtStableRule(2, 1), 4, true,
            core::LtGuidance::kRadial, core::SolverConfig::fast()));
    }
}
BENCHMARK(BM_FullPipelineWithApproximation)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_extra_stages = static_cast<std::size_t>(
        gact::bench::consume_size_arg(argc, argv, 2));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
