// E4 — Section 9.2 figure: the region decomposition R_0, R_1, R_2, ... of
// the complement of the (n-t-1)-skeleton.
//
// Regenerates the figure's data: how many stable facets each ring
// contributes per stage of the terminating subdivision for (n, t) = (2, 1),
// and that all stable vertices avoid the forbidden skeleton. Benchmarks
// stage advancement with the L_t stabilization rule.
// Usage: bench_regions [stages] [gbench args...] — stabilization stages
// past Chr^2 in the report (default 3).
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_size.h"
#include "core/lt_pipeline.h"

namespace {

using namespace gact;
using core::TerminatingSubdivision;

int g_stages = 3;

TerminatingSubdivision build(int stages) {
    TerminatingSubdivision t(topo::ChromaticComplex::standard_simplex(2));
    const auto nothing = [](const topo::SubdividedComplex&,
                            const topo::Simplex&) { return false; };
    t.advance(nothing);
    t.advance(nothing);
    for (int i = 0; i < stages; ++i) {
        t.advance([](const topo::SubdividedComplex& cx,
                     const topo::Simplex& s) {
            return core::lt_stable_rule(2, 1, cx, s);
        });
    }
    return t;
}

void print_report() {
    std::cout << "=== E4: rings R_0, R_1, ... for (n,t) = (2,1) (Section 9.2 "
                 "figure) ===\n";
    const TerminatingSubdivision t = build(g_stages);
    std::map<std::size_t, std::size_t> ring_count;
    for (const topo::Simplex& f : t.stable_facets()) {
        ++ring_count[core::ring_of_stable_facet(t, f)];
    }
    for (const auto& [ring, count] : ring_count) {
        std::cout << "R_" << ring << ": " << count << " stable facets\n";
    }
    std::size_t on_boundary = 0;
    for (topo::VertexId v : t.stable_complex().vertex_ids()) {
        const int dim = t.stable_position(v).support().dimension();
        if (dim < 1) ++on_boundary;
    }
    std::cout << "stable vertices on the forbidden 0-skeleton: "
              << on_boundary << " (must be 0)\n";
    std::cout << "|K(T)| vertices so far: "
              << t.stable_complex().vertex_ids().size() << "\n"
              << std::endl;
}

void BM_AdvanceStages(benchmark::State& state) {
    const int stages = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(build(stages));
    }
}
BENCHMARK(BM_AdvanceStages)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_RingClassification(benchmark::State& state) {
    const TerminatingSubdivision t = build(2);
    const auto facets = t.stable_facets();
    for (auto _ : state) {
        std::size_t acc = 0;
        for (const topo::Simplex& f : facets) {
            acc += core::ring_of_stable_facet(t, f);
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_RingClassification)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_stages = static_cast<int>(gact::bench::consume_size_arg(argc, argv, 3));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
