// bench_service_load — closed-loop load generator for the solve server.
//
// Starts an in-process SolveServer on an ephemeral loopback port, then
// hammers it from N concurrent connections, each a closed loop (send a
// solve request, await the reply, repeat) for a fixed duration. Reports
// total requests/s plus p50/p95/p99 served latency, and splits the cold
// first request (the solve that actually searches) from the warm
// remainder (served out of the resident nogood pool) — the number that
// justifies a resident server over per-request process launches.
//
// Usage: bench_service_load [SECONDS] [CONNECTIONS] [SCENARIO]
//   defaults: 10 seconds, 8 connections, chr2-2p-wf
// Any --benchmark_* flag is ignored so the CI bench smoke loop (which
// passes `1 --benchmark_filter=...` to every bench binary) gets a fast
// 1-second run instead of an argument error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/server.h"
#include "util/json.h"

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerResult {
    std::vector<double> latencies_ms;
    std::size_t failures = 0;
};

double percentile(std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
    double seconds = 10.0;
    unsigned connections = 8;
    std::string scenario = "chr2-2p-wf";

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_", 12) == 0) continue;
        if (std::strncmp(argv[i], "--", 2) == 0) {
            std::fprintf(stderr,
                         "usage: %s [SECONDS] [CONNECTIONS] [SCENARIO]\n",
                         argv[0]);
            return 2;
        }
        switch (positional++) {
            case 0: seconds = std::atof(argv[i]); break;
            case 1:
                connections =
                    static_cast<unsigned>(std::strtoul(argv[i], nullptr, 10));
                break;
            case 2: scenario = argv[i]; break;
            default:
                std::fprintf(stderr, "too many arguments\n");
                return 2;
        }
    }
    if (seconds <= 0.0 || connections == 0) {
        std::fprintf(stderr, "bad duration/connection count\n");
        return 2;
    }

    gact::service::ServiceConfig config;
    config.port = 0;  // ephemeral
    config.workers = std::max(2u, std::thread::hardware_concurrency() / 2);
    config.queue_depth = connections * 2;
    gact::service::SolveServer server(std::move(config));
    const std::string err = server.start();
    if (!err.empty()) {
        std::fprintf(stderr, "server start failed: %s\n", err.c_str());
        return 1;
    }
    const std::uint16_t port = server.port();

    // Cold request first, alone: the one solve that actually searches.
    // Everything after it is served out of the now-warm resident pool,
    // so the cold/warm split below is deterministic, not racy.
    double cold_ms = 0.0;
    {
        gact::service::ServiceClient warmup;
        std::string cerr = warmup.connect("127.0.0.1", port);
        if (!cerr.empty()) {
            std::fprintf(stderr, "connect failed: %s\n", cerr.c_str());
            server.stop();
            return 1;
        }
        gact::util::Json req = gact::util::Json::object();
        req.set("type", gact::util::Json("solve"));
        req.set("scenario", gact::util::Json(scenario));
        const auto t0 = Clock::now();
        const auto reply = warmup.request(req, &cerr);
        const auto t1 = Clock::now();
        if (!reply.has_value()) {
            std::fprintf(stderr, "cold request failed: %s\n", cerr.c_str());
            server.stop();
            return 1;
        }
        const gact::util::Json* ok = reply->find("ok");
        if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
            std::fprintf(stderr, "cold request rejected: %s\n",
                         reply->dump().c_str());
            server.stop();
            return 1;
        }
        cold_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
    }

    std::atomic<bool> stop{false};
    std::vector<WorkerResult> results(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (unsigned c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            WorkerResult& result = results[c];
            gact::service::ServiceClient client;
            if (!client.connect("127.0.0.1", port).empty()) {
                ++result.failures;
                return;
            }
            gact::util::Json req = gact::util::Json::object();
            req.set("type", gact::util::Json("solve"));
            req.set("scenario", gact::util::Json(scenario));
            while (!stop.load(std::memory_order_relaxed)) {
                const auto t0 = Clock::now();
                const auto reply = client.request(req);
                const auto t1 = Clock::now();
                if (!reply.has_value()) {
                    ++result.failures;
                    return;
                }
                const gact::util::Json* ok = reply->find("ok");
                if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
                    ++result.failures;
                    continue;
                }
                result.latencies_ms.push_back(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
            }
        });
    }

    const auto bench_start = Clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads) t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - bench_start).count();

    std::vector<double> warm;
    std::size_t failures = 0;
    for (const WorkerResult& r : results) {
        warm.insert(warm.end(), r.latencies_ms.begin(),
                    r.latencies_ms.end());
        failures += r.failures;
    }
    std::sort(warm.begin(), warm.end());

    server.stop();

    if (warm.empty()) {
        std::fprintf(stderr, "no successful warm requests (%zu failures)\n",
                     failures);
        return 1;
    }
    const double rps = static_cast<double>(warm.size()) / elapsed;
    std::printf("scenario: %s, connections: %u, duration: %.1fs\n",
                scenario.c_str(), connections, elapsed);
    std::printf("cold first-request latency: %.2f ms\n", cold_ms);
    std::printf(
        "warm served latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
        percentile(warm, 0.50), percentile(warm, 0.95),
        percentile(warm, 0.99));
    std::printf("requests/s: %.1f (%zu warm requests, %zu failures)\n",
                rps, warm.size(), failures);
    return 0;
}
