// Shared helper for the benches' optional size argument.
//
// Every bench accepts an optional leading positive integer before the
// google-benchmark flags: `bench_foo [size] [--benchmark_...]`. The
// meaning (processes / stages / prefix depth / family size) is documented
// per bench; the default is the bench's historical hard-coded value. CI
// smoke-runs pass tiny sizes so every report stays fast.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace gact::bench {

/// If argv[1] is a bare non-negative integer, consume it and return its
/// value; otherwise return `default_value`. A size-like argument that
/// fails to parse cleanly (trailing junk, overflow) exits with a
/// message rather than silently running the wrong size. Shifts the
/// remaining arguments down so google-benchmark flag parsing is
/// unaffected.
inline long consume_size_arg(int& argc, char** argv, long default_value) {
    if (argc > 1 && std::isdigit(static_cast<unsigned char>(argv[1][0]))) {
        char* end = nullptr;
        errno = 0;
        const long value = std::strtol(argv[1], &end, 10);
        if (errno == ERANGE || *end != '\0' || value < 0) {
            std::fprintf(stderr, "invalid size argument '%s'\n", argv[1]);
            std::exit(2);
        }
        // Shift through index argc so the argv[argc] == nullptr
        // terminator moves down with the arguments.
        for (int i = 1; i < argc; ++i) argv[i] = argv[i + 1];
        --argc;
        return value;
    }
    return default_value;
}

}  // namespace gact::bench
