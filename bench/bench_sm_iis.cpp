// E10 — the SM substrate: immediate snapshot on shared memory and its
// exact correspondence with Chr s (Sections 2.1, 10; [BG93], [Kozlov12]).
//
// Regenerates the correspondence: the reachable outcomes of the
// Borowsky-Gafni protocol are exactly the ordered partitions (facets of
// Chr s), for 2 and 3 processes, and chained instances realize IIS run
// prefixes whose views coincide with the abstract semantics. Benchmarks
// executor throughput.
// Usage: bench_sm_iis [max_processes] [gbench args...] — largest process
// count in the outcome-enumeration report (default 3).
#include <benchmark/benchmark.h>

#include <iostream>
#include <random>
#include <set>

#include "bench_size.h"
#include "sm/iis_executor.h"
#include "topology/combinatorics.h"

namespace {

using namespace gact;

std::uint32_t g_max_processes = 3;

void print_report() {
    std::cout << "=== E10: IIS from shared memory (Borowsky-Gafni) ===\n";
    for (std::uint32_t n = 1; n <= g_max_processes; ++n) {
        std::vector<std::optional<sm::Word>> vals;
        for (ProcessId p = 0; p < n; ++p) vals.emplace_back(p);
        const auto outcomes =
            sm::enumerate_is_outcomes(n, vals, ProcessSet::full(n));
        std::set<std::string> partitions;
        for (const auto& o : outcomes) {
            partitions.insert(sm::outcome_partition(o).to_string());
        }
        std::cout << n << " processes: " << partitions.size()
                  << " distinct outcomes vs ordered Bell "
                  << topo::ordered_bell_number(n) << "\n";
    }
    // Chained: random schedules produce valid IIS prefixes with views
    // identical to the abstract Run semantics.
    std::mt19937 rng(7);
    std::size_t rounds = 0;
    iis::ViewArena arena;
    sm::IisExecution exec(3, ProcessSet::full(3), arena);
    std::uniform_int_distribution<int> coin(0, 2);
    for (int i = 0; i < 2000; ++i) exec.step(static_cast<ProcessId>(coin(rng)));
    rounds = exec.extract_prefix().size();
    std::cout << "2000 random SM steps -> " << rounds
              << " complete IIS rounds, " << arena.size()
              << " interned views\n"
              << std::endl;
}

void BM_OneShotIs(benchmark::State& state) {
    const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
    std::vector<std::optional<sm::Word>> vals;
    std::vector<ProcessId> schedule;
    for (ProcessId p = 0; p < n; ++p) vals.emplace_back(p);
    for (std::uint32_t i = 0; i < 2 * (n + 2); ++i) {
        for (ProcessId p = 0; p < n; ++p) schedule.push_back(p);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(sm::run_immediate_snapshot(n, vals, schedule));
    }
}
BENCHMARK(BM_OneShotIs)->Arg(2)->Arg(3)->Arg(4);

void BM_OutcomeEnumeration(benchmark::State& state) {
    const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
    std::vector<std::optional<sm::Word>> vals;
    for (ProcessId p = 0; p < n; ++p) vals.emplace_back(p);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sm::enumerate_is_outcomes(n, vals, ProcessSet::full(n)));
    }
}
BENCHMARK(BM_OutcomeEnumeration)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_ChainedIisSteps(benchmark::State& state) {
    std::mt19937 rng(11);
    std::uniform_int_distribution<int> coin(0, 2);
    iis::ViewArena arena;
    sm::IisExecution exec(3, ProcessSet::full(3), arena);
    for (auto _ : state) {
        exec.step(static_cast<ProcessId>(coin(rng)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainedIisSteps);

}  // namespace

int main(int argc, char** argv) {
    g_max_processes = static_cast<std::uint32_t>(
        gact::bench::consume_size_arg(argc, argv, 3));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
