// E11 — the subdivision substrate (Sections 3.1-3.2): combinatorics and
// exact geometry of Chr^k.
//
// Regenerates the structural facts everything else rests on: facet
// counts follow the ordered Bell numbers, volumes sum exactly to the base
// simplex (rational arithmetic), subdivisions stay contractible, and
// boundaries are spheres. Benchmarks subdivision, exactness verification,
// and homology.
// Usage: bench_subdivision [max_n] [gbench args...] — largest simplex
// dimension in the facet-count report (default 3).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_size.h"
#include "topology/combinatorics.h"
#include "topology/homology.h"
#include "topology/subdivision.h"

namespace {

using namespace gact;
using topo::ChromaticComplex;
using topo::SubdividedComplex;

int g_max_n = 3;

void print_report() {
    std::cout << "=== E11: chromatic subdivision combinatorics (Sections "
                 "3.1-3.2) ===\n";
    for (int n = 1; n <= g_max_n; ++n) {
        const int max_k = n <= 2 ? 3 : 2;
        SubdividedComplex chr =
            SubdividedComplex::identity(ChromaticComplex::standard_simplex(n));
        for (int k = 1; k <= max_k; ++k) {
            chr = chr.chromatic_subdivision();
            std::size_t expected = 1;
            for (int i = 0; i < k; ++i) {
                expected *= topo::ordered_bell_number(
                    static_cast<std::size_t>(n) + 1);
            }
            std::cout << "n=" << n << " k=" << k << ": "
                      << chr.complex().facets().size() << " facets (expected "
                      << expected << ")\n";
        }
    }
    const SubdividedComplex chr2 = SubdividedComplex::iterated_chromatic(
        ChromaticComplex::standard_simplex(2), 2);
    chr2.verify_subdivision_exactness();
    std::cout << "Chr^2 (n=2) exactness: rational facet volumes sum to 1 on "
                 "every base facet\n";
    const auto h = topo::reduced_homology(chr2.complex().complex());
    bool trivial = true;
    for (const auto& g : h) {
        if (!g.is_trivial()) trivial = false;
    }
    std::cout << "Chr^2 (n=2) reduced homology trivial (disk): " << trivial
              << "\n"
              << std::endl;
}

void BM_ChrStep(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const int k = static_cast<int>(state.range(1));
    const SubdividedComplex base = SubdividedComplex::iterated_chromatic(
        ChromaticComplex::standard_simplex(n), k);
    for (auto _ : state) {
        benchmark::DoNotOptimize(base.chromatic_subdivision());
    }
}
BENCHMARK(BM_ChrStep)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Unit(benchmark::kMillisecond);

void BM_ExactnessVerification(benchmark::State& state) {
    const SubdividedComplex chr2 = SubdividedComplex::iterated_chromatic(
        ChromaticComplex::standard_simplex(2), 2);
    for (auto _ : state) {
        chr2.verify_subdivision_exactness();
    }
}
BENCHMARK(BM_ExactnessVerification)->Unit(benchmark::kMillisecond);

void BM_Homology(benchmark::State& state) {
    const SubdividedComplex chr = SubdividedComplex::iterated_chromatic(
        ChromaticComplex::standard_simplex(2),
        static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            topo::reduced_homology(chr.complex().complex()));
    }
}
BENCHMARK(BM_Homology)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_BarycentricStep(benchmark::State& state) {
    const SubdividedComplex base = SubdividedComplex::identity(
        ChromaticComplex::standard_simplex(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(base.barycentric_subdivision());
    }
}
BENCHMARK(BM_BarycentricStep)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_max_n = static_cast<int>(gact::bench::consume_size_arg(argc, argv, 3));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
