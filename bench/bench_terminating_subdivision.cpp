// E2 — Section 6.1 figure: the partial chromatic subdivision C_k ->
// C_{k+1} with a terminated face.
//
// Regenerates the figure's data: subdividing the triangle with one edge
// terminated yields 11 facets instead of 13, the terminated edge stays
// whole, and the subdivision is geometrically exact. Benchmarks full and
// partial subdivision steps and terminating-subdivision stage advances.
// Usage: bench_terminating_subdivision [n] [gbench args...] — dimension
// of the base simplex in the report (default 2).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_size.h"
#include "core/terminating_subdivision.h"

namespace {

using namespace gact;
using topo::ChromaticComplex;
using topo::Simplex;
using topo::SubdividedComplex;

int g_n = 2;

void print_report() {
    std::cout << "=== E2: partial chromatic subdivision (Section 6.1 figure) "
                 "===\n";
    const ChromaticComplex s = ChromaticComplex::standard_simplex(g_n);
    const SubdividedComplex id = SubdividedComplex::identity(s);
    const SubdividedComplex full = id.chromatic_subdivision();
    std::cout << "Chr(triangle): " << full.complex().facets().size()
              << " facets\n";
    const auto max_v = static_cast<topo::VertexId>(g_n);
    for (topo::VertexId a = 0; a <= max_v; ++a) {
        for (topo::VertexId b = a + 1; b <= max_v; ++b) {
            const Simplex edge{a, b};
            const SubdividedComplex part =
                id.chromatic_subdivision_with_termination(
                    [&edge](const Simplex& t) { return t.is_face_of(edge); });
            part.verify_subdivision_exactness();
            std::cout << "terminated edge " << edge.to_string() << ": "
                      << part.complex().facets().size()
                      << " facets (edge survives whole)\n";
        }
    }
    // A fully terminated triangle does not subdivide at all.
    const SubdividedComplex frozen = id.chromatic_subdivision_with_termination(
        [](const Simplex&) { return true; });
    std::cout << "everything terminated: "
              << frozen.complex().facets().size() << " facet\n"
              << std::endl;
}

void BM_FullChr(benchmark::State& state) {
    const ChromaticComplex s =
        ChromaticComplex::standard_simplex(static_cast<int>(state.range(0)));
    const SubdividedComplex id = SubdividedComplex::identity(s);
    for (auto _ : state) {
        benchmark::DoNotOptimize(id.chromatic_subdivision());
    }
}
BENCHMARK(BM_FullChr)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_PartialChrTerminatedEdge(benchmark::State& state) {
    const ChromaticComplex s = ChromaticComplex::standard_simplex(2);
    const SubdividedComplex id = SubdividedComplex::identity(s);
    for (auto _ : state) {
        benchmark::DoNotOptimize(id.chromatic_subdivision_with_termination(
            [](const Simplex& t) { return t.is_face_of(Simplex{0, 1}); }));
    }
}
BENCHMARK(BM_PartialChrTerminatedEdge)->Unit(benchmark::kMillisecond);

void BM_TerminatingSubdivisionStages(benchmark::State& state) {
    const int stages = static_cast<int>(state.range(0));
    for (auto _ : state) {
        core::TerminatingSubdivision t(ChromaticComplex::standard_simplex(2));
        for (int i = 0; i < stages; ++i) {
            t.advance([](const SubdividedComplex& cx, const Simplex& sg) {
                // Stabilize interior simplices from depth 2 on (the L_1
                // rule); keeps stage complexity realistic.
                if (cx.depth() < 2) return false;
                for (topo::VertexId v : sg.vertices()) {
                    if (cx.carrier(v).dimension() < 1) return false;
                }
                return true;
            });
        }
        benchmark::DoNotOptimize(t.stable_complex());
    }
}
BENCHMARK(BM_TerminatingSubdivisionStages)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_n = static_cast<int>(gact::bench::consume_size_arg(argc, argv, 2));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
