// E1 — Section 4.2 figure: the six simplices sigma_alpha of the total
// order task for three processes (and (n+1)! in general).
//
// Regenerates the figure's data: for each n, the number of sigma_alpha
// simplices extracted from Chr^2 s, their uniqueness, and the placement
// of each vertex on the face flag. Benchmarks the construction.
// Usage: bench_total_order [max_n] [gbench args...] — largest n in the
// facet-count report (default 3).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_size.h"
#include "tasks/standard_tasks.h"
#include "topology/combinatorics.h"

namespace {

int g_max_n = 3;

void print_report() {
    std::cout << "=== E1: total-order task L_ord (Section 4.2 figure) ===\n";
    for (int n = 1; n <= g_max_n; ++n) {
        const gact::tasks::AffineTask lord = gact::tasks::total_order_task(n);
        std::size_t expected = 1;
        for (std::size_t i = 2; i <= static_cast<std::size_t>(n) + 1; ++i) {
            expected *= i;
        }
        std::cout << "n=" << n << ": |L_ord facets| = "
                  << lord.l_complex.facets().size() << " (expected (n+1)! = "
                  << expected << ")\n";
    }
    // The figure itself: the six simplices for 3 processes, by permutation.
    const auto chr2 = gact::topo::SubdividedComplex::iterated_chromatic(
        gact::topo::ChromaticComplex::standard_simplex(2), 2);
    for (const auto& perm : gact::topo::all_permutations(3)) {
        std::vector<gact::ProcessId> alpha(perm.begin(), perm.end());
        const gact::topo::Simplex sigma =
            gact::tasks::sigma_alpha(chr2, alpha);
        std::cout << "  alpha = (" << alpha[0] << alpha[1] << alpha[2]
                  << "): sigma_alpha = " << sigma.to_string() << "\n";
    }
    std::cout << std::endl;
}

void BM_BuildTotalOrder(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(gact::tasks::total_order_task(n));
    }
}
BENCHMARK(BM_BuildTotalOrder)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_SigmaAlphaLookup(benchmark::State& state) {
    const auto chr2 = gact::topo::SubdividedComplex::iterated_chromatic(
        gact::topo::ChromaticComplex::standard_simplex(2), 2);
    const std::vector<gact::ProcessId> alpha = {1, 2, 0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(gact::tasks::sigma_alpha(chr2, alpha));
    }
}
BENCHMARK(BM_SigmaAlphaLookup)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    g_max_n = static_cast<int>(gact::bench::consume_size_arg(argc, argv, 3));
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
