file(REMOVE_RECURSE
  "CMakeFiles/act_solver_test.dir/tests/act_solver_test.cpp.o"
  "CMakeFiles/act_solver_test.dir/tests/act_solver_test.cpp.o.d"
  "act_solver_test"
  "act_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
