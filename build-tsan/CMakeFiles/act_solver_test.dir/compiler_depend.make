# Empty compiler generated dependencies file for act_solver_test.
# This may be replaced when dependencies are built.
