file(REMOVE_RECURSE
  "CMakeFiles/affine_projection_test.dir/tests/affine_projection_test.cpp.o"
  "CMakeFiles/affine_projection_test.dir/tests/affine_projection_test.cpp.o.d"
  "affine_projection_test"
  "affine_projection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affine_projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
