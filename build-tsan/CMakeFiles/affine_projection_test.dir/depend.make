# Empty dependencies file for affine_projection_test.
# This may be replaced when dependencies are built.
