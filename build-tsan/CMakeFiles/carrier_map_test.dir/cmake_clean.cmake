file(REMOVE_RECURSE
  "CMakeFiles/carrier_map_test.dir/tests/carrier_map_test.cpp.o"
  "CMakeFiles/carrier_map_test.dir/tests/carrier_map_test.cpp.o.d"
  "carrier_map_test"
  "carrier_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carrier_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
