# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for carrier_map_test.
