# Empty dependencies file for carrier_map_test.
# This may be replaced when dependencies are built.
