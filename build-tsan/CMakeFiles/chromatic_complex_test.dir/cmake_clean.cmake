file(REMOVE_RECURSE
  "CMakeFiles/chromatic_complex_test.dir/tests/chromatic_complex_test.cpp.o"
  "CMakeFiles/chromatic_complex_test.dir/tests/chromatic_complex_test.cpp.o.d"
  "chromatic_complex_test"
  "chromatic_complex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chromatic_complex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
