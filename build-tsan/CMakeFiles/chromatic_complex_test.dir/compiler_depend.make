# Empty compiler generated dependencies file for chromatic_complex_test.
# This may be replaced when dependencies are built.
