file(REMOVE_RECURSE
  "CMakeFiles/chromatic_csp_test.dir/tests/chromatic_csp_test.cpp.o"
  "CMakeFiles/chromatic_csp_test.dir/tests/chromatic_csp_test.cpp.o.d"
  "chromatic_csp_test"
  "chromatic_csp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chromatic_csp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
