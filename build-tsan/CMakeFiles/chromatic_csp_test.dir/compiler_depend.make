# Empty compiler generated dependencies file for chromatic_csp_test.
# This may be replaced when dependencies are built.
