file(REMOVE_RECURSE
  "CMakeFiles/combinatorics_test.dir/tests/combinatorics_test.cpp.o"
  "CMakeFiles/combinatorics_test.dir/tests/combinatorics_test.cpp.o.d"
  "combinatorics_test"
  "combinatorics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combinatorics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
