# Empty compiler generated dependencies file for combinatorics_test.
# This may be replaced when dependencies are built.
