file(REMOVE_RECURSE
  "CMakeFiles/commit_adopt_test.dir/tests/commit_adopt_test.cpp.o"
  "CMakeFiles/commit_adopt_test.dir/tests/commit_adopt_test.cpp.o.d"
  "commit_adopt_test"
  "commit_adopt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_adopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
