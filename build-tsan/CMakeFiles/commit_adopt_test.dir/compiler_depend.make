# Empty compiler generated dependencies file for commit_adopt_test.
# This may be replaced when dependencies are built.
