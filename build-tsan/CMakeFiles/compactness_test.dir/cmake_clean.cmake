file(REMOVE_RECURSE
  "CMakeFiles/compactness_test.dir/tests/compactness_test.cpp.o"
  "CMakeFiles/compactness_test.dir/tests/compactness_test.cpp.o.d"
  "compactness_test"
  "compactness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compactness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
