# Empty dependencies file for compactness_test.
# This may be replaced when dependencies are built.
