file(REMOVE_RECURSE
  "CMakeFiles/connectivity_test.dir/tests/connectivity_test.cpp.o"
  "CMakeFiles/connectivity_test.dir/tests/connectivity_test.cpp.o.d"
  "connectivity_test"
  "connectivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connectivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
