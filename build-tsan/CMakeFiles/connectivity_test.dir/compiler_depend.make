# Empty compiler generated dependencies file for connectivity_test.
# This may be replaced when dependencies are built.
