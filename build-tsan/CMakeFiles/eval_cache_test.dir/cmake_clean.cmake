file(REMOVE_RECURSE
  "CMakeFiles/eval_cache_test.dir/tests/eval_cache_test.cpp.o"
  "CMakeFiles/eval_cache_test.dir/tests/eval_cache_test.cpp.o.d"
  "eval_cache_test"
  "eval_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
