# Empty compiler generated dependencies file for eval_cache_test.
# This may be replaced when dependencies are built.
