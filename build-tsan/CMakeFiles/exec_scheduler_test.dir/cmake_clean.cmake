file(REMOVE_RECURSE
  "CMakeFiles/exec_scheduler_test.dir/tests/exec_scheduler_test.cpp.o"
  "CMakeFiles/exec_scheduler_test.dir/tests/exec_scheduler_test.cpp.o.d"
  "exec_scheduler_test"
  "exec_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
