# Empty dependencies file for exec_scheduler_test.
# This may be replaced when dependencies are built.
