file(REMOVE_RECURSE
  "CMakeFiles/facet_graph_test.dir/tests/facet_graph_test.cpp.o"
  "CMakeFiles/facet_graph_test.dir/tests/facet_graph_test.cpp.o.d"
  "facet_graph_test"
  "facet_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facet_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
