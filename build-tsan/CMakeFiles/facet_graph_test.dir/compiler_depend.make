# Empty compiler generated dependencies file for facet_graph_test.
# This may be replaced when dependencies are built.
