
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/act_solver.cpp" "CMakeFiles/gact.dir/src/core/act_solver.cpp.o" "gcc" "CMakeFiles/gact.dir/src/core/act_solver.cpp.o.d"
  "/root/repo/src/core/chromatic_csp.cpp" "CMakeFiles/gact.dir/src/core/chromatic_csp.cpp.o" "gcc" "CMakeFiles/gact.dir/src/core/chromatic_csp.cpp.o.d"
  "/root/repo/src/core/eval_cache.cpp" "CMakeFiles/gact.dir/src/core/eval_cache.cpp.o" "gcc" "CMakeFiles/gact.dir/src/core/eval_cache.cpp.o.d"
  "/root/repo/src/core/lt_pipeline.cpp" "CMakeFiles/gact.dir/src/core/lt_pipeline.cpp.o" "gcc" "CMakeFiles/gact.dir/src/core/lt_pipeline.cpp.o.d"
  "/root/repo/src/core/nogood_store.cpp" "CMakeFiles/gact.dir/src/core/nogood_store.cpp.o" "gcc" "CMakeFiles/gact.dir/src/core/nogood_store.cpp.o.d"
  "/root/repo/src/core/protocol_to_map.cpp" "CMakeFiles/gact.dir/src/core/protocol_to_map.cpp.o" "gcc" "CMakeFiles/gact.dir/src/core/protocol_to_map.cpp.o.d"
  "/root/repo/src/core/terminating_subdivision.cpp" "CMakeFiles/gact.dir/src/core/terminating_subdivision.cpp.o" "gcc" "CMakeFiles/gact.dir/src/core/terminating_subdivision.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "CMakeFiles/gact.dir/src/engine/engine.cpp.o" "gcc" "CMakeFiles/gact.dir/src/engine/engine.cpp.o.d"
  "/root/repo/src/engine/executable.cpp" "CMakeFiles/gact.dir/src/engine/executable.cpp.o" "gcc" "CMakeFiles/gact.dir/src/engine/executable.cpp.o.d"
  "/root/repo/src/engine/general_route.cpp" "CMakeFiles/gact.dir/src/engine/general_route.cpp.o" "gcc" "CMakeFiles/gact.dir/src/engine/general_route.cpp.o.d"
  "/root/repo/src/engine/report_json.cpp" "CMakeFiles/gact.dir/src/engine/report_json.cpp.o" "gcc" "CMakeFiles/gact.dir/src/engine/report_json.cpp.o.d"
  "/root/repo/src/engine/scenario.cpp" "CMakeFiles/gact.dir/src/engine/scenario.cpp.o" "gcc" "CMakeFiles/gact.dir/src/engine/scenario.cpp.o.d"
  "/root/repo/src/engine/scenario_family.cpp" "CMakeFiles/gact.dir/src/engine/scenario_family.cpp.o" "gcc" "CMakeFiles/gact.dir/src/engine/scenario_family.cpp.o.d"
  "/root/repo/src/engine/scenario_registry.cpp" "CMakeFiles/gact.dir/src/engine/scenario_registry.cpp.o" "gcc" "CMakeFiles/gact.dir/src/engine/scenario_registry.cpp.o.d"
  "/root/repo/src/engine/stable_rule.cpp" "CMakeFiles/gact.dir/src/engine/stable_rule.cpp.o" "gcc" "CMakeFiles/gact.dir/src/engine/stable_rule.cpp.o.d"
  "/root/repo/src/exec/scheduler.cpp" "CMakeFiles/gact.dir/src/exec/scheduler.cpp.o" "gcc" "CMakeFiles/gact.dir/src/exec/scheduler.cpp.o.d"
  "/root/repo/src/exec/task_group.cpp" "CMakeFiles/gact.dir/src/exec/task_group.cpp.o" "gcc" "CMakeFiles/gact.dir/src/exec/task_group.cpp.o.d"
  "/root/repo/src/iis/affine_projection.cpp" "CMakeFiles/gact.dir/src/iis/affine_projection.cpp.o" "gcc" "CMakeFiles/gact.dir/src/iis/affine_projection.cpp.o.d"
  "/root/repo/src/iis/compactness.cpp" "CMakeFiles/gact.dir/src/iis/compactness.cpp.o" "gcc" "CMakeFiles/gact.dir/src/iis/compactness.cpp.o.d"
  "/root/repo/src/iis/models.cpp" "CMakeFiles/gact.dir/src/iis/models.cpp.o" "gcc" "CMakeFiles/gact.dir/src/iis/models.cpp.o.d"
  "/root/repo/src/iis/ordered_partition.cpp" "CMakeFiles/gact.dir/src/iis/ordered_partition.cpp.o" "gcc" "CMakeFiles/gact.dir/src/iis/ordered_partition.cpp.o.d"
  "/root/repo/src/iis/projection.cpp" "CMakeFiles/gact.dir/src/iis/projection.cpp.o" "gcc" "CMakeFiles/gact.dir/src/iis/projection.cpp.o.d"
  "/root/repo/src/iis/run.cpp" "CMakeFiles/gact.dir/src/iis/run.cpp.o" "gcc" "CMakeFiles/gact.dir/src/iis/run.cpp.o.d"
  "/root/repo/src/iis/run_enumeration.cpp" "CMakeFiles/gact.dir/src/iis/run_enumeration.cpp.o" "gcc" "CMakeFiles/gact.dir/src/iis/run_enumeration.cpp.o.d"
  "/root/repo/src/iis/view.cpp" "CMakeFiles/gact.dir/src/iis/view.cpp.o" "gcc" "CMakeFiles/gact.dir/src/iis/view.cpp.o.d"
  "/root/repo/src/protocol/commit_adopt.cpp" "CMakeFiles/gact.dir/src/protocol/commit_adopt.cpp.o" "gcc" "CMakeFiles/gact.dir/src/protocol/commit_adopt.cpp.o.d"
  "/root/repo/src/protocol/gact_protocol.cpp" "CMakeFiles/gact.dir/src/protocol/gact_protocol.cpp.o" "gcc" "CMakeFiles/gact.dir/src/protocol/gact_protocol.cpp.o.d"
  "/root/repo/src/protocol/simple_protocols.cpp" "CMakeFiles/gact.dir/src/protocol/simple_protocols.cpp.o" "gcc" "CMakeFiles/gact.dir/src/protocol/simple_protocols.cpp.o.d"
  "/root/repo/src/protocol/verifier.cpp" "CMakeFiles/gact.dir/src/protocol/verifier.cpp.o" "gcc" "CMakeFiles/gact.dir/src/protocol/verifier.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "CMakeFiles/gact.dir/src/runtime/executor.cpp.o" "gcc" "CMakeFiles/gact.dir/src/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/fuzz.cpp" "CMakeFiles/gact.dir/src/runtime/fuzz.cpp.o" "gcc" "CMakeFiles/gact.dir/src/runtime/fuzz.cpp.o.d"
  "/root/repo/src/runtime/schedule.cpp" "CMakeFiles/gact.dir/src/runtime/schedule.cpp.o" "gcc" "CMakeFiles/gact.dir/src/runtime/schedule.cpp.o.d"
  "/root/repo/src/service/client.cpp" "CMakeFiles/gact.dir/src/service/client.cpp.o" "gcc" "CMakeFiles/gact.dir/src/service/client.cpp.o.d"
  "/root/repo/src/service/framing.cpp" "CMakeFiles/gact.dir/src/service/framing.cpp.o" "gcc" "CMakeFiles/gact.dir/src/service/framing.cpp.o.d"
  "/root/repo/src/service/server.cpp" "CMakeFiles/gact.dir/src/service/server.cpp.o" "gcc" "CMakeFiles/gact.dir/src/service/server.cpp.o.d"
  "/root/repo/src/sm/iis_executor.cpp" "CMakeFiles/gact.dir/src/sm/iis_executor.cpp.o" "gcc" "CMakeFiles/gact.dir/src/sm/iis_executor.cpp.o.d"
  "/root/repo/src/sm/immediate_snapshot.cpp" "CMakeFiles/gact.dir/src/sm/immediate_snapshot.cpp.o" "gcc" "CMakeFiles/gact.dir/src/sm/immediate_snapshot.cpp.o.d"
  "/root/repo/src/sm/registers.cpp" "CMakeFiles/gact.dir/src/sm/registers.cpp.o" "gcc" "CMakeFiles/gact.dir/src/sm/registers.cpp.o.d"
  "/root/repo/src/tasks/affine_task.cpp" "CMakeFiles/gact.dir/src/tasks/affine_task.cpp.o" "gcc" "CMakeFiles/gact.dir/src/tasks/affine_task.cpp.o.d"
  "/root/repo/src/tasks/standard_tasks.cpp" "CMakeFiles/gact.dir/src/tasks/standard_tasks.cpp.o" "gcc" "CMakeFiles/gact.dir/src/tasks/standard_tasks.cpp.o.d"
  "/root/repo/src/tasks/task.cpp" "CMakeFiles/gact.dir/src/tasks/task.cpp.o" "gcc" "CMakeFiles/gact.dir/src/tasks/task.cpp.o.d"
  "/root/repo/src/topology/adjacency_index.cpp" "CMakeFiles/gact.dir/src/topology/adjacency_index.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/adjacency_index.cpp.o.d"
  "/root/repo/src/topology/carrier_map.cpp" "CMakeFiles/gact.dir/src/topology/carrier_map.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/carrier_map.cpp.o.d"
  "/root/repo/src/topology/chromatic_complex.cpp" "CMakeFiles/gact.dir/src/topology/chromatic_complex.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/chromatic_complex.cpp.o.d"
  "/root/repo/src/topology/combinatorics.cpp" "CMakeFiles/gact.dir/src/topology/combinatorics.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/combinatorics.cpp.o.d"
  "/root/repo/src/topology/connectivity.cpp" "CMakeFiles/gact.dir/src/topology/connectivity.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/connectivity.cpp.o.d"
  "/root/repo/src/topology/facet_graph.cpp" "CMakeFiles/gact.dir/src/topology/facet_graph.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/facet_graph.cpp.o.d"
  "/root/repo/src/topology/geometry.cpp" "CMakeFiles/gact.dir/src/topology/geometry.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/geometry.cpp.o.d"
  "/root/repo/src/topology/homology.cpp" "CMakeFiles/gact.dir/src/topology/homology.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/homology.cpp.o.d"
  "/root/repo/src/topology/simplex.cpp" "CMakeFiles/gact.dir/src/topology/simplex.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/simplex.cpp.o.d"
  "/root/repo/src/topology/simplicial_complex.cpp" "CMakeFiles/gact.dir/src/topology/simplicial_complex.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/simplicial_complex.cpp.o.d"
  "/root/repo/src/topology/simplicial_map.cpp" "CMakeFiles/gact.dir/src/topology/simplicial_map.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/simplicial_map.cpp.o.d"
  "/root/repo/src/topology/subdivision.cpp" "CMakeFiles/gact.dir/src/topology/subdivision.cpp.o" "gcc" "CMakeFiles/gact.dir/src/topology/subdivision.cpp.o.d"
  "/root/repo/src/util/json.cpp" "CMakeFiles/gact.dir/src/util/json.cpp.o" "gcc" "CMakeFiles/gact.dir/src/util/json.cpp.o.d"
  "/root/repo/src/util/process_set.cpp" "CMakeFiles/gact.dir/src/util/process_set.cpp.o" "gcc" "CMakeFiles/gact.dir/src/util/process_set.cpp.o.d"
  "/root/repo/src/util/rational.cpp" "CMakeFiles/gact.dir/src/util/rational.cpp.o" "gcc" "CMakeFiles/gact.dir/src/util/rational.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
