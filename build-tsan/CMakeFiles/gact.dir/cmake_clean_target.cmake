file(REMOVE_RECURSE
  "libgact.a"
)
