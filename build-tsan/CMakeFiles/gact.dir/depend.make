# Empty dependencies file for gact.
# This may be replaced when dependencies are built.
