file(REMOVE_RECURSE
  "CMakeFiles/gact_client.dir/tools/gact_client.cpp.o"
  "CMakeFiles/gact_client.dir/tools/gact_client.cpp.o.d"
  "gact_client"
  "gact_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gact_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
