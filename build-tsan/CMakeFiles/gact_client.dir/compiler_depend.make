# Empty compiler generated dependencies file for gact_client.
# This may be replaced when dependencies are built.
