file(REMOVE_RECURSE
  "CMakeFiles/gact_depth2_stress_test.dir/tests/gact_depth2_stress_test.cpp.o"
  "CMakeFiles/gact_depth2_stress_test.dir/tests/gact_depth2_stress_test.cpp.o.d"
  "gact_depth2_stress_test"
  "gact_depth2_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gact_depth2_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
