# Empty compiler generated dependencies file for gact_depth2_stress_test.
# This may be replaced when dependencies are built.
