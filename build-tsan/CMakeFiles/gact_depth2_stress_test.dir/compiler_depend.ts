# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gact_depth2_stress_test.
