file(REMOVE_RECURSE
  "CMakeFiles/gact_fuzz.dir/tools/gact_fuzz.cpp.o"
  "CMakeFiles/gact_fuzz.dir/tools/gact_fuzz.cpp.o.d"
  "gact_fuzz"
  "gact_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gact_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
