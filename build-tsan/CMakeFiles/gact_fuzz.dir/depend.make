# Empty dependencies file for gact_fuzz.
# This may be replaced when dependencies are built.
