file(REMOVE_RECURSE
  "CMakeFiles/gact_protocol_test.dir/tests/gact_protocol_test.cpp.o"
  "CMakeFiles/gact_protocol_test.dir/tests/gact_protocol_test.cpp.o.d"
  "gact_protocol_test"
  "gact_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gact_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
