# Empty dependencies file for gact_protocol_test.
# This may be replaced when dependencies are built.
