file(REMOVE_RECURSE
  "CMakeFiles/gact_serve.dir/tools/gact_serve.cpp.o"
  "CMakeFiles/gact_serve.dir/tools/gact_serve.cpp.o.d"
  "gact_serve"
  "gact_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gact_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
