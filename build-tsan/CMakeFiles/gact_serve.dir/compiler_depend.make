# Empty compiler generated dependencies file for gact_serve.
# This may be replaced when dependencies are built.
