file(REMOVE_RECURSE
  "CMakeFiles/gact_sweep.dir/tools/gact_sweep.cpp.o"
  "CMakeFiles/gact_sweep.dir/tools/gact_sweep.cpp.o.d"
  "gact_sweep"
  "gact_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gact_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
