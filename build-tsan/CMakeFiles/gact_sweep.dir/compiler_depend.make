# Empty compiler generated dependencies file for gact_sweep.
# This may be replaced when dependencies are built.
