file(REMOVE_RECURSE
  "CMakeFiles/generic_models_test.dir/tests/generic_models_test.cpp.o"
  "CMakeFiles/generic_models_test.dir/tests/generic_models_test.cpp.o.d"
  "generic_models_test"
  "generic_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
