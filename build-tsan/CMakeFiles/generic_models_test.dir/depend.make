# Empty dependencies file for generic_models_test.
# This may be replaced when dependencies are built.
