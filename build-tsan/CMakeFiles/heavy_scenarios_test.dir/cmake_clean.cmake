file(REMOVE_RECURSE
  "CMakeFiles/heavy_scenarios_test.dir/tests/heavy_scenarios_test.cpp.o"
  "CMakeFiles/heavy_scenarios_test.dir/tests/heavy_scenarios_test.cpp.o.d"
  "heavy_scenarios_test"
  "heavy_scenarios_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heavy_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
