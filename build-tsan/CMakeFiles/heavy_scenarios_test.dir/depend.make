# Empty dependencies file for heavy_scenarios_test.
# This may be replaced when dependencies are built.
