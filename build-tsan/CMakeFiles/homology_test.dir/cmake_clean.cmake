file(REMOVE_RECURSE
  "CMakeFiles/homology_test.dir/tests/homology_test.cpp.o"
  "CMakeFiles/homology_test.dir/tests/homology_test.cpp.o.d"
  "homology_test"
  "homology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
