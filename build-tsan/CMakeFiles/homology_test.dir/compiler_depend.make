# Empty compiler generated dependencies file for homology_test.
# This may be replaced when dependencies are built.
