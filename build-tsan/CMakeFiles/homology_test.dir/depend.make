# Empty dependencies file for homology_test.
# This may be replaced when dependencies are built.
