file(REMOVE_RECURSE
  "CMakeFiles/iis_executor_test.dir/tests/iis_executor_test.cpp.o"
  "CMakeFiles/iis_executor_test.dir/tests/iis_executor_test.cpp.o.d"
  "iis_executor_test"
  "iis_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iis_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
