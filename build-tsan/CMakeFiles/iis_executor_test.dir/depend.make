# Empty dependencies file for iis_executor_test.
# This may be replaced when dependencies are built.
