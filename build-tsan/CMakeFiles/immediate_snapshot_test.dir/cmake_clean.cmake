file(REMOVE_RECURSE
  "CMakeFiles/immediate_snapshot_test.dir/tests/immediate_snapshot_test.cpp.o"
  "CMakeFiles/immediate_snapshot_test.dir/tests/immediate_snapshot_test.cpp.o.d"
  "immediate_snapshot_test"
  "immediate_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/immediate_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
