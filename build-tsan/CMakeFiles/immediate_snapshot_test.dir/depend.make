# Empty dependencies file for immediate_snapshot_test.
# This may be replaced when dependencies are built.
