# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lt_pipeline_extra_test.
