# Empty dependencies file for lt_pipeline_extra_test.
# This may be replaced when dependencies are built.
