file(REMOVE_RECURSE
  "CMakeFiles/lt_pipeline_test.dir/tests/lt_pipeline_test.cpp.o"
  "CMakeFiles/lt_pipeline_test.dir/tests/lt_pipeline_test.cpp.o.d"
  "lt_pipeline_test"
  "lt_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lt_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
