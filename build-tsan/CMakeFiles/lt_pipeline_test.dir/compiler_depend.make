# Empty compiler generated dependencies file for lt_pipeline_test.
# This may be replaced when dependencies are built.
