file(REMOVE_RECURSE
  "CMakeFiles/nogood_exchange_test.dir/tests/nogood_exchange_test.cpp.o"
  "CMakeFiles/nogood_exchange_test.dir/tests/nogood_exchange_test.cpp.o.d"
  "nogood_exchange_test"
  "nogood_exchange_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nogood_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
