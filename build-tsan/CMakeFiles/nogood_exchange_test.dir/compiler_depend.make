# Empty compiler generated dependencies file for nogood_exchange_test.
# This may be replaced when dependencies are built.
