file(REMOVE_RECURSE
  "CMakeFiles/nogood_gc_test.dir/tests/nogood_gc_test.cpp.o"
  "CMakeFiles/nogood_gc_test.dir/tests/nogood_gc_test.cpp.o.d"
  "nogood_gc_test"
  "nogood_gc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nogood_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
