# Empty dependencies file for nogood_gc_test.
# This may be replaced when dependencies are built.
