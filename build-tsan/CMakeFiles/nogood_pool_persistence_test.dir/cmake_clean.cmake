file(REMOVE_RECURSE
  "CMakeFiles/nogood_pool_persistence_test.dir/tests/nogood_pool_persistence_test.cpp.o"
  "CMakeFiles/nogood_pool_persistence_test.dir/tests/nogood_pool_persistence_test.cpp.o.d"
  "nogood_pool_persistence_test"
  "nogood_pool_persistence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nogood_pool_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
