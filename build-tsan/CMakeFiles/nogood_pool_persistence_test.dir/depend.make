# Empty dependencies file for nogood_pool_persistence_test.
# This may be replaced when dependencies are built.
