file(REMOVE_RECURSE
  "CMakeFiles/ordered_partition_test.dir/tests/ordered_partition_test.cpp.o"
  "CMakeFiles/ordered_partition_test.dir/tests/ordered_partition_test.cpp.o.d"
  "ordered_partition_test"
  "ordered_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
