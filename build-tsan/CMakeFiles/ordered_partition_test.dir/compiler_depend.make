# Empty compiler generated dependencies file for ordered_partition_test.
# This may be replaced when dependencies are built.
