file(REMOVE_RECURSE
  "CMakeFiles/process_set_test.dir/tests/process_set_test.cpp.o"
  "CMakeFiles/process_set_test.dir/tests/process_set_test.cpp.o.d"
  "process_set_test"
  "process_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
