# Empty dependencies file for process_set_test.
# This may be replaced when dependencies are built.
