file(REMOVE_RECURSE
  "CMakeFiles/protocol_to_map_test.dir/tests/protocol_to_map_test.cpp.o"
  "CMakeFiles/protocol_to_map_test.dir/tests/protocol_to_map_test.cpp.o.d"
  "protocol_to_map_test"
  "protocol_to_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_to_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
