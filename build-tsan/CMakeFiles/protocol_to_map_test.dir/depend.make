# Empty dependencies file for protocol_to_map_test.
# This may be replaced when dependencies are built.
