file(REMOVE_RECURSE
  "CMakeFiles/request_queue_test.dir/tests/request_queue_test.cpp.o"
  "CMakeFiles/request_queue_test.dir/tests/request_queue_test.cpp.o.d"
  "request_queue_test"
  "request_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
