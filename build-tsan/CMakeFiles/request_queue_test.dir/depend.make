# Empty dependencies file for request_queue_test.
# This may be replaced when dependencies are built.
