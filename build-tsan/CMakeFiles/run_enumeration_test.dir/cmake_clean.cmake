file(REMOVE_RECURSE
  "CMakeFiles/run_enumeration_test.dir/tests/run_enumeration_test.cpp.o"
  "CMakeFiles/run_enumeration_test.dir/tests/run_enumeration_test.cpp.o.d"
  "run_enumeration_test"
  "run_enumeration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_enumeration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
