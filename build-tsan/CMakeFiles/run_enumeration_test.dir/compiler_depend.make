# Empty compiler generated dependencies file for run_enumeration_test.
# This may be replaced when dependencies are built.
