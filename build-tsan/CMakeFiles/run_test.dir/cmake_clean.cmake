file(REMOVE_RECURSE
  "CMakeFiles/run_test.dir/tests/run_test.cpp.o"
  "CMakeFiles/run_test.dir/tests/run_test.cpp.o.d"
  "run_test"
  "run_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
