# Empty dependencies file for run_test.
# This may be replaced when dependencies are built.
