file(REMOVE_RECURSE
  "CMakeFiles/runtime_executor_test.dir/tests/runtime_executor_test.cpp.o"
  "CMakeFiles/runtime_executor_test.dir/tests/runtime_executor_test.cpp.o.d"
  "runtime_executor_test"
  "runtime_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
