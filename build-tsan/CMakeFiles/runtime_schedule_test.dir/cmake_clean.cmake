file(REMOVE_RECURSE
  "CMakeFiles/runtime_schedule_test.dir/tests/runtime_schedule_test.cpp.o"
  "CMakeFiles/runtime_schedule_test.dir/tests/runtime_schedule_test.cpp.o.d"
  "runtime_schedule_test"
  "runtime_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
