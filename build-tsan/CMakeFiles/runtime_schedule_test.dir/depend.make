# Empty dependencies file for runtime_schedule_test.
# This may be replaced when dependencies are built.
