file(REMOVE_RECURSE
  "CMakeFiles/scenario_family_test.dir/tests/scenario_family_test.cpp.o"
  "CMakeFiles/scenario_family_test.dir/tests/scenario_family_test.cpp.o.d"
  "scenario_family_test"
  "scenario_family_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
