# Empty compiler generated dependencies file for scenario_family_test.
# This may be replaced when dependencies are built.
