file(REMOVE_RECURSE
  "CMakeFiles/service_e2e_test.dir/tests/service_e2e_test.cpp.o"
  "CMakeFiles/service_e2e_test.dir/tests/service_e2e_test.cpp.o.d"
  "service_e2e_test"
  "service_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
