# Empty dependencies file for service_e2e_test.
# This may be replaced when dependencies are built.
