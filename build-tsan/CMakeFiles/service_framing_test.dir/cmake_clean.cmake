file(REMOVE_RECURSE
  "CMakeFiles/service_framing_test.dir/tests/service_framing_test.cpp.o"
  "CMakeFiles/service_framing_test.dir/tests/service_framing_test.cpp.o.d"
  "service_framing_test"
  "service_framing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_framing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
