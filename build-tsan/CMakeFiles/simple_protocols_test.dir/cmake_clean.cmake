file(REMOVE_RECURSE
  "CMakeFiles/simple_protocols_test.dir/tests/simple_protocols_test.cpp.o"
  "CMakeFiles/simple_protocols_test.dir/tests/simple_protocols_test.cpp.o.d"
  "simple_protocols_test"
  "simple_protocols_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
