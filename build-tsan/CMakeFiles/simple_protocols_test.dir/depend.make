# Empty dependencies file for simple_protocols_test.
# This may be replaced when dependencies are built.
