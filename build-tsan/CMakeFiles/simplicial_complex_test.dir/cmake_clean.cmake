file(REMOVE_RECURSE
  "CMakeFiles/simplicial_complex_test.dir/tests/simplicial_complex_test.cpp.o"
  "CMakeFiles/simplicial_complex_test.dir/tests/simplicial_complex_test.cpp.o.d"
  "simplicial_complex_test"
  "simplicial_complex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplicial_complex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
