# Empty compiler generated dependencies file for simplicial_complex_test.
# This may be replaced when dependencies are built.
