file(REMOVE_RECURSE
  "CMakeFiles/simplicial_map_test.dir/tests/simplicial_map_test.cpp.o"
  "CMakeFiles/simplicial_map_test.dir/tests/simplicial_map_test.cpp.o.d"
  "simplicial_map_test"
  "simplicial_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplicial_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
