# Empty dependencies file for simplicial_map_test.
# This may be replaced when dependencies are built.
