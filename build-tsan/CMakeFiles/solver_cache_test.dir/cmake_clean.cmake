file(REMOVE_RECURSE
  "CMakeFiles/solver_cache_test.dir/tests/solver_cache_test.cpp.o"
  "CMakeFiles/solver_cache_test.dir/tests/solver_cache_test.cpp.o.d"
  "solver_cache_test"
  "solver_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
