# Empty dependencies file for solver_cache_test.
# This may be replaced when dependencies are built.
