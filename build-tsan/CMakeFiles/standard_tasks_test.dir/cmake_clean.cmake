file(REMOVE_RECURSE
  "CMakeFiles/standard_tasks_test.dir/tests/standard_tasks_test.cpp.o"
  "CMakeFiles/standard_tasks_test.dir/tests/standard_tasks_test.cpp.o.d"
  "standard_tasks_test"
  "standard_tasks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standard_tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
