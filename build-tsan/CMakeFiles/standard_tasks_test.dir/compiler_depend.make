# Empty compiler generated dependencies file for standard_tasks_test.
# This may be replaced when dependencies are built.
