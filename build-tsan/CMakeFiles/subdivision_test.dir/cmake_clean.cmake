file(REMOVE_RECURSE
  "CMakeFiles/subdivision_test.dir/tests/subdivision_test.cpp.o"
  "CMakeFiles/subdivision_test.dir/tests/subdivision_test.cpp.o.d"
  "subdivision_test"
  "subdivision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdivision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
