file(REMOVE_RECURSE
  "CMakeFiles/terminating_subdivision_test.dir/tests/terminating_subdivision_test.cpp.o"
  "CMakeFiles/terminating_subdivision_test.dir/tests/terminating_subdivision_test.cpp.o.d"
  "terminating_subdivision_test"
  "terminating_subdivision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terminating_subdivision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
