# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for terminating_subdivision_test.
