# Empty dependencies file for terminating_subdivision_test.
# This may be replaced when dependencies are built.
