file(REMOVE_RECURSE
  "CMakeFiles/witness_digest_test.dir/tests/witness_digest_test.cpp.o"
  "CMakeFiles/witness_digest_test.dir/tests/witness_digest_test.cpp.o.d"
  "witness_digest_test"
  "witness_digest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_digest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
