// The engine driver: run any registered (Task, Model) scenario — or the
// whole quick registry, sharded across threads — from the command line.
//
//   example_engine_cli                 # run the quick registry, batched
//   example_engine_cli --list          # list scenarios (nothing built)
//   example_engine_cli --threads 4     # shard width (default 2)
//   example_engine_cli --no-pool       # disable cross-solve nogood reuse
//   example_engine_cli --no-restarts   # disable Luby restarts in the CSP
//   example_engine_cli --no-gc         # full nogood store rejects instead
//                                      # of collecting (pre-GC behavior)
//   example_engine_cli --pool-file learned.pool lt-2-1-res1
//                                      # persist the pool across processes
//   example_engine_cli --json          # machine-readable reports (one
//                                      # JSON object per line, the same
//                                      # schema gact_serve replies with)
//   example_engine_cli lt-2-1-res1 consensus-2-wf   # run by name
//
// --pool-file and --no-pool contradict each other; asking for both is a
// usage error, not a silent precedence.
//
// Exit codes (pinned by tools/exit_codes_e2e.cmake, aligned with
// gact_fuzz and gact_client):
//   0  the batch completed — including unsolvable / budget-exhausted
//      verdicts, which are answers, not failures
//   2  usage error (unknown scenario, contradictory flags)
//   3  internal error (exception during solve or reporting)
//
// Every solvability question the other examples answer by hand is one
// registry name here: the Scenario carries the task, the model, and the
// budgets; the SolveReport carries the verdict, the witness, and the
// per-stage timings. By default one SharedNogoodPool is wired into every
// selected scenario, so scenarios posing the same CSP (e.g. lt-2-1-res1
// and lt-2-1-adv, which differ only in their model) and repeated runs
// within the process share learned conflicts — verdicts and witnesses
// are unaffected, only the search effort shrinks.
//
// --pool-file extends that sharing across PROCESSES: the pool is loaded
// from the file before the run (a missing file is a cold start; a
// corrupted or version-mismatched one is reported and ignored) and
// saved back after, so a fresh invocation warm-starts on everything
// earlier invocations learned — the second process reproduces the
// bit-identical witness (compare the printed witness digests) at 0
// backtracks. The load/save happens ONCE here, around the whole batch,
// rather than per solve via EngineOptions::pool_file: the scenarios
// share one pool, and concurrent per-solve saves of one file would
// race.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>

#include "engine/engine.h"
#include "engine/report_json.h"
#include "engine/scenario_registry.h"

namespace {

using namespace gact;

void print_report(const engine::SolveReport& report) {
    std::cout << "  " << report.summary() << "\n";
    if (report.witness.has_value()) {
        // engine::witness_digest_hex is the same digest gact_serve
        // reports, so "bit-identical witness" can be asserted across
        // the CLI and the service by comparing one hex line.
        std::cout << "      witness digest: "
                  << engine::witness_digest_hex(*report.witness) << " ("
                  << report.witness->size() << " vertices)\n";
    }
    for (const engine::StageTiming& t : report.timings) {
        std::cout << "      " << t.stage << ": " << t.millis << " ms\n";
    }
    // The nogood-lifecycle counters, printed only when the solve
    // actually learned something: restart/GC behavior is otherwise
    // invisible from the verdict line.
    const core::SearchCounters& c = report.counters;
    if (c.nogoods_recorded != 0 || c.restarts != 0 ||
        c.nogoods_evicted != 0) {
        std::cout << "      nogoods: " << c.nogoods_recorded
                  << " recorded, " << c.nogoods_evicted << " evicted, "
                  << c.restarts << " restarts, " << c.nogood_prunings
                  << " prunings\n";
    }
}

int list_scenarios() {
    std::cout << "registered scenarios:\n";
    for (const auto& spec : engine::ScenarioRegistry::standard().specs()) {
        std::cout << "  " << spec.name << (spec.heavy ? "  [heavy]" : "")
                  << "\n      " << spec.description << "\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const engine::ScenarioRegistry& registry =
        engine::ScenarioRegistry::standard();
    unsigned threads = 2;
    bool no_pool = false;
    bool no_restarts = false;
    bool no_gc = false;
    bool json_output = false;
    std::string pool_file;
    std::vector<engine::Scenario> scenarios;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) return list_scenarios();
        if (std::strcmp(argv[i], "--json") == 0) {
            json_output = true;
            continue;
        }
        if (std::strcmp(argv[i], "--no-pool") == 0) {
            no_pool = true;
            continue;
        }
        if (std::strcmp(argv[i], "--no-restarts") == 0) {
            no_restarts = true;
            continue;
        }
        if (std::strcmp(argv[i], "--no-gc") == 0) {
            no_gc = true;
            continue;
        }
        if (std::strcmp(argv[i], "--pool-file") == 0 && i + 1 < argc) {
            pool_file = argv[++i];
            continue;
        }
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
            if (threads == 0) threads = 1;
            continue;
        }
        std::string why;
        const auto scenario = registry.find(argv[i], &why);
        if (!scenario.has_value()) {
            // The registry's diagnostic cites the family grammar: a
            // near-miss name ("lt-2-9-res1") gets its family's ranges,
            // anything else the full grammar summary plus the
            // registered names.
            std::cerr << "unknown scenario '" << argv[i] << "': " << why
                      << "\n(--list for descriptions)\n";
            return 2;
        }
        scenarios.push_back(*scenario);
    }
    if (!pool_file.empty() && no_pool) {
        // The old behavior silently let --pool-file win; an explicit
        // contradiction deserves an explicit error.
        std::cerr << "usage error: --pool-file requires the pool that "
                     "--no-pool disables; drop one of the two flags\n";
        return 2;
    }
    if (scenarios.empty()) scenarios = registry.quick();
    const bool use_pool = !no_pool;
    for (engine::Scenario& s : scenarios) {
        if (no_restarts) s.options.solver.restarts = false;
        if (no_gc) s.options.solver.nogood_gc = false;
    }

    try {
    // One pool for the whole run: scoping by problem identity keeps
    // unrelated scenarios apart, and nogood reuse is verdict-preserving.
    std::shared_ptr<core::SharedNogoodPool> pool;
    if (use_pool) {
        pool = std::make_shared<core::SharedNogoodPool>();
        // A missing file is the silent first-run cold start; a present
        // but unreadable/corrupt one is warned about (the warm-start
        // the user asked for is not happening).
        std::error_code ec;
        if (!pool_file.empty() &&
            (std::filesystem::exists(pool_file, ec) || ec)) {
            const std::string err = pool->load(pool_file);
            if (!err.empty()) {
                std::cerr << "warning: pool file rejected (" << err
                          << ") — starting cold\n";
            }
        }
        for (engine::Scenario& s : scenarios) s.options.nogood_pool = pool;
    }

    if (!json_output) {
        std::cout << "== gact engine: " << scenarios.size() << " scenario"
                  << (scenarios.size() == 1 ? "" : "s") << " on " << threads
                  << " thread" << (threads == 1 ? "" : "s") << " ==\n";
    }
    const engine::Engine engine;
    const auto reports = engine.solve_batch(scenarios, threads);
    std::size_t solvable = 0;
    for (const auto& report : reports) {
        if (json_output) {
            // One report object per line — the identical schema the
            // solve service puts under "report" in its replies.
            std::cout << engine::report_to_json(report).dump() << "\n";
        } else {
            print_report(report);
        }
        if (report.solvable()) ++solvable;
    }
    if (!json_output) {
        std::cout << "\n" << solvable << "/" << reports.size()
                  << " scenarios solvable in their models\n";
    }

    if (!pool_file.empty()) {
        const std::string err = pool->save(pool_file);
        if (err.empty()) {
            // published() counts every accepted entry, loaded + newly
            // learned: the pool's whole content.
            if (!json_output) {
                std::cout << "pool saved to " << pool_file << " ("
                          << pool->published() << " nogoods)\n";
            }
        } else {
            std::cerr << "warning: pool save failed (" << err << ")\n";
        }
    }
    return 0;
    } catch (const std::exception& e) {
        // A throwing solve is an internal error, distinct from both a
        // clean "unsolvable" answer (0) and a usage error (2).
        std::cerr << "error: " << e.what() << "\n";
        return 3;
    }
}
