// The engine driver: run any registered (Task, Model) scenario — or the
// whole quick registry, sharded across threads — from the command line.
//
//   example_engine_cli                 # run the quick registry, batched
//   example_engine_cli --list          # list scenarios (nothing built)
//   example_engine_cli --threads 4     # shard width (default 2)
//   example_engine_cli --no-pool       # disable cross-solve nogood reuse
//   example_engine_cli lt-2-1-res1 consensus-2-wf   # run by name
//
// Every solvability question the other examples answer by hand is one
// registry name here: the Scenario carries the task, the model, and the
// budgets; the SolveReport carries the verdict, the witness, and the
// per-stage timings. By default one SharedNogoodPool is wired into every
// selected scenario, so scenarios posing the same CSP (e.g. lt-2-1-res1
// and lt-2-1-adv, which differ only in their model) and repeated runs
// within the process share learned conflicts — verdicts and witnesses
// are unaffected, only the search effort shrinks.
#include <cstring>
#include <iostream>
#include <memory>

#include "engine/engine.h"
#include "engine/scenario_registry.h"

namespace {

using namespace gact;

void print_report(const engine::SolveReport& report) {
    std::cout << "  " << report.summary() << "\n";
    for (const engine::StageTiming& t : report.timings) {
        std::cout << "      " << t.stage << ": " << t.millis << " ms\n";
    }
}

int list_scenarios() {
    std::cout << "registered scenarios:\n";
    for (const auto& spec : engine::ScenarioRegistry::standard().specs()) {
        std::cout << "  " << spec.name << (spec.heavy ? "  [heavy]" : "")
                  << "\n      " << spec.description << "\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const engine::ScenarioRegistry& registry =
        engine::ScenarioRegistry::standard();
    unsigned threads = 2;
    bool use_pool = true;
    std::vector<engine::Scenario> scenarios;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) return list_scenarios();
        if (std::strcmp(argv[i], "--no-pool") == 0) {
            use_pool = false;
            continue;
        }
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
            if (threads == 0) threads = 1;
            continue;
        }
        const auto scenario = registry.find(argv[i]);
        if (!scenario.has_value()) {
            std::cerr << "unknown scenario '" << argv[i]
                      << "' (see --list)\n";
            return 2;
        }
        scenarios.push_back(*scenario);
    }
    if (scenarios.empty()) scenarios = registry.quick();

    // One pool for the whole run: scoping by problem identity keeps
    // unrelated scenarios apart, and nogood reuse is verdict-preserving.
    if (use_pool) {
        const auto pool = std::make_shared<core::SharedNogoodPool>();
        for (engine::Scenario& s : scenarios) s.options.nogood_pool = pool;
    }

    std::cout << "== gact engine: " << scenarios.size() << " scenario"
              << (scenarios.size() == 1 ? "" : "s") << " on " << threads
              << " thread" << (threads == 1 ? "" : "s") << " ==\n";
    const engine::Engine engine;
    const auto reports = engine.solve_batch(scenarios, threads);
    std::size_t solvable = 0;
    for (const auto& report : reports) {
        print_report(report);
        if (report.solvable()) ++solvable;
    }
    std::cout << "\n" << solvable << "/" << reports.size()
              << " scenarios solvable in their models\n";
    return 0;
}
