// Arbitrary sub-IIS models (paper, Sections 1, 10, 11).
//
// The paper's characterization covers *any* subset of IIS runs — not just
// the adversarial models that have shared-memory equivalents. This
// example builds such a model: the "leader" model, in which process 0 is
// always scheduled alone at the front of round 1. Consensus — unsolvable
// wait-free, and unsolvable in every non-trivial adversarial model — is
// solvable here, by adopting the leader's value.
#include <iostream>

#include "engine/engine.h"
#include "iis/run_enumeration.h"
#include "protocol/verifier.h"
#include "tasks/standard_tasks.h"

namespace {

using namespace gact;

/// Everyone decides the first process-0 input found in its view.
class AdoptLeader final : public protocol::Protocol {
public:
    explicit AdoptLeader(std::uint32_t num_values) : num_values_(num_values) {}

    std::optional<topo::VertexId> output(
        protocol::ViewId view, const iis::ViewArena& arena) const override {
        const iis::ViewNode& node = arena.node(view);
        if (node.depth < 1) return std::nullopt;
        const auto leader = find(view, arena);
        if (!leader) return std::nullopt;
        return tasks::value_vertex(num_values_, node.owner,
                                   *leader % num_values_);
    }
    std::string name() const override { return "adopt-the-leader"; }

private:
    std::uint32_t num_values_;
    static std::optional<topo::VertexId> find(protocol::ViewId view,
                                              const iis::ViewArena& arena) {
        const iis::ViewNode& node = arena.node(view);
        if (node.depth == 0) {
            return node.owner == 0 ? node.input : std::nullopt;
        }
        for (iis::ViewId s : node.seen) {
            if (const auto f = find(s, arena)) return f;
        }
        return std::nullopt;
    }
};

}  // namespace

int main() {
    std::cout << "== Consensus in a generic (non-adversarial) sub-IIS model "
                 "==\n\n";
    const tasks::Task consensus = tasks::consensus_task(3, 2);

    std::cout << "[1] wait-free, consensus is unsolvable (engine, ACT "
                 "route):\n";
    engine::EngineOptions options;
    options.max_depth = 2;
    const auto act = engine::Engine{}.solve(engine::Scenario::wait_free(
        "consensus-3-wf", consensus, options));
    std::cout << "    depths 0..2: "
              << (act.solvable() ? "witness found?!"
                                 : "exhausted, no witness")
              << "\n\n";

    std::cout << "[2] the leader model: process 0 heads round 1 alone.\n";
    const iis::PredicateModel leader("leader-first", [](const iis::Run& r) {
        return r.round(0).blocks().front() == ProcessSet::of({0});
    });
    const auto runs = iis::filter_by_model(
        iis::enumerate_stabilized_runs(3, 1), leader);
    std::cout << "    " << runs.size()
              << " compact leader runs; the model is not fast-set "
                 "determined (no adversary expresses it)\n\n";

    std::cout << "[3] adopt-the-leader solves consensus there:\n";
    iis::ViewArena arena;
    const AdoptLeader protocol(2);
    const auto report =
        protocol::verify_task(consensus, protocol, runs, 6, arena);
    std::cout << "    " << report.summary() << "\n\n";

    std::cout << "[4] outside the model the same protocol starves:\n";
    const iis::Run no_leader = iis::Run::forever(
        3, iis::OrderedPartition::concurrent(ProcessSet::of({1, 2})));
    const auto bad =
        protocol::verify_task(consensus, protocol, {no_leader}, 6, arena);
    std::cout << "    " << bad.summary() << "\n";
    std::cout << "\nsub-IIS models are strictly richer than adversaries — "
                 "the paper's Section 11 point.\n";
    return 0;
}
