// Quickstart: a tour of the gact library.
//
// Builds the chromatic subdivisions at the heart of the paper, runs an
// IIS execution, computes the paper's run invariants (participants,
// minimal run, fast set), and decides solvability questions through the
// unified engine: one Scenario in, one SolveReport out, for any
// (Task, Model) pair.
#include <iostream>

#include "engine/engine.h"
#include "engine/scenario_registry.h"
#include "iis/affine_projection.h"
#include "iis/projection.h"
#include "iis/run.h"
#include "tasks/standard_tasks.h"
#include "topology/subdivision.h"

int main() {
    using namespace gact;

    std::cout << "== 1. The standard chromatic subdivision ==\n";
    const topo::ChromaticComplex s = topo::ChromaticComplex::standard_simplex(2);
    const topo::SubdividedComplex chr =
        topo::SubdividedComplex::identity(s).chromatic_subdivision();
    std::cout << "Chr s (3 processes): " << chr.complex().facets().size()
              << " facets, " << chr.complex().vertex_ids().size()
              << " vertices\n";
    const topo::SubdividedComplex chr2 = chr.chromatic_subdivision();
    std::cout << "Chr^2 s: " << chr2.complex().facets().size()
              << " facets\n";
    chr2.verify_subdivision_exactness();
    std::cout << "subdivision exactness verified (rational volumes)\n\n";

    std::cout << "== 2. An IIS run and its views ==\n";
    // p0 goes first, then p1 and p2 together - forever.
    const iis::Run run = iis::Run::forever(
        3, iis::OrderedPartition(
               {ProcessSet::of({0}), ProcessSet::of({1, 2})}));
    std::cout << "run: " << run.to_string() << "\n";
    iis::ViewArena arena;
    std::cout << "view of p1 after 2 rounds: "
              << arena.to_string(run.view(1, 2, arena)) << "\n";
    std::cout << "participants: " << run.participants().to_string()
              << ", infinitely participating: "
              << run.infinite_participants().to_string() << "\n";
    std::cout << "minimal(run): " << run.minimal().to_string() << "\n";
    std::cout << "fast set: " << run.fast().to_string()
              << " -> the run is in OF_1 but not in Res_1\n\n";

    std::cout << "== 3. The run <-> subdivision correspondence ==\n";
    const std::vector<topo::VertexId> inputs = {0, 1, 2};
    const auto sigma1 = iis::run_simplex_positions(run, 1, inputs);
    std::cout << "sigma_1 spans:";
    for (const auto& p : sigma1) std::cout << " " << p.to_string();
    std::cout << "\naffine projection pi(run) = "
              << iis::affine_projection(run).to_string()
              << " (exact; the paper's Section 5 limit point)\n\n";

    std::cout << "== 4. Solvability via the engine (one entry point for "
                 "any (Task, Model) pair) ==\n";
    const engine::Engine engine;
    const auto& registry = engine::ScenarioRegistry::standard();

    // A named registry scenario: wait-free immediate snapshot, routed to
    // the Corollary 7.1 search.
    const auto is_report = engine.solve(*registry.find("is-2-wf"));
    std::cout << is_report.summary() << "\n";

    // FLP, as a scenario built inline.
    const auto flp = engine.solve(engine::Scenario::wait_free(
        "consensus-2-wf-inline", tasks::consensus_task(2, 2)));
    std::cout << flp.summary() << " (FLP)\n";

    // The same entry point answers general-model questions — here the
    // paper's headline: L_1 is solvable 1-resiliently (Proposition 9.2).
    const auto lt = engine.solve(*registry.find("lt-2-1-res1"));
    std::cout << lt.summary() << "\n";
    return 0;
}
