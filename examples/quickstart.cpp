// Quickstart: a tour of the gact library.
//
// Builds the chromatic subdivisions at the heart of the paper, runs an
// IIS execution, computes the paper's run invariants (participants,
// minimal run, fast set), and decides a task's wait-free solvability with
// the ACT solver.
#include <iostream>

#include "core/act_solver.h"
#include "iis/affine_projection.h"
#include "iis/projection.h"
#include "iis/run.h"
#include "tasks/standard_tasks.h"
#include "topology/subdivision.h"

int main() {
    using namespace gact;

    std::cout << "== 1. The standard chromatic subdivision ==\n";
    const topo::ChromaticComplex s = topo::ChromaticComplex::standard_simplex(2);
    const topo::SubdividedComplex chr =
        topo::SubdividedComplex::identity(s).chromatic_subdivision();
    std::cout << "Chr s (3 processes): " << chr.complex().facets().size()
              << " facets, " << chr.complex().vertex_ids().size()
              << " vertices\n";
    const topo::SubdividedComplex chr2 = chr.chromatic_subdivision();
    std::cout << "Chr^2 s: " << chr2.complex().facets().size()
              << " facets\n";
    chr2.verify_subdivision_exactness();
    std::cout << "subdivision exactness verified (rational volumes)\n\n";

    std::cout << "== 2. An IIS run and its views ==\n";
    // p0 goes first, then p1 and p2 together - forever.
    const iis::Run run = iis::Run::forever(
        3, iis::OrderedPartition(
               {ProcessSet::of({0}), ProcessSet::of({1, 2})}));
    std::cout << "run: " << run.to_string() << "\n";
    iis::ViewArena arena;
    std::cout << "view of p1 after 2 rounds: "
              << arena.to_string(run.view(1, 2, arena)) << "\n";
    std::cout << "participants: " << run.participants().to_string()
              << ", infinitely participating: "
              << run.infinite_participants().to_string() << "\n";
    std::cout << "minimal(run): " << run.minimal().to_string() << "\n";
    std::cout << "fast set: " << run.fast().to_string()
              << " -> the run is in OF_1 but not in Res_1\n\n";

    std::cout << "== 3. The run <-> subdivision correspondence ==\n";
    const std::vector<topo::VertexId> inputs = {0, 1, 2};
    const auto sigma1 = iis::run_simplex_positions(run, 1, inputs);
    std::cout << "sigma_1 spans:";
    for (const auto& p : sigma1) std::cout << " " << p.to_string();
    std::cout << "\naffine projection pi(run) = "
              << iis::affine_projection(run).to_string()
              << " (exact; the paper's Section 5 limit point)\n\n";

    std::cout << "== 4. Wait-free solvability via ACT (Corollary 7.1) ==\n";
    const tasks::AffineTask is_task = tasks::immediate_snapshot_task(2);
    const core::ActResult act = core::solve_act(is_task.task, 2);
    std::cout << is_task.task.name << ": "
              << (act.solvable ? "solvable" : "not solvable");
    if (act.solvable) std::cout << " at depth " << act.witness_depth;
    std::cout << "\n";

    const tasks::Task consensus = tasks::consensus_task(2, 2);
    const core::ActResult flp = core::solve_act(consensus, 2);
    std::cout << consensus.name << ": "
              << (flp.solvable ? "solvable" : "no witness up to depth 2")
              << " (FLP)\n";
    return 0;
}
