// The shared-memory substrate: IIS executed on snapshot memory.
//
// The paper treats IIS as the mathematical domain and standard shared
// memory (SM) as the real world (its "complex-number domain" analogy).
// This example runs the Borowsky-Gafni immediate-snapshot protocol on
// shared memory step by step, chains the instances into IIS, and checks
// that what the hardware-ish execution produces is exactly the abstract
// IIS semantics - including the Chr s correspondence.
#include <iostream>
#include <random>

#include "sm/iis_executor.h"
#include "topology/subdivision.h"

int main() {
    using namespace gact;

    std::cout << "== One-shot immediate snapshot on shared memory ==\n";
    // p0 runs a few steps, p2 interleaves, p1 sprints; generous tails let
    // everyone finish (a process needs at most 2*(n+2) steps).
    std::vector<ProcessId> schedule = {0, 0, 2, 0, 2, 1, 1, 1, 1, 1};
    for (int i = 0; i < 10; ++i) {
        schedule.push_back(1);
        schedule.push_back(0);
        schedule.push_back(2);
    }
    const auto outcome = sm::run_immediate_snapshot(
        3, {{10}, {20}, {30}}, schedule);
    for (ProcessId p = 0; p < 3; ++p) {
        std::cout << "p" << p << " returned "
                  << outcome.result_sets[p].to_string() << "\n";
    }
    std::cout << "IS properties: "
              << (sm::check_is_properties(outcome).empty() ? "ok" : "BROKEN")
              << "; ordered partition: "
              << sm::outcome_partition(outcome).to_string() << "\n\n";

    std::cout << "== All reachable outcomes = the facets of Chr s ==\n";
    const auto outcomes =
        sm::enumerate_is_outcomes(3, {{1}, {2}, {3}}, ProcessSet::full(3));
    const auto chr = topo::SubdividedComplex::identity(
                         topo::ChromaticComplex::standard_simplex(2))
                         .chromatic_subdivision();
    std::cout << outcomes.size() << " outcomes over all schedules vs "
              << chr.complex().facets().size() << " facets of Chr s\n\n";

    std::cout << "== Chained IS = IIS, with interned full-information "
                 "views ==\n";
    std::mt19937 rng(42);
    iis::ViewArena arena;
    sm::IisExecution exec(3, ProcessSet::full(3), arena);
    std::uniform_int_distribution<int> coin(0, 2);
    for (int i = 0; i < 500; ++i) exec.step(static_cast<ProcessId>(coin(rng)));
    const auto prefix = exec.extract_prefix();
    std::cout << "random schedule realized " << prefix.size()
              << " complete IIS rounds:\n";
    for (std::size_t m = 0; m < prefix.size(); ++m) {
        std::cout << "  round " << m + 1 << ": " << prefix[m].to_string()
                  << "\n";
    }
    std::cout << "arena holds " << arena.size()
              << " distinct views (hash-consed)\n";
    return 0;
}
