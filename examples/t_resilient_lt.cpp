// The paper's headline application (Proposition 9.2), end to end:
// the task L_1 is solvable 1-resiliently by three processes, established
// by the GACT machinery and then *executed*:
//
//   engine scenario (task L_1, model Res_1)  ->  terminating subdivision
//   T  ->  radial projection f  ->  chromatic approximation delta  ->
//   admissibility check  ->  protocol extraction  ->  Definition 4.1
//   verification.
//
// The first five stages are one Engine::solve on the registry's flagship
// scenario; the report's artifacts (T, delta, the compact Res_1 run
// family) feed protocol extraction directly. The paper contrasts this
// construction with the "very involved" operational solution of
// [Gafni 1998]; every stage below is a few lines against the library.
#include <iostream>
#include <map>

#include "engine/engine.h"
#include "engine/scenario_registry.h"
#include "protocol/gact_protocol.h"
#include "protocol/verifier.h"

int main() {
    using namespace gact;

    std::cout << "== L_1 in Res_1, via GACT (Proposition 9.2) ==\n\n";

    std::cout << "[1] solving the (L_1, Res_1) scenario...\n";
    const engine::Scenario scenario =
        *engine::ScenarioRegistry::standard().find("lt-2-1-res1");
    const engine::SolveReport report = engine::Engine{}.solve(scenario);
    std::cout << "    " << report.summary() << "\n";
    std::cout << "    L_1 facets: "
              << scenario.affine->l_complex.facets().size() << "\n";
    std::map<std::size_t, std::size_t> rings;
    for (const auto& f : report.tsub->stable_facets()) {
        ++rings[core::ring_of_stable_facet(*report.tsub, f)];
    }
    for (const auto& [ring, count] : rings) {
        std::cout << "    ring R_" << ring << ": " << count
                  << " stable facets\n";
    }
    std::cout << "    delta found with " << report.total_backtracks
              << " backtracks; carrier conditions verified\n\n";

    std::cout << "[2] admissibility for Res_1 (Theorem 6.1 (a))...\n";
    std::cout << "    " << report.admissibility->runs_checked
              << " compact Res_1 runs; all land by round "
              << report.admissibility->max_landing_round << ": "
              << (report.admissibility->admissible ? "admissible"
                                                   : "NOT admissible")
              << "\n\n";

    std::cout << "[3] extracting the protocol (Theorem 6.1 \"<=\")...\n";
    iis::ViewArena arena;
    const auto build = protocol::build_gact_protocol(
        *report.tsub, *report.witness, report.model_runs, 8, arena);
    std::cout << "    " << build.protocol.size() << " view->output entries, "
              << build.conflicts << " conflicts\n\n";

    std::cout << "[4] verifying Definition 4.1 on every run...\n";
    const auto verification = protocol::verify_inputless(
        scenario.task, build.protocol, report.model_runs, 8, arena);
    std::cout << "    " << verification.summary() << "\n\n";

    std::cout << "[5] one run in detail:\n";
    const iis::Run behind = iis::Run::forever(
        3,
        iis::OrderedPartition({ProcessSet::of({0, 1}), ProcessSet::of({2})}));
    std::cout << "    run " << behind.to_string() << " (fast = "
              << behind.fast().to_string() << ", p2 forever behind)\n";
    const auto landing = core::find_landing(*report.tsub, behind, 8);
    std::cout << "    lands at round " << landing->round
              << " in stable facet of ring R_"
              << core::ring_of_stable_facet(*report.tsub,
                                            landing->stable_facet)
              << "\n";
    for (ProcessId p = 0; p < 3; ++p) {
        const auto out =
            build.protocol.output(behind.view(p, 8, arena), arena);
        std::cout << "    p" << p << " decides "
                  << (out ? scenario.affine->subdivision.position(*out)
                                .to_string()
                          : std::string("(nothing)"))
                  << "\n";
    }
    std::cout << "\nall decisions form a simplex of L_1: the task is solved "
                 "1-resiliently.\n";
    return 0;
}
