// Section 4.5 of the paper: solving tasks in sub-IIS models brings
// "illuminating subtleties". The total-order task L_ord:
//   * cannot be solved wait-free (the ACT solver exhausts its search),
//   * cannot be solved in OF_1 (a fast leader with followers running
//     forever behind starves the followers),
//   * CAN be solved in OF_1^fast (the minimal runs of OF_1) using
//     commit-adopt.
#include <iostream>

#include "engine/engine.h"
#include "engine/scenario_registry.h"
#include "iis/run_enumeration.h"
#include "protocol/commit_adopt.h"
#include "protocol/verifier.h"

int main() {
    using namespace gact;

    std::cout << "== The total-order task L_ord (Section 4.2/4.5) ==\n\n";
    const tasks::AffineTask lord2 = tasks::total_order_task(2);
    std::cout << "L_ord on 3 processes: " << lord2.l_complex.facets().size()
              << " simplices sigma_alpha (= 3!)\n\n";

    std::cout << "[1] wait-free? the engine on the registry's 2-process "
                 "scenario:\n";
    const auto act = engine::Engine{}.solve(
        *engine::ScenarioRegistry::standard().find("lord-2p-wf"));
    std::cout << "    depths 0..3 exhausted: "
              << (act.verdict == engine::Verdict::kUnsolvableAtDepth ? "yes"
                                                                     : "no")
              << " -> not wait-free solvable\n\n";

    iis::ViewArena arena;
    const protocol::TotalOrderProtocol protocol(lord2, arena);

    std::cout << "[2] OF_1^fast (minimal obstruction-free runs): "
                 "commit-adopt solves it.\n";
    const auto of1 = std::make_shared<iis::ObstructionFreeModel>(1);
    const iis::MinimalRunsModel of1_fast(of1);
    const auto fast_runs = iis::filter_by_model(
        iis::enumerate_stabilized_runs(3, 2), of1_fast);
    const auto fast_report = protocol::verify_inputless(
        lord2.task, protocol, fast_runs, 10, arena);
    std::cout << "    " << fast_runs.size() << " runs: "
              << fast_report.summary() << "\n\n";

    std::cout << "[3] full OF_1: the leader-ahead run defeats the protocol "
                 "(and provably any protocol).\n";
    const iis::Run leader_ahead = iis::Run::forever(
        3,
        iis::OrderedPartition({ProcessSet::of({0}), ProcessSet::of({1, 2})}));
    std::cout << "    run " << leader_ahead.to_string() << ": fast = "
              << leader_ahead.fast().to_string()
              << " (in OF_1), but p1, p2 participate forever\n";
    const auto of_report = protocol::verify_inputless(
        lord2.task, protocol, {leader_ahead}, 10, arena);
    std::cout << "    " << of_report.summary() << "\n";
    std::cout << "    -> the followers run essentially wait-free between "
                 "themselves,\n       and 2-process total order is "
                 "consensus-hard: L_ord is solvable in\n       M_fast but "
                 "not in M, exactly the Section 4.5 subtlety.\n";
    return 0;
}
