#include "core/act_solver.h"

#include "util/require.h"

namespace gact::core {

ChromaticMapProblem act_problem(const tasks::Task& task,
                                const topo::SubdividedComplex& chr_k) {
    ChromaticMapProblem problem;
    problem.domain = &chr_k.complex();
    problem.codomain = &task.outputs;
    // eta(sigma) must lie in Delta(carrier(sigma)); carriers are exact
    // (coordinate supports), so this is precisely Corollary 7.1.
    problem.allowed = [&task, &chr_k](const Simplex& sigma)
        -> const SimplicialComplex& {
        return task.delta.at(chr_k.carrier_of(sigma));
    };
    return problem;
}

ActResult solve_act(const tasks::Task& task, int max_k,
                    std::size_t max_backtracks_per_depth) {
    return solve_act(task, max_k,
                     SolverConfig::fast(max_backtracks_per_depth));
}

ActResult solve_act(const tasks::Task& task, int max_k,
                    const SolverConfig& config) {
    require(task.validate().empty(), "solve_act: invalid task");
    ActResult out;
    out.exhausted_all_depths = true;
    topo::SubdividedComplex chr =
        topo::SubdividedComplex::identity(task.inputs);
    for (int k = 0; k <= max_k; ++k) {
        if (k > 0) chr = chr.chromatic_subdivision();
        const ChromaticMapProblem problem = act_problem(task, chr);
        const ChromaticMapResult result =
            solve_chromatic_map(problem, config);
        out.backtracks_per_depth.push_back(result.backtracks);
        if (!result.exhausted) out.exhausted_all_depths = false;
        if (result.map) {
            out.solvable = true;
            out.witness_depth = k;
            out.eta = result.map;
            out.domain = chr;
            return out;
        }
    }
    return out;
}

}  // namespace gact::core
