#include "core/act_solver.h"

#include "exec/cancel.h"
#include "util/require.h"

namespace gact::core {

ChromaticMapProblem act_problem(const tasks::Task& task,
                                const topo::SubdividedComplex& chr_k,
                                AllowedComplexLru* lru,
                                SharedNogoodPool* nogood_pool) {
    ChromaticMapProblem problem;
    problem.domain = &chr_k.complex();
    problem.codomain = &task.outputs;
    if (nogood_pool != nullptr) {
        // Cross-solve learning scope: one (task, depth) pair is one
        // constraint problem (see run_act_search's soundness note).
        // Variables travel as stable (position, color) keys so the
        // per-depth vertex ids never leak into the pool.
        problem.nogood_pool = nogood_pool;
        problem.nogood_scope =
            task.name + "|wf-depth=" + std::to_string(chr_k.depth());
        problem.pool_var_key = [&chr_k, nogood_pool](VertexId v) {
            return nogood_pool->intern(chr_k.position(v),
                                       chr_k.complex().color(v));
        };
    }
    // eta(sigma) must lie in Delta(carrier(sigma)); carriers are exact
    // (coordinate supports), so this is precisely Corollary 7.1. The
    // carrier -> complex association is shared through the LRU when one
    // is supplied (carriers are base-complex simplices, so entries stay
    // valid across subdivision depths).
    problem.allowed = [&task, &chr_k, lru](const Simplex& sigma)
        -> const SimplicialComplex& {
        const Simplex carrier = chr_k.carrier_of(sigma);
        if (lru == nullptr) return task.delta.at(carrier);
        return lru->get(carrier,
                        [&]() { return &task.delta.at(carrier); });
    };
    return problem;
}

ActResult run_act_search(const tasks::Task& task, int max_k,
                         const SolverConfig& config,
                         SharedNogoodPool* nogood_pool) {
    require(task.validate().empty(), "run_act_search: invalid task");
    ActResult out;
    out.exhausted_all_depths = true;
    // One carrier-keyed LRU across every depth of the search.
    AllowedComplexLru lru(config.allowed_lru_capacity);
    AllowedComplexLru* lru_ptr =
        config.allowed_lru_capacity > 0 ? &lru : nullptr;
    topo::SubdividedComplex chr =
        topo::SubdividedComplex::identity(task.inputs);
    for (int k = 0; k <= max_k; ++k) {
        // Task-boundary cancellation (SolverConfig::cancel): a spent
        // time budget stops the depth ladder here, before the next
        // Chr^k build, instead of waiting for the CSP's backtrack
        // checkpoints deep inside it.
        if (config.cancel != nullptr && config.cancel->cancelled()) {
            out.exhausted_all_depths = false;
            return out;
        }
        if (k > 0) chr = chr.chromatic_subdivision();
        const ChromaticMapProblem problem =
            act_problem(task, chr, lru_ptr, nogood_pool);
        const ChromaticMapResult result =
            solve_chromatic_map(problem, config);
        out.backtracks_per_depth.push_back(result.counters.backtracks);
        out.counters.add(result.counters);
        if (!result.exhausted) out.exhausted_all_depths = false;
        if (result.map) {
            out.solvable = true;
            out.witness_depth = k;
            out.eta = result.map;
            out.domain = chr;
            return out;
        }
    }
    return out;
}

// The deprecated shims forward verbatim; suppress the self-referential
// deprecation warnings their definitions would otherwise emit.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

ActResult solve_act(const tasks::Task& task, int max_k,
                    std::size_t max_backtracks_per_depth) {
    return run_act_search(task, max_k,
                          SolverConfig::fast(max_backtracks_per_depth));
}

ActResult solve_act(const tasks::Task& task, int max_k,
                    const SolverConfig& config) {
    return run_act_search(task, max_k, config);
}

#pragma GCC diagnostic pop

}  // namespace gact::core
