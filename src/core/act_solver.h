// The ACT decision procedure (paper, Corollary 7.1).
//
// A task T = (I, O, Delta) is wait-free solvable iff for some k there is a
// chromatic simplicial map eta : Chr^k I -> O with eta(sigma) in
// Delta(carrier(sigma)) for every simplex sigma. This module searches for
// such a map for k = 0, 1, .., max_k: a found map is a constructive proof
// of solvability (GACT with the everywhere-stable subdivision Chr^k I); an
// exhausted search at every k <= max_k certifies that no witness exists up
// to that depth (full unsolvability needs the k -> infinity limit, which
// is where impossibility arguments like FLP take over).
#pragma once

#include "core/chromatic_csp.h"
#include "tasks/task.h"
#include "topology/subdivision.h"

namespace gact::core {

/// Result of the bounded ACT search.
struct ActResult {
    bool solvable = false;
    int witness_depth = -1;              // the k of the witness map
    std::optional<SimplicialMap> eta;    // the witness
    topo::SubdividedComplex domain;      // Chr^k I for the witness depth
    std::vector<std::size_t> backtracks_per_depth;
    bool exhausted_all_depths = false;   // searches below max_k all complete
};

/// Search depths k = 0..max_k for a Corollary 7.1 witness. `config`
/// selects the CSP engine; its max_backtracks bounds each depth's search
/// separately.
///
/// Deprecated as a public entry point: prefer
/// engine::Engine::solve(engine::Scenario::wait_free(...)), which wraps
/// this search with the unified verdict/report surface. Kept as the
/// wait-free route's implementation and for compatibility.
ActResult solve_act(const tasks::Task& task, int max_k,
                    const SolverConfig& config);

/// Convenience overload: the default engine with the given per-depth
/// backtrack budget.
ActResult solve_act(const tasks::Task& task, int max_k,
                    std::size_t max_backtracks_per_depth = 2000000);

/// Build the Corollary 7.1 constraint problem at a fixed depth (exposed
/// for tests and benchmarks).
ChromaticMapProblem act_problem(const tasks::Task& task,
                                const topo::SubdividedComplex& chr_k);

}  // namespace gact::core
