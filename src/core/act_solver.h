// The ACT decision procedure (paper, Corollary 7.1).
//
// A task T = (I, O, Delta) is wait-free solvable iff for some k there is a
// chromatic simplicial map eta : Chr^k I -> O with eta(sigma) in
// Delta(carrier(sigma)) for every simplex sigma. This module searches for
// such a map for k = 0, 1, .., max_k: a found map is a constructive proof
// of solvability (GACT with the everywhere-stable subdivision Chr^k I); an
// exhausted search at every k <= max_k certifies that no witness exists up
// to that depth (full unsolvability needs the k -> infinity limit, which
// is where impossibility arguments like FLP take over).
#pragma once

#include "core/chromatic_csp.h"
#include "core/eval_cache.h"
#include "tasks/task.h"
#include "topology/subdivision.h"

namespace gact::core {

/// @brief Result of the bounded ACT search.
struct ActResult {
    bool solvable = false;
    int witness_depth = -1;              // the k of the witness map
    std::optional<SimplicialMap> eta;    // the witness
    topo::SubdividedComplex domain;      // Chr^k I for the witness depth
    std::vector<std::size_t> backtracks_per_depth;
    /// Search/learning tallies summed over every depth searched
    /// (SearchCounters::add, so every counter field flows up).
    SearchCounters counters;
    bool exhausted_all_depths = false;   // searches below max_k all complete
};

/// @brief Search depths k = 0..max_k for a Corollary 7.1 witness.
/// `config` selects the CSP engine; its max_backtracks bounds each
/// depth's search separately.
///
/// This is the wait-free route's implementation, called by
/// engine::Engine::solve. The constraint complexes Delta(carrier(sigma))
/// are shared across depths through one carrier-keyed LRU
/// (core/eval_cache.h): per-depth vertex ids change from Chr^k I to
/// Chr^{k+1} I, but carriers live in the base complex, so deeper
/// searches start with the association warm.
///
/// When `nogood_pool` is non-null, every depth's solve additionally
/// seeds its nogood stores (one per portfolio thread) from the pool and
/// publishes what it learns, under a scope derived from the task name
/// and the depth. Scoping per depth is what keeps reuse sound: a
/// conflict proven against the Chr^k constraint structure says nothing
/// about Chr^{k+1} (deeper subdivisions admit strictly more maps), so
/// only re-solves of the same (task, depth) problem — repeated engine
/// runs, bench re-runs, equivalence sweeps — share learning.
ActResult run_act_search(const tasks::Task& task, int max_k,
                         const SolverConfig& config,
                         SharedNogoodPool* nogood_pool = nullptr);

/// @brief Deprecated pre-engine entry point; forwards to
/// run_act_search.
[[deprecated(
    "use gact::engine::Engine (engine/engine.h) for the unified "
    "verdict/report surface, or core::run_act_search for the raw "
    "search")]]
ActResult solve_act(const tasks::Task& task, int max_k,
                    const SolverConfig& config);

/// @brief Deprecated convenience overload of the pre-engine entry
/// point; forwards to run_act_search with the default engine and the
/// given per-depth backtrack budget.
[[deprecated(
    "use gact::engine::Engine (engine/engine.h) for the unified "
    "verdict/report surface, or core::run_act_search for the raw "
    "search")]]
ActResult solve_act(const tasks::Task& task, int max_k,
                    std::size_t max_backtracks_per_depth = 2000000);

/// @brief Build the Corollary 7.1 constraint problem at a fixed depth
/// (exposed for tests and benchmarks).
///
/// When `lru` is non-null, the problem's allowed() closure routes
/// carrier lookups through it; the LRU must then outlive the problem.
/// When `nogood_pool` is non-null, the problem carries the cross-solve
/// learning hooks (scope = task name + depth; literal variables
/// translated through the pool's stable (position, color) keys).
/// @note The returned problem's closures also reference `task` and
/// `chr_k`, which must outlive it — and `lru` / `nogood_pool` when
/// supplied.
ChromaticMapProblem act_problem(const tasks::Task& task,
                                const topo::SubdividedComplex& chr_k,
                                AllowedComplexLru* lru = nullptr,
                                SharedNogoodPool* nogood_pool = nullptr);

}  // namespace gact::core
