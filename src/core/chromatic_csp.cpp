#include "core/chromatic_csp.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_set>

#include "core/eval_cache.h"
#include "core/nogood_store.h"
#include "exec/cancel.h"
#include "exec/task_group.h"
#include "topology/adjacency_index.h"
#include "util/require.h"

namespace gact::core {

// The fields-covered check of SearchCounters::add: the struct must be
// exactly its counters (no padding, no non-counter members), so any new
// field changes sizeof and lands here. When this assert fires, extend
// add() below AND the populated-struct round-trip in
// tests/solver_cache_test.cpp, then bump the expected count.
static_assert(sizeof(SearchCounters) == 12 * sizeof(std::size_t),
              "SearchCounters gained or lost a field: update "
              "SearchCounters::add() (every accumulation site funnels "
              "through it) and the round-trip test, then adjust this "
              "count");

void SearchCounters::add(const SearchCounters& other) noexcept {
    backtracks += other.backtracks;
    nogood_prunings += other.nogood_prunings;
    nogoods_recorded += other.nogoods_recorded;
    nogoods_evicted += other.nogoods_evicted;
    restarts += other.restarts;
    backjumps += other.backjumps;
    pool_seeded += other.pool_seeded;
    pool_published += other.pool_published;
    exchange_published += other.exchange_published;
    exchange_imported += other.exchange_imported;
    eval_cache_hits += other.eval_cache_hits;
    eval_cache_misses += other.eval_cache_misses;
}

namespace {

// ---------------------------------------------------------------------------
// Shared problem preprocessing: assignment order and initial domains.
// ---------------------------------------------------------------------------

/// The initial candidate list for one domain vertex: the fixed value, or
/// the caller's candidate order, or all color-matching codomain vertices;
/// always filtered by the vertex's own constraint complex.
std::vector<VertexId> initial_domain(const ChromaticMapProblem& problem,
                                     VertexId v) {
    std::vector<VertexId> candidates;
    const auto fit = problem.fixed.find(v);
    if (fit != problem.fixed.end()) {
        candidates = {fit->second};
    } else if (problem.candidate_order) {
        candidates = problem.candidate_order(v);
    } else {
        const topo::Color c = problem.domain->color(v);
        for (VertexId w : problem.codomain->vertex_ids()) {
            if (problem.codomain->color(w) == c) candidates.push_back(w);
        }
    }
    const SimplicialComplex& allowed = problem.allowed(Simplex{v});
    std::vector<VertexId> filtered;
    for (VertexId w : candidates) {
        // Candidate values must be vertices of the codomain: the naive
        // engine rejects strays through the 0-simplex constraints, but
        // the FC engine's adjacency index only carries dimension >= 1,
        // so filter here for both.
        if (problem.codomain->contains_vertex(w) &&
            allowed.contains(Simplex{w})) {
            filtered.push_back(w);
        }
    }
    return filtered;
}

/// Initial candidate lists for every domain vertex, computed once per
/// solve: the candidate_order closures can be expensive (exact rational
/// geometry in the L_t pipeline), and portfolio threads all start from
/// the same base order.
using DomainMap = std::unordered_map<VertexId, std::vector<VertexId>>;

DomainMap all_initial_domains(const ChromaticMapProblem& problem) {
    DomainMap domains;
    for (VertexId v : problem.domain->vertex_ids()) {
        domains.emplace(v, initial_domain(problem, v));
    }
    return domains;
}

/// The leaf constraint test shared by both engines: the image of a fully
/// assigned simplex must be a simplex of the codomain lying inside
/// sigma's constraint complex.
bool image_constraint_holds(
    const ChromaticMapProblem& problem,
    const std::unordered_map<VertexId, VertexId>& assignment,
    const Simplex& sigma) {
    std::vector<VertexId> image;
    image.reserve(sigma.size());
    for (VertexId v : sigma.vertices()) image.push_back(assignment.at(v));
    const Simplex img(std::move(image));
    if (!problem.codomain->contains(img)) return false;
    return problem.allowed(sigma).contains(img);
}

/// Free-vertex connected components (free-free adjacency): independent
/// subproblems given the fixed assignments, solved separately to avoid
/// cross-component thrashing. Also produces, per component, the static
/// maximum-cardinality order (always the vertex adjacent to the most
/// already-ordered vertices, so contradictions surface immediately).
struct Decomposition {
    std::vector<VertexId> fixed_order;
    std::vector<std::vector<VertexId>> component_orders;
};

Decomposition decompose(const ChromaticMapProblem& problem,
                        const topo::AdjacencyIndex& index) {
    Decomposition out;
    const std::vector<VertexId> vertices = problem.domain->vertex_ids();

    for (const auto& [v, w] : problem.fixed) {
        (void)w;
        require(problem.domain->contains_vertex(v),
                "solve_chromatic_map: fixed vertex not in domain");
        out.fixed_order.push_back(v);
    }
    std::sort(out.fixed_order.begin(), out.fixed_order.end());

    std::unordered_map<VertexId, std::size_t> component;
    std::size_t num_components = 0;
    for (VertexId v : vertices) {
        if (problem.fixed.count(v) != 0 || component.count(v) != 0) continue;
        std::vector<VertexId> stack{v};
        component[v] = num_components;
        while (!stack.empty()) {
            const VertexId u = stack.back();
            stack.pop_back();
            for (VertexId w : index.neighbors(u)) {
                if (problem.fixed.count(w) == 0 && component.count(w) == 0) {
                    component[w] = num_components;
                    stack.push_back(w);
                }
            }
        }
        ++num_components;
    }

    out.component_orders.resize(num_components);
    std::unordered_map<VertexId, std::size_t> ordered_neighbors;
    std::unordered_set<VertexId> placed;
    const auto place = [&](VertexId v) {
        placed.insert(v);
        for (VertexId u : index.neighbors(v)) ++ordered_neighbors[u];
    };
    for (VertexId v : out.fixed_order) place(v);
    for (std::size_t c = 0; c < num_components; ++c) {
        std::vector<VertexId> members;
        for (VertexId v : vertices) {
            const auto it = component.find(v);
            if (it != component.end() && it->second == c) {
                members.push_back(v);
            }
        }
        for (std::size_t step = 0; step < members.size(); ++step) {
            VertexId best = 0;
            std::size_t best_score = 0;
            bool found = false;
            for (VertexId v : members) {
                if (placed.count(v) != 0) continue;
                const std::size_t score = ordered_neighbors[v];
                if (!found || score > best_score ||
                    (score == best_score && v < best)) {
                    best = v;
                    best_score = score;
                    found = true;
                }
            }
            out.component_orders[c].push_back(best);
            place(best);
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Naive engine: the seed's plain chronological backtracker, kept verbatim
// as the SolverConfig::naive() baseline.
// ---------------------------------------------------------------------------

struct NaiveSearcher {
    explicit NaiveSearcher(const ChromaticMapProblem& p) : problem(p) {}

    const ChromaticMapProblem& problem;
    const exec::CancelToken* cancel = nullptr;
    std::vector<VertexId> order;                 // assignment order
    std::vector<std::vector<VertexId>> domains;  // candidates per position
    std::unordered_map<VertexId, VertexId> assignment;
    // simplices of the domain complex indexed by their highest-ordered
    // vertex, so each constraint is checked exactly once, as soon as it is
    // fully assigned.
    std::unordered_map<VertexId, std::vector<Simplex>> constraints_by_last;
    SearchCounters counters;
    std::size_t max_backtracks = 0;
    bool exhausted = true;

    bool constraint_holds(const Simplex& sigma) const {
        return image_constraint_holds(problem, assignment, sigma);
    }

    bool assign(std::size_t idx) {
        if (cancel != nullptr && cancel->cancelled()) {
            exhausted = false;
            return false;
        }
        if (idx == order.size()) return true;
        const VertexId v = order[idx];
        for (VertexId w : domains[idx]) {
            assignment[v] = w;
            bool ok = true;
            const auto it = constraints_by_last.find(v);
            if (it != constraints_by_last.end()) {
                for (const Simplex& sigma : it->second) {
                    if (!constraint_holds(sigma)) {
                        ok = false;
                        break;
                    }
                }
            }
            if (ok && assign(idx + 1)) return true;
            assignment.erase(v);
            if (++counters.backtracks > max_backtracks) {
                exhausted = false;
                return false;
            }
        }
        return false;
    }
};

/// Solve the subproblem induced by the fixed vertices plus one connected
/// component of free vertices with the naive engine. On success, the
/// component's assignments are merged into `solution`.
bool naive_solve_component(const ChromaticMapProblem& problem,
                           const DomainMap& base_domains,
                           const std::vector<VertexId>& fixed_order,
                           const std::vector<VertexId>& component_order,
                           std::size_t max_backtracks,
                           const exec::CancelToken* cancel,
                           ChromaticMapResult& result,
                           std::unordered_map<VertexId, VertexId>& solution) {
    NaiveSearcher s(problem);
    s.cancel = cancel;
    s.max_backtracks = max_backtracks;
    std::unordered_set<VertexId> in_scope;
    for (VertexId v : fixed_order) {
        s.order.push_back(v);
        in_scope.insert(v);
    }
    for (VertexId v : component_order) {
        s.order.push_back(v);
        in_scope.insert(v);
    }

    // Constraints restricted to simplices fully inside the scope, indexed
    // by their latest-assigned vertex so each is checked exactly once.
    std::unordered_map<VertexId, std::size_t> position;
    for (std::size_t i = 0; i < s.order.size(); ++i) position[s.order[i]] = i;
    for (const Simplex& sigma : problem.domain->complex().simplices()) {
        VertexId last = sigma.vertices().front();
        bool inside = true;
        for (VertexId v : sigma.vertices()) {
            if (in_scope.count(v) == 0) {
                inside = false;
                break;
            }
            if (position.at(v) > position.at(last)) last = v;
        }
        if (inside) s.constraints_by_last[last].push_back(sigma);
    }

    s.domains.resize(s.order.size());
    for (std::size_t i = 0; i < s.order.size(); ++i) {
        s.domains[i] = base_domains.at(s.order[i]);
    }

    const bool found = s.assign(0);
    // Same fields-covered accumulation path as the portfolio merge's
    // add_counters: everything funnels through SearchCounters::add.
    result.counters.add(s.counters);
    if (!s.exhausted) result.exhausted = false;
    if (found) {
        for (VertexId v : component_order) solution[v] = s.assignment.at(v);
        for (VertexId v : fixed_order) solution[v] = s.assignment.at(v);
    }
    return found;
}

// ---------------------------------------------------------------------------
// Forward-checking engine with configurable variable/value ordering.
// ---------------------------------------------------------------------------

/// One portfolio thread's view of the solve's LiveNogoodExchange:
/// cursor into the shared log, tallies, and the bookkeeping that keeps
/// imported nogoods out of this thread's own-learning accounting (they
/// are neither re-published to the cross-solve pool by this thread —
/// their prover publishes them — nor counted as nogoods_recorded).
/// Owned by solve_single and shared by the thread's per-component
/// searchers, so the cursor survives component boundaries.
struct ExchangeSession {
    LiveNogoodExchange* exchange = nullptr;
    NogoodStore* store = nullptr;  // this thread's own store
    unsigned source = 0;           // this thread's publish tag
    std::size_t max_import_literals = 0;
    std::size_t cursor = 0;
    std::size_t published = 0;
    std::size_t imported = 0;
    /// Store indices filled by imports, ascending (the store is
    /// append-only, so each import lands at the current tail).
    std::vector<std::uint32_t> imported_ids;

    /// Share a nogood this thread just recorded. `literals` is the
    /// store's canonical copy (stable: the store is a deque).
    void publish_recorded(const std::vector<NogoodLiteral>& literals) {
        if (exchange->publish(source, literals)) ++published;
    }

    /// Drain every entry other threads published since the last import
    /// into this thread's store (the store's dedup drops re-derivations
    /// and cross-thread duplicates). Cheap when nothing is new: one
    /// acquire load.
    void import_new() {
        if (exchange->size() <= cursor) return;
        cursor = exchange->drain(
            cursor, source, max_import_literals,
            [this](const std::vector<NogoodLiteral>& literals) {
                if (store->record(
                        std::vector<NogoodLiteral>(literals))) {
                    ++imported;
                    imported_ids.push_back(static_cast<std::uint32_t>(
                        store->size() - 1));
                }
            });
    }
};

struct FcSearcher {
    FcSearcher(const ChromaticMapProblem& p, const topo::AdjacencyIndex& ix,
               const SolverConfig& c)
        : problem(p), index(ix), config(c) {}

    const ChromaticMapProblem& problem;
    const topo::AdjacencyIndex& index;
    const SolverConfig& config;
    const exec::CancelToken* cancel = nullptr;
    // Optional incremental layers, owned by the per-thread driver
    // (solve_single): memoized constraint evaluation, learned
    // conflicts, and the portfolio exchange session. All null in the
    // root-propagation searcher.
    EvalCache* cache = nullptr;
    NogoodStore* nogoods = nullptr;
    ExchangeSession* session = nullptr;

    /// Outcome of one search() call: a witness below this node, a proven
    /// conflict (conflict_var_ names the variable whose conflict set
    /// describes it when backjumping is on), an abort (budget / stop
    /// flag — not a proof, so no conflict set), or a Luby restart (this
    /// run's backtrack allotment ran out; the driver unwinds to the
    /// component root and searches again with the learned nogoods —
    /// unlike kAbort it does NOT clear `exhausted`, because the next
    /// run finishes the proof).
    enum class Status { kFound, kConflict, kAbort, kRestart };

    struct Var {
        VertexId v = 0;
        VertexId value = 0;            // current value, valid iff assigned
        std::uint32_t degree = 0;      // 1-skeleton degree (MRV tie-break)
        std::vector<VertexId> values;  // initial order, never reordered
        std::vector<char> active;      // live-domain flags, trail-restored
        // The constraint that pruned values[i] (null while active). Read
        // only for inactive values, whose pruning frames are still on
        // the stack — so the constraint's other vertices are still
        // assigned to the values that caused the conflict.
        std::vector<const Simplex*> pruned_by;
        std::size_t active_count = 0;
        bool assigned = false;
        bool is_fixed = false;
        // Word-packed mirror of `active`, kept in lockstep by
        // prune()/undo_to(): the FC mask filter intersects it with the
        // memoized allowed mask 64 values at a time instead of testing
        // every value byte-by-byte. Last member so the positional
        // aggregate initializers above it stay valid.
        std::vector<std::uint64_t> active_bits;
    };
    static constexpr std::uint32_t kNoVar = 0xffffffffu;
    std::vector<Var> vars;  // fixed vertices first, then the component's
                            // free vertices in static order
    std::unordered_map<VertexId, std::size_t> var_index;
    // Dense mirror of var_index for the hot constraint scans (vertex ids
    // are bounded by the domain complex); kNoVar for out-of-scope ids.
    std::vector<std::uint32_t> var_of_vertex;
    std::unordered_map<VertexId, VertexId> assignment;
    // Undo log of domain prunings: (variable index, value index).
    std::vector<std::pair<std::size_t, std::size_t>> trail;
    SearchCounters counters;
    bool exhausted = true;
    std::vector<VertexId> image_scratch;  // reused across evaluations
    // Deferred forward-checking work of one try_assign: (constraint,
    // index of its single unassigned vertex). Member so the buffer is
    // allocated once, not per node; valid only within the call that
    // filled it (nothing assigns between the fill and the drain).
    std::vector<std::pair<const Simplex*, std::uint32_t>> fc_pending;

    // Luby restart state, driven by fc_solve_component: once the
    // current run's backtracks reach restart_limit, search() unwinds
    // with Status::kRestart. 0 = never restart.
    std::size_t restart_limit = 0;
    std::size_t run_start_backtracks = 0;

    // Conflict-directed backjumping state (config.backjumping): one
    // conflict set per variable, as a bitset over var indices. conf(v)
    // accumulates, while v is the active decision, every variable whose
    // assignment contributed to a failure of one of v's values; when v's
    // values are exhausted, conf(v) is the proven conflict of the whole
    // level, and ancestors absent from it are jumped over. Fixed
    // variables are per-solve constants and never enter a conflict set.
    std::size_t conflict_words = 0;
    std::vector<std::vector<std::uint64_t>> conflict_;  // per variable
    std::vector<std::uint64_t> assign_conflict_;  // try_assign's failure
    std::size_t conflict_var_ = 0;  // owner of the active conflict set

    // The unassigned vars, maintained by swap-removal so the MRV scan
    // touches only live candidates instead of every variable per node.
    std::vector<std::uint32_t> unassigned;
    std::vector<std::uint32_t> unassigned_pos;  // index into `unassigned`

    /// Build var_of_vertex and the unassigned list; call once after
    /// `vars` is fully populated and pre-assignments are installed.
    void finalize_vars() {
        VertexId max_v = 0;
        for (const Var& var : vars) max_v = std::max(max_v, var.v);
        var_of_vertex.assign(static_cast<std::size_t>(max_v) + 1, kNoVar);
        for (std::size_t i = 0; i < vars.size(); ++i) {
            var_of_vertex[vars[i].v] = static_cast<std::uint32_t>(i);
        }
        unassigned.clear();
        unassigned_pos.assign(vars.size(), kNoVar);
        for (std::size_t i = 0; i < vars.size(); ++i) {
            vars[i].degree =
                static_cast<std::uint32_t>(index.degree(vars[i].v));
            if (!vars[i].assigned) {
                unassigned_pos[i] =
                    static_cast<std::uint32_t>(unassigned.size());
                unassigned.push_back(static_cast<std::uint32_t>(i));
            }
        }
        if (config.backjumping) {
            conflict_words = (vars.size() + 63) / 64;
            conflict_.assign(vars.size(),
                             std::vector<std::uint64_t>(conflict_words, 0));
            assign_conflict_.assign(conflict_words, 0);
        }
    }

    // --- conflict-set plumbing (backjumping only) ----------------------

    void conflict_add(std::vector<std::uint64_t>& set,
                      std::size_t var_idx) const {
        if (vars[var_idx].is_fixed) return;
        set[var_idx >> 6] |= std::uint64_t{1} << (var_idx & 63);
    }

    bool conflict_contains(const std::vector<std::uint64_t>& set,
                           std::size_t var_idx) const {
        return (set[var_idx >> 6] >> (var_idx & 63) & 1) != 0;
    }

    /// into |= from \ {excluded}.
    void conflict_merge(std::vector<std::uint64_t>& into,
                        const std::vector<std::uint64_t>& from,
                        std::size_t excluded) const {
        for (std::size_t w = 0; w < conflict_words; ++w) into[w] |= from[w];
        into[excluded >> 6] &= ~(std::uint64_t{1} << (excluded & 63));
    }

    /// The assigned variables of a pruning/violated constraint, minus
    /// the two local actors (the decision being enumerated and, for
    /// wipeouts, the wiped variable itself).
    void conflict_add_constraint(std::vector<std::uint64_t>& set,
                                 const Simplex& sigma, std::size_t skip_a,
                                 std::size_t skip_b) const {
        for (VertexId u : sigma.vertices()) {
            const std::size_t ui = var_of_vertex[u];
            if (ui == skip_a || ui == skip_b) continue;
            conflict_add(set, ui);
        }
    }

    /// Conservative fallback when a pruning cause is unavailable: blame
    /// every assigned decision, which degrades that one conflict to
    /// chronological behavior without losing soundness.
    void conflict_add_all_assigned(std::vector<std::uint64_t>& set,
                                   std::size_t skip_a,
                                   std::size_t skip_b) const {
        for (std::size_t i = 0; i < vars.size(); ++i) {
            if (!vars[i].assigned || i == skip_a || i == skip_b) continue;
            conflict_add(set, i);
        }
    }

    /// Fill assign_conflict_ with the cause of a violated constraint.
    void conflict_from_violation(const Simplex& sigma,
                                 std::size_t cur_idx) {
        std::fill(assign_conflict_.begin(), assign_conflict_.end(), 0);
        conflict_add_constraint(assign_conflict_, sigma, cur_idx, cur_idx);
    }

    /// Record one proven conflict and, when the portfolio exchange is
    /// live, share it with the racing threads immediately (the
    /// published copy is the store's canonical literal vector — a deque
    /// element, so the reference is stable even while other imports
    /// keep appending).
    void learn(std::vector<NogoodLiteral> literals) {
        if (!nogoods->record(std::move(literals))) return;
        ++counters.nogoods_recorded;
        if (session != nullptr) {
            session->publish_recorded(nogoods->all().back());
        }
    }

    /// Pull the other portfolio threads' freshly proven conflicts into
    /// this thread's store. Called at every backtrack landing — which
    /// covers backjump landings too: a jump unwinds through the same
    /// value loop — and at each component start (the restart point).
    void maybe_import() {
        if (session != nullptr) session->import_new();
    }

    /// Learn an exhausted level's conflict set as a nogood: every value
    /// of the level's variable failed under exactly the assignments the
    /// set names, and a satisfying map must assign the variable, so the
    /// named assignments are jointly contradictory — the CDCL-style
    /// "learned clause" on top of the wipeout/violation records.
    void record_conflict_set(const std::vector<std::uint64_t>& set) {
        if (nogoods == nullptr) return;
        std::vector<NogoodLiteral> literals;
        for (std::size_t w = 0; w < conflict_words; ++w) {
            std::uint64_t bits = set[w];
            while (bits != 0) {
                const std::size_t u_idx =
                    (w << 6) + static_cast<std::size_t>(
                                   __builtin_ctzll(bits));
                bits &= bits - 1;
                const Var& u = vars[u_idx];
                literals.push_back({u.v, u.value});
            }
        }
        learn(std::move(literals));
    }

    /// Fill assign_conflict_ with the cause of a domain wipeout of
    /// `u_idx`: the assignments behind every pruned value (the same
    /// provenance record_wipeout turns into a nogood).
    void conflict_from_wipeout(std::size_t u_idx, std::size_t cur_idx) {
        std::fill(assign_conflict_.begin(), assign_conflict_.end(), 0);
        const Var& u = vars[u_idx];
        for (std::size_t i = 0; i < u.values.size(); ++i) {
            if (u.active[i]) continue;
            const Simplex* sigma = u.pruned_by[i];
            if (sigma == nullptr) {
                conflict_add_all_assigned(assign_conflict_, u_idx, cur_idx);
                return;
            }
            conflict_add_constraint(assign_conflict_, *sigma, u_idx,
                                    cur_idx);
        }
    }

    void mark_assigned(std::size_t var_idx) {
        const std::uint32_t pos = unassigned_pos[var_idx];
        const std::uint32_t last = unassigned.back();
        unassigned[pos] = last;
        unassigned_pos[last] = pos;
        unassigned.pop_back();
        unassigned_pos[var_idx] = kNoVar;
    }

    void mark_unassigned(std::size_t var_idx) {
        unassigned_pos[var_idx] =
            static_cast<std::uint32_t>(unassigned.size());
        unassigned.push_back(static_cast<std::uint32_t>(var_idx));
    }

    std::uint32_t var_at(VertexId u) const {
        return u < var_of_vertex.size() ? var_of_vertex[u] : kNoVar;
    }

    bool stopped() const {
        return cancel != nullptr && cancel->cancelled();
    }

    /// Leaf constraint check for a fully assigned indexed simplex, via
    /// the evaluation memo when enabled.
    bool constraint_holds(const Simplex* sigma_ptr) {
        const Simplex& sigma = *sigma_ptr;
        if (cache == nullptr) {
            return image_constraint_holds(problem, assignment, sigma);
        }
        image_scratch.clear();
        for (VertexId v : sigma.vertices()) {
            image_scratch.push_back(vars[var_of_vertex[v]].value);
        }
        return cache->image_allowed(problem, index.id_of(sigma_ptr), sigma,
                                    image_scratch);
    }

    /// Reset a variable's live-domain state to "everything active";
    /// the setup sites and the restart driver share it.
    static void activate_all(Var& var) {
        const std::size_t n = var.values.size();
        var.active.assign(n, 1);
        var.pruned_by.assign(n, nullptr);
        var.active_count = n;
        var.active_bits.assign((n + 63) / 64, 0);
        for (std::size_t i = 0; i < n; ++i) {
            var.active_bits[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
    }

    void prune(std::size_t var_idx, std::size_t value_idx,
               const Simplex* cause) {
        vars[var_idx].active[value_idx] = 0;
        vars[var_idx].active_bits[value_idx >> 6] &=
            ~(std::uint64_t{1} << (value_idx & 63));
        vars[var_idx].pruned_by[value_idx] = cause;
        --vars[var_idx].active_count;
        trail.emplace_back(var_idx, value_idx);
    }

    /// Record the conflict set of a fully-assigned constraint violation:
    /// the simplex's own assignments (fixed vertices excluded — their
    /// values are per-solve constants, so they can never differ when the
    /// nogood fires).
    void record_violation(const Simplex& sigma) {
        if (nogoods == nullptr) return;
        std::vector<NogoodLiteral> literals;
        literals.reserve(sigma.size());
        for (VertexId u : sigma.vertices()) {
            const Var& uvar = vars[var_of_vertex[u]];
            if (uvar.is_fixed) continue;
            literals.push_back({u, uvar.value});
        }
        learn(std::move(literals));
    }

    /// Record the conflict set of a domain wipeout of `u_idx`: for every
    /// pruned value, the assignments of its pruning constraint's other
    /// vertices. Under exactly these assignments every value of the
    /// (root-propagated, branch-independent) domain is excluded, so the
    /// set is a sound nogood regardless of assignment order.
    void record_wipeout(std::size_t u_idx) {
        if (nogoods == nullptr) return;
        const Var& u = vars[u_idx];
        std::vector<NogoodLiteral> literals;
        for (std::size_t i = 0; i < u.values.size(); ++i) {
            if (u.active[i]) continue;
            const Simplex* sigma = u.pruned_by[i];
            if (sigma == nullptr) return;  // cause lost; skip recording
            for (VertexId w : sigma->vertices()) {
                const Var& wvar = vars[var_of_vertex[w]];
                if (w == u.v || wvar.is_fixed) continue;
                literals.push_back({w, wvar.value});
            }
        }
        learn(std::move(literals));
    }

    void undo_to(std::size_t mark) {
        while (trail.size() > mark) {
            const auto [var_idx, value_idx] = trail.back();
            trail.pop_back();
            vars[var_idx].active[value_idx] = 1;
            vars[var_idx].active_bits[value_idx >> 6] |=
                std::uint64_t{1} << (value_idx & 63);
            ++vars[var_idx].active_count;
        }
    }

    /// Assign v := w and propagate: completed constraints are checked, and
    /// with forward checking on, every in-scope constraint one vertex
    /// short of completion filters that vertex's live domain. Returns
    /// false on a violated constraint or a domain wipeout (the caller must
    /// undo_to its own trail mark either way).
    ///
    /// Two passes over the incident constraints. Pass 1 classifies and
    /// immediately checks every completed (leaf) constraint — the
    /// admissible bound test of this branch: each check is one memo
    /// probe, writes nothing, and a violation rejects the assignment
    /// before any forward-checking work (domain writes + trail entries
    /// + their undo) is paid for. Pass 2 runs the deferred FC filters.
    /// Relative order within each class is the incident order, so the
    /// prune sequence is deterministic; leaf-before-filter only changes
    /// WHICH sound conflict a doomed assignment fails on (and hence
    /// which nogood is learned), never whether it fails — verdicts and
    /// witnesses are untouched.
    bool try_assign(std::size_t var_idx, VertexId w) {
        Var& var = vars[var_idx];
        var.assigned = true;
        var.value = w;
        mark_assigned(var_idx);
        // The map mirror exists only for the uncached leaf path
        // (image_constraint_holds); everything else reads the dense
        // tables.
        if (cache == nullptr) assignment[var.v] = w;
        fc_pending.clear();
        for (const Simplex* sigma_ptr : index.incident_simplices(var.v)) {
            const Simplex& sigma = *sigma_ptr;
            std::uint32_t unassigned_idx = kNoVar;
            std::size_t num_unassigned = 0;
            bool in_scope = true;
            for (VertexId u : sigma.vertices()) {
                const std::uint32_t ui = var_at(u);
                if (ui == kNoVar) {
                    in_scope = false;
                    break;
                }
                if (!vars[ui].assigned) {
                    unassigned_idx = ui;
                    if (++num_unassigned > 1) break;
                }
            }
            if (!in_scope) continue;
            if (num_unassigned == 0) {
                if (!constraint_holds(sigma_ptr)) {
                    record_violation(sigma);
                    if (config.backjumping) {
                        conflict_from_violation(sigma, var_idx);
                    }
                    return false;
                }
            } else if (num_unassigned == 1 && config.forward_checking) {
                fc_pending.emplace_back(sigma_ptr, unassigned_idx);
            }
        }
        for (const auto& [sigma_ptr, u_idx32] : fc_pending) {
            const Simplex& sigma = *sigma_ptr;
            const std::size_t u_idx = u_idx32;
            Var& uvar = vars[u_idx];
            // The constraint complex and the assigned part of the
            // image are fixed across the candidate loop; build the
            // image once with a hole at the unassigned slot.
            std::vector<VertexId>& image = image_scratch;
            image.clear();
            std::size_t u_slot = 0;
            for (std::size_t j = 0; j < sigma.vertices().size(); ++j) {
                const VertexId u = sigma.vertices()[j];
                if (u == uvar.v) {
                    u_slot = j;
                    image.push_back(EvalCache::kHole);
                } else {
                    image.push_back(vars[var_of_vertex[u]].value);
                }
            }
            if (cache != nullptr) {
                // One memoized lookup filters the whole candidate
                // list: the mask is keyed by the neighborhood-image
                // fingerprint (cid + assigned values + hole). The
                // filter itself is the word-wise pass `live & ~allowed`
                // over the packed domain — only the values actually
                // being pruned cost anything beyond one AND-NOT per 64
                // candidates (ctz walks the remainder in ascending
                // index order, same sequence as the old per-value scan).
                const std::vector<std::uint64_t>& mask =
                    cache->allowed_mask(problem, index.id_of(sigma_ptr),
                                        sigma, image, u_slot,
                                        uvar.values);
                const std::size_t words = uvar.active_bits.size();
                for (std::size_t wd = 0; wd < words; ++wd) {
                    std::uint64_t removed = uvar.active_bits[wd] & ~mask[wd];
                    while (removed != 0) {
                        const std::size_t i =
                            (wd << 6) + static_cast<std::size_t>(
                                            __builtin_ctzll(removed));
                        removed &= removed - 1;
                        prune(u_idx, i, sigma_ptr);
                    }
                }
            } else {
                const SimplicialComplex& allowed = problem.allowed(sigma);
                for (std::size_t i = 0; i < uvar.values.size(); ++i) {
                    if (!uvar.active[i]) continue;
                    image[u_slot] = uvar.values[i];
                    const Simplex img{std::vector<VertexId>(image)};
                    if (!problem.codomain->contains(img) ||
                        !allowed.contains(img)) {
                        prune(u_idx, i, sigma_ptr);
                    }
                }
            }
            if (uvar.active_count == 0) {
                record_wipeout(u_idx);
                if (config.backjumping) {
                    conflict_from_wipeout(u_idx, var_idx);
                }
                return false;
            }
        }
        return true;
    }

    void unassign(std::size_t var_idx) {
        vars[var_idx].assigned = false;
        mark_unassigned(var_idx);
        if (cache == nullptr) assignment.erase(vars[var_idx].v);
    }

    /// Dense assignment view for the nogood store.
    bool value_of(VertexId u, VertexId& out) const {
        const std::uint32_t ui = var_at(u);
        if (ui == kNoVar || !vars[ui].assigned) return false;
        out = vars[ui].value;
        return true;
    }

    /// The next branching variable: first unassigned in static order, or
    /// the MRV/degree/id minimum over the live unassigned list (the
    /// criterion is a total order, so the list's arbitrary order picks
    /// the same variable a full scan would). Returns vars.size() when
    /// all assigned.
    std::size_t pick_variable() const {
        if (config.variable_order == VariableOrder::kStatic) {
            for (std::size_t i = 0; i < vars.size(); ++i) {
                if (!vars[i].assigned) return i;
            }
            return vars.size();
        }
        std::size_t best = vars.size();
        for (const std::uint32_t i : unassigned) {
            const Var& var = vars[i];
            if (best == vars.size()) {
                best = i;
                continue;
            }
            const Var& b = vars[best];
            if (var.active_count != b.active_count) {
                if (var.active_count < b.active_count) best = i;
            } else if (var.degree != b.degree) {
                if (var.degree > b.degree) best = i;
            } else if (var.v < b.v) {
                best = i;
            }
        }
        return best;
    }

    Status search() {
        if (stopped()) {
            exhausted = false;
            return Status::kAbort;
        }
        const std::size_t var_idx = pick_variable();
        if (var_idx == vars.size()) return Status::kFound;
        Var& var = vars[var_idx];
        const bool cbj = config.backjumping;
        std::vector<std::uint64_t>* conf = nullptr;
        if (cbj) {
            conf = &conflict_[var_idx];
            std::fill(conf->begin(), conf->end(), 0);
        }
        for (std::size_t i = 0; i < var.values.size(); ++i) {
            if (!var.active[i]) {
                // The value is unavailable because an ancestor's
                // constraint pruned it; that ancestor could restore it,
                // so it belongs in this level's conflict set.
                if (cbj) {
                    const Simplex* cause = var.pruned_by[i];
                    if (cause == nullptr) {
                        conflict_add_all_assigned(*conf, var_idx, var_idx);
                    } else {
                        conflict_add_constraint(*conf, *cause, var_idx,
                                                var_idx);
                    }
                }
                continue;
            }
            if (nogoods != nullptr && !nogoods->empty()) {
                const std::vector<NogoodLiteral>* blocking =
                    nogoods->blocking_nogood(
                        var.v, var.values[i],
                        [this](VertexId u, VertexId& out) {
                            return value_of(u, out);
                        });
                if (blocking != nullptr) {
                    // This assignment would recreate a recorded
                    // conflict: skip it without redoing the propagation
                    // that proved it (not counted as a backtrack —
                    // prunings are reported separately so ablation
                    // counts stay comparable). The nogood's other
                    // literals name the decisions responsible.
                    ++counters.nogood_prunings;
                    if (cbj) {
                        for (const NogoodLiteral& l : *blocking) {
                            if (l.var == var.v) continue;
                            conflict_add(*conf, var_of_vertex[l.var]);
                        }
                    }
                    continue;
                }
            }
            const std::size_t mark = trail.size();
            if (try_assign(var_idx, var.values[i])) {
                const Status st = search();
                if (st == Status::kFound) return st;
                if (st == Status::kAbort || st == Status::kRestart) {
                    // Both unwind the whole tree; only kAbort is final
                    // (kRestart keeps `exhausted` — the next run
                    // finishes the proof with today's nogoods).
                    undo_to(mark);
                    unassign(var_idx);
                    return st;
                }
                // A proven conflict below. If this decision is not in
                // its conflict set, no other value of this variable can
                // resolve it: pop the level without re-enumerating
                // (the backjump), propagating the same conflict.
                if (cbj &&
                    !conflict_contains(conflict_[conflict_var_], var_idx)) {
                    undo_to(mark);
                    unassign(var_idx);
                    ++counters.backjumps;
                    return Status::kConflict;
                }
                if (cbj) {
                    conflict_merge(*conf, conflict_[conflict_var_], var_idx);
                }
            } else if (cbj) {
                // try_assign failed directly; it left the cause in
                // assign_conflict_.
                conflict_merge(*conf, assign_conflict_, var_idx);
            }
            undo_to(mark);
            unassign(var_idx);
            if (++counters.backtracks > config.max_backtracks ||
                stopped()) {
                exhausted = false;
                return Status::kAbort;
            }
            // This run's Luby allotment. Checked after the global
            // budget: restarts reschedule the budget, never extend it.
            if (restart_limit != 0 &&
                counters.backtracks - run_start_backtracks >=
                    restart_limit) {
                return Status::kRestart;
            }
            // A backtrack (or a backjump landing) is the natural moment
            // to pick up what the other portfolio threads proved while
            // this subtree was being refuted: the next value tried here
            // immediately benefits. One relaxed check when idle.
            maybe_import();
        }
        if (cbj && exhausted) record_conflict_set(*conf);
        conflict_var_ = var_idx;
        return Status::kConflict;
    }
};

/// Root propagation of the fixed assignments, done once per solve: they
/// are not search decisions, so a conflict here proves unsatisfiability
/// outright, and the pruning they induce on the free domains is the same
/// for every free-vertex component and every portfolio thread — the FC
/// engine used to redo it (components x threads) times. Returns the
/// pruned per-vertex domains, or nullopt on a root conflict.
std::optional<DomainMap> propagate_fixed_snapshot(
    const ChromaticMapProblem& problem, const topo::AdjacencyIndex& index,
    const std::vector<VertexId>& fixed_order, const DomainMap& base_domains,
    const SolverConfig& config) {
    if (fixed_order.empty()) return base_domains;

    SolverConfig propagation_config = config;
    propagation_config.forward_checking = true;
    FcSearcher s(problem, index, propagation_config);
    for (VertexId v : fixed_order) {
        s.var_index[v] = s.vars.size();
        s.vars.push_back({v, 0, 0, {}, {}, {}, 0, false, true, {}});
    }
    for (VertexId v : problem.domain->vertex_ids()) {
        if (problem.fixed.count(v) != 0) continue;
        s.var_index[v] = s.vars.size();
        s.vars.push_back({v, 0, 0, {}, {}, {}, 0, false, false, {}});
    }
    for (FcSearcher::Var& var : s.vars) {
        var.values = base_domains.at(var.v);
        FcSearcher::activate_all(var);
    }
    s.finalize_vars();
    for (VertexId v : fixed_order) {
        const std::size_t idx = s.var_index.at(v);
        if (s.vars[idx].values.empty() ||
            !s.try_assign(idx, s.vars[idx].values.front())) {
            return std::nullopt;
        }
    }
    DomainMap pruned;
    pruned.reserve(s.vars.size());
    for (const FcSearcher::Var& var : s.vars) {
        std::vector<VertexId> live;
        live.reserve(var.active_count);
        for (std::size_t i = 0; i < var.values.size(); ++i) {
            if (var.active[i]) live.push_back(var.values[i]);
        }
        pruned.emplace(var.v, std::move(live));
    }
    return pruned;
}

/// The Luby restart sequence, 1-indexed: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2,
/// 1, 1, 2, 4, 8, ... — the universal-optimal schedule for restarting a
/// Las-Vegas search (Luby, Sinclair, Zuckerman 1993). luby(i) scales
/// SolverConfig::restart_unit into the i-th run's backtrack allotment.
std::size_t luby(std::size_t i) {
    for (;;) {
        // Find the block: if i is exactly 2^k - 1 the value is 2^(k-1);
        // otherwise recurse into the tail of the enclosing block.
        std::size_t k = 1;
        while ((std::size_t{1} << k) - 1 < i) ++k;
        if ((std::size_t{1} << k) - 1 == i) {
            return std::size_t{1} << (k - 1);
        }
        i -= (std::size_t{1} << (k - 1)) - 1;
    }
}

bool fc_solve_component(const ChromaticMapProblem& problem,
                        const topo::AdjacencyIndex& index,
                        const DomainMap& propagated_domains,
                        const SolverConfig& config,
                        const std::vector<VertexId>& fixed_order,
                        const std::vector<VertexId>& component_order,
                        std::uint64_t shuffle_salt,
                        const exec::CancelToken* cancel,
                        EvalCache* cache, NogoodStore* nogoods,
                        ExchangeSession* session,
                        ChromaticMapResult& result,
                        std::unordered_map<VertexId, VertexId>& solution) {
    FcSearcher s(problem, index, config);
    s.cancel = cancel;
    s.cache = cache;
    s.nogoods = nogoods;
    s.session = session;
    for (VertexId v : fixed_order) {
        s.var_index[v] = s.vars.size();
        s.vars.push_back({v, 0, 0, {}, {}, {}, 0, false, true, {}});
    }
    for (VertexId v : component_order) {
        s.var_index[v] = s.vars.size();
        s.vars.push_back({v, 0, 0, {}, {}, {}, 0, false, false, {}});
    }

    std::mt19937_64 rng(config.seed ^ shuffle_salt);
    for (FcSearcher::Var& var : s.vars) {
        var.values = propagated_domains.at(var.v);
        if (config.value_order == ValueOrder::kShuffled && !var.is_fixed) {
            std::shuffle(var.values.begin(), var.values.end(), rng);
        }
        FcSearcher::activate_all(var);
    }

    // The fixed assignments were validated and propagated into
    // `propagated_domains` once, up front (propagate_fixed_snapshot), so
    // just install them (before finalize_vars, which snapshots the
    // unassigned list from the assigned flags).
    for (VertexId v : fixed_order) {
        FcSearcher::Var& var = s.vars[s.var_index.at(v)];
        var.assigned = true;
        var.value = var.values.front();
        s.assignment[v] = var.values.front();
    }
    s.finalize_vars();

    // The component start is the restart point of the exchange: pick up
    // everything the other threads proved before descending at all. It
    // is also a reference-free safe point, so retired nogood buffers
    // from the previous component can be physically reclaimed.
    if (nogoods != nullptr) nogoods->reclaim();
    s.maybe_import();

    // Luby restarts (only meaningful with a store: a restart without
    // learned nogoods would replay the identical tree). Each run gets
    // luby(i) * restart_unit backtracks; on kRestart the searcher has
    // fully unwound to this root, so re-descending with the retained
    // store — now holding everything this run and the exchange peers
    // proved — is the same deterministic DFS with strictly more sound
    // pruning: same first witness, same exhaustion verdict, fewer
    // re-derived conflicts. The global max_backtracks budget keeps
    // ticking across runs, so termination is unchanged.
    const bool use_restarts = config.restarts && nogoods != nullptr &&
                              config.restart_unit > 0;
    FcSearcher::Status status;
    for (std::size_t run = 1;; ++run) {
        if (use_restarts) {
            s.restart_limit = luby(run) * config.restart_unit;
            s.run_start_backtracks = s.counters.backtracks;
        }
        status = s.search();
        if (status != FcSearcher::Status::kRestart) break;
        ++s.counters.restarts;
        // Unwound to the root: no blocking_nogood()/back() reference is
        // live, so this is the other designated reclaim point.
        nogoods->reclaim();
        s.maybe_import();
    }
    const bool found = status == FcSearcher::Status::kFound;
    result.counters.add(s.counters);
    if (!s.exhausted) result.exhausted = false;
    if (found) {
        for (VertexId v : component_order) {
            solution[v] = s.vars[s.var_index.at(v)].value;
        }
        for (VertexId v : fixed_order) {
            solution[v] = s.vars[s.var_index.at(v)].value;
        }
    }
    return found;
}

// ---------------------------------------------------------------------------
// Single-threaded driver: decomposition + engine dispatch.
// ---------------------------------------------------------------------------

/// Does this configuration select the seed backtracker verbatim?
bool is_naive_engine(const SolverConfig& config) {
    return config.variable_order == VariableOrder::kStatic &&
           !config.forward_checking &&
           config.value_order == ValueOrder::kGiven;
}

ChromaticMapResult solve_single(const ChromaticMapProblem& problem,
                                const topo::AdjacencyIndex& index,
                                const Decomposition& dec,
                                const DomainMap& base_domains,
                                const DomainMap& propagated_domains,
                                const SolverConfig& config,
                                std::uint64_t shuffle_salt,
                                const exec::CancelToken* cancel,
                                LiveNogoodExchange* exchange = nullptr,
                                unsigned thread_id = 0) {
    ChromaticMapResult result;
    result.exhausted = true;
    std::unordered_map<VertexId, VertexId> solution;

    const bool naive_engine = is_naive_engine(config);

    // The incremental layers are per-thread (no locking) and shared
    // across the thread's components: constraint ids are global to the
    // domain complex, and nogoods from one component mention variables
    // disjoint from every other component's, so sharing is sound.
    std::optional<EvalCache> cache;
    if (!naive_engine && config.eval_cache) {
        cache.emplace(index.indexed_simplex_count(),
                      config.eval_cache_capacity);
    }
    // Cross-solve reuse: when the problem builder wired a SharedNogoodPool,
    // import every pool nogood whose variables all translate into the
    // current domain (via the builder's stable (position, color) keys),
    // and publish this solve's newly learned nogoods on the way out. The
    // store is sized so seeded entries do not consume the learning
    // budget. Reused nogoods only prune, so seeding changes backtrack
    // counts, never verdicts or witnesses.
    const bool use_pool = !naive_engine && config.nogood_learning &&
                          config.nogood_capacity > 0 &&
                          problem.nogood_pool != nullptr &&
                          !problem.nogood_scope.empty() &&
                          static_cast<bool>(problem.pool_var_key);
    // One vertex -> pool-key table per solve, built lazily (each
    // pool_var_key call takes the pool's mutex for an exact-rational map
    // probe — worth paying once, not per literal) and shared by the seed
    // and publish translations below. Untouched when the scope is empty
    // and nothing gets learned.
    std::optional<std::unordered_map<VertexId, SharedNogoodPool::VarKeyId>>
        key_of_vertex;
    const auto pool_keys = [&]() -> const auto& {
        if (!key_of_vertex.has_value()) {
            key_of_vertex.emplace();
            key_of_vertex->reserve(problem.domain->vertex_ids().size());
            for (VertexId v : problem.domain->vertex_ids()) {
                key_of_vertex->emplace(v, problem.pool_var_key(v));
            }
        }
        return *key_of_vertex;
    };
    std::optional<NogoodStore> nogoods;
    std::size_t seeded = 0;
    if (!naive_engine && config.nogood_learning &&
        config.nogood_capacity > 0) {
        std::vector<std::vector<NogoodLiteral>> seeds;
        // An empty scope has nothing to import: skip the key translation
        // outright on the cold first solve.
        if (use_pool &&
            problem.nogood_pool->size(problem.nogood_scope) > 0) {
            std::unordered_map<SharedNogoodPool::VarKeyId, VertexId>
                vertex_of_key;
            vertex_of_key.reserve(pool_keys().size());
            for (const auto& [v, key] : pool_keys()) {
                vertex_of_key.emplace(key, v);
            }
            problem.nogood_pool->for_each(
                problem.nogood_scope,
                [&](const std::vector<SharedNogoodPool::PortableLiteral>&
                        portable) {
                    std::vector<NogoodLiteral> literals;
                    literals.reserve(portable.size());
                    for (const SharedNogoodPool::PortableLiteral& l :
                         portable) {
                        const auto it = vertex_of_key.find(l.var_key);
                        if (it == vertex_of_key.end()) return;  // untranslatable
                        literals.push_back({it->second, l.value});
                    }
                    seeds.push_back(std::move(literals));
                });
        }
        // The store collects when full (config.nogood_gc) instead of
        // rejecting — the capacity bounds the live set, not the
        // learning. Seeds are not exempt from eviction: a seed that
        // never fires is exactly the kind of ballast GC exists to shed.
        NogoodStore::GcConfig gc;
        gc.enabled = config.nogood_gc;
        gc.keep_fraction = config.gc_keep_fraction;
        nogoods.emplace(config.nogood_capacity + seeds.size(), gc);
        for (std::vector<NogoodLiteral>& s : seeds) {
            if (nogoods->record(std::move(s))) ++seeded;
        }
    }

    // Mid-flight portfolio exchange (the per-thread view of the shared
    // log solve_chromatic_map created): only meaningful when this
    // thread actually learns. Imports land in the same bounded store as
    // the thread's own learning; their indices are remembered so the
    // cross-solve pool publish below stays "each thread publishes what
    // it proved" and nogoods_recorded stays own-learning only.
    std::optional<ExchangeSession> session;
    if (exchange != nullptr && nogoods.has_value()) {
        session.emplace();
        session->exchange = exchange;
        session->store = &*nogoods;
        session->source = thread_id;
        session->max_import_literals = config.exchange_max_literals;
    }

    const auto solve_component =
        [&](const std::vector<VertexId>& component_order) {
            if (naive_engine) {
                // The seed baseline, preserved verbatim: raw domains,
                // fixed vertices re-validated through the ordinary
                // constraint checks.
                return naive_solve_component(problem, base_domains,
                                             dec.fixed_order, component_order,
                                             config.max_backtracks, cancel,
                                             result, solution);
            }
            return fc_solve_component(
                problem, index, propagated_domains, config, dec.fixed_order,
                component_order, shuffle_salt, cancel,
                cache.has_value() ? &*cache : nullptr,
                nogoods.has_value() ? &*nogoods : nullptr,
                session.has_value() ? &*session : nullptr, result, solution);
        };

    // The fixed-only subproblem validates the pre-assignment itself.
    bool found = solve_component({});
    if (found) {
        for (const std::vector<VertexId>& order : dec.component_orders) {
            if (!solve_component(order)) {
                found = false;
                break;
            }
        }
    }

    if (cache.has_value()) {
        result.counters.eval_cache_hits = cache->stats().hits();
        result.counters.eval_cache_misses = cache->stats().misses();
    }
    if (nogoods.has_value()) {
        // nogoods_recorded was tallied at each learn() (seeds and
        // exchange imports never pass through it); here only the
        // session totals and the cross-solve publish remain.
        result.counters.pool_seeded = seeded;
        result.counters.nogoods_evicted = nogoods->evicted();
        if (session.has_value()) {
            result.counters.exchange_published = session->published;
            result.counters.exchange_imported = session->imported;
        }
        if (use_pool) {
            // Publish this thread's own learning: seeds sit at the
            // front of the append-only store; exchange imports are
            // interleaved after them and are skipped — their proving
            // thread publishes them (imported_ids is ascending, so one
            // forward scan pairs with the index walk).
            const auto& all = nogoods->all();
            const std::vector<std::uint32_t> no_imports;
            const std::vector<std::uint32_t>& imported_ids =
                session.has_value() ? session->imported_ids : no_imports;
            std::size_t next_import = 0;
            for (std::size_t i = seeded; i < all.size(); ++i) {
                while (next_import < imported_ids.size() &&
                       imported_ids[next_import] < i) {
                    ++next_import;
                }
                if (next_import < imported_ids.size() &&
                    imported_ids[next_import] == i) {
                    continue;
                }
                // Retired-and-reclaimed slots are empty vectors; an
                // empty literal set must never reach the pool (it would
                // read as "everything is contradictory").
                if (all[i].empty()) continue;
                std::vector<SharedNogoodPool::PortableLiteral> portable;
                portable.reserve(all[i].size());
                for (const NogoodLiteral& l : all[i]) {
                    portable.push_back({pool_keys().at(l.var), l.value});
                }
                if (problem.nogood_pool->publish(problem.nogood_scope,
                                                 std::move(portable))) {
                    ++result.counters.pool_published;
                }
            }
        }
    }

    if (found) result.map = SimplicialMap(std::move(solution));
    return result;
}

}  // namespace

ChromaticMapResult solve_chromatic_map(const ChromaticMapProblem& problem,
                                       const SolverConfig& config) {
    require(problem.domain != nullptr && problem.codomain != nullptr,
            "solve_chromatic_map: missing complexes");
    require(static_cast<bool>(problem.allowed),
            "solve_chromatic_map: missing constraint function");
    require(config.num_threads >= 1,
            "solve_chromatic_map: num_threads must be >= 1");

    // The per-vertex simplex lists exist for forward checking; a purely
    // naive run (note portfolio threads > 0 always shuffle, hence use the
    // FC engine) only needs the neighbor sets for decomposition.
    const bool need_simplex_index =
        !is_naive_engine(config) || config.num_threads > 1;
    const topo::AdjacencyIndex index(problem.domain->complex(),
                                     need_simplex_index);
    const Decomposition dec = decompose(problem, index);
    const DomainMap base_domains = all_initial_domains(problem);

    // Fixed-vertex root propagation, once per solve (FC engines only; the
    // naive baseline keeps the raw domains).
    DomainMap propagated_domains;
    const bool fc_engine_used =
        !is_naive_engine(config) || config.num_threads > 1;
    if (fc_engine_used) {
        auto snapshot = propagate_fixed_snapshot(problem, index,
                                                 dec.fixed_order,
                                                 base_domains, config);
        if (!snapshot.has_value()) {
            // A conflict among the fixed assignments alone proves
            // unsatisfiability outright (they are not search decisions).
            ChromaticMapResult result;
            result.exhausted = true;
            return result;
        }
        propagated_domains = std::move(*snapshot);
    }

    ChromaticMapResult result;
    if (config.num_threads == 1) {
        result = solve_single(problem, index, dec, base_domains,
                              propagated_domains, config, 0, config.cancel);
    } else {
        // Portfolio race, run as a cancellable task group on the
        // resident scheduler (exec/task_group.h): task 0 keeps the
        // configured value order, the others search with per-task
        // shuffles (unless diversify_portfolio is off — then every
        // task runs the identical search and the race only hedges
        // scheduling). A task that either finds a witness or exhausts
        // the search space has settled the problem, so it cancels
        // everyone else. The race token is a CHILD of the caller's
        // token: the caller's deadline stops the race, settling the
        // race never cancels the caller's scope. With live_exchange
        // on, the tasks additionally trade learned nogoods mid-flight
        // through one shared append-only log.
        //
        // Counter audit: the reported result is exactly the settling
        // task's ChromaticMapResult, claimed once under the mutex —
        // never a sum that mixes a settled task's counters with the
        // partially-updated counters of tasks the cancellation
        // interrupted mid-search (such sums double-count work against
        // the settled search and vary with thread count and timing).
        // The token's relaxed ordering is safe: cancellation is
        // advisory (losing tasks only ever do extra work), each
        // `locals[i]` is written by its own task before the group join
        // and read after it, and the claimed result is published under
        // the mutex. Only when *no* task settles (every budget ran
        // out) are counters summed: there is no coherent single-thread
        // story, and the sum is explicitly "total budgeted effort
        // spent".
        exec::CancelToken race =
            config.cancel != nullptr
                ? exec::CancelToken::child_of(*config.cancel)
                : exec::CancelToken();
        std::mutex mutex;
        std::optional<ChromaticMapResult> settled;
        std::vector<ChromaticMapResult> locals(config.num_threads);
        std::vector<std::exception_ptr> errors(config.num_threads);
        // The mid-flight exchange needs learning to be on to have
        // anything to trade; it lives exactly as long as the race.
        std::optional<LiveNogoodExchange> exchange;
        if (config.live_exchange && !is_naive_engine(config) &&
            config.nogood_learning && config.nogood_capacity > 0) {
            exchange.emplace();
        }
        exec::TaskGroup group;
        for (unsigned i = 0; i < config.num_threads; ++i) {
            group.run([&, i] {
                try {
                    SolverConfig local = config;
                    local.num_threads = 1;
                    local.cancel = &race;
                    if (i > 0 && config.diversify_portfolio) {
                        local.value_order = ValueOrder::kShuffled;
                    }
                    locals[i] =
                        solve_single(problem, index, dec, base_domains,
                                     propagated_domains, local,
                                     0x9e3779b97f4a7c15ULL * i, &race,
                                     exchange.has_value() ? &*exchange
                                                          : nullptr,
                                     i);
                    if (locals[i].map.has_value() || locals[i].exhausted) {
                        {
                            const std::lock_guard<std::mutex> lock(mutex);
                            if (!settled.has_value()) settled = locals[i];
                        }
                        race.cancel();
                    }
                } catch (...) {
                    errors[i] = std::current_exception();
                    race.cancel();
                }
            });
        }
        group.wait();  // the tasks catch everything; errors rethrow below
        for (const std::exception_ptr& e : errors) {
            if (e) std::rethrow_exception(e);
        }
        if (settled.has_value()) {
            // A witness, or a proven exhaustion: either way one thread
            // covered the decisive search space, and its counters are
            // the coherent account of it. (A witness and a no-witness
            // exhaustion cannot both happen: exhaustion means the full
            // space was searched without finding the witness the other
            // thread claims, which check_chromatic_map would expose as
            // a solver bug.)
            result = *settled;
        } else {
            result.exhausted = false;
            // "Total budgeted effort": every counter field accumulates
            // (add_counters covers them all by construction — see the
            // SearchCounters fields-covered check), so a counter added
            // later can never be silently dropped from this merge.
            for (const ChromaticMapResult& r : locals) {
                result.add_counters(r);
            }
        }
    }

    if (result.map.has_value()) {
        const std::string err = check_chromatic_map(problem, *result.map);
        ensure(err.empty(), "solve_chromatic_map: solver bug: " + err);
    }
    return result;
}

ChromaticMapResult solve_chromatic_map(const ChromaticMapProblem& problem,
                                       std::size_t max_backtracks) {
    return solve_chromatic_map(problem, SolverConfig::naive(max_backtracks));
}

std::string check_chromatic_map(const ChromaticMapProblem& problem,
                                const SimplicialMap& map) {
    if (!map.is_simplicial(problem.domain->complex(),
                           problem.codomain->complex())) {
        return "not simplicial";
    }
    if (!map.is_chromatic(*problem.domain, *problem.codomain)) {
        return "not chromatic";
    }
    for (const Simplex& sigma : problem.domain->complex().simplices()) {
        if (!problem.allowed(sigma).contains(map.apply(sigma))) {
            return "image of " + sigma.to_string() +
                   " violates its constraint";
        }
    }
    for (const auto& [v, w] : problem.fixed) {
        if (map.apply(v) != w) {
            return "fixed vertex " + std::to_string(v) + " not respected";
        }
    }
    return "";
}

}  // namespace gact::core
