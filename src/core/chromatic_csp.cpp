#include "core/chromatic_csp.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "util/require.h"

namespace gact::core {

namespace {

struct Searcher {
    const ChromaticMapProblem& problem;
    std::vector<VertexId> order;                 // assignment order
    std::vector<std::vector<VertexId>> domains;  // candidates per position
    std::unordered_map<VertexId, VertexId> assignment;
    // simplices of the domain complex indexed by their highest-ordered
    // vertex, so each constraint is checked exactly once, as soon as it is
    // fully assigned.
    std::unordered_map<VertexId, std::vector<Simplex>> constraints_by_last;
    std::size_t backtracks = 0;
    std::size_t max_backtracks;
    bool exhausted = true;

    bool constraint_holds(const Simplex& sigma) {
        std::vector<VertexId> image;
        image.reserve(sigma.size());
        for (VertexId v : sigma.vertices()) image.push_back(assignment.at(v));
        const Simplex img(std::move(image));
        if (!problem.codomain->contains(img)) return false;
        return problem.allowed(sigma).contains(img);
    }

    bool assign(std::size_t idx) {
        if (idx == order.size()) return true;
        const VertexId v = order[idx];
        for (VertexId w : domains[idx]) {
            assignment[v] = w;
            bool ok = true;
            const auto it = constraints_by_last.find(v);
            if (it != constraints_by_last.end()) {
                for (const Simplex& sigma : it->second) {
                    if (!constraint_holds(sigma)) {
                        ok = false;
                        break;
                    }
                }
            }
            if (ok && assign(idx + 1)) return true;
            assignment.erase(v);
            if (++backtracks > max_backtracks) {
                exhausted = false;
                return false;
            }
        }
        return false;
    }
};

}  // namespace

namespace {

/// Solve the subproblem induced by the fixed vertices plus one connected
/// component of free vertices. `component_order` lists the component's
/// free vertices in assignment order; fixed vertices head the order with
/// singleton domains. On success, the component's assignments are merged
/// into `solution`.
bool solve_component(const ChromaticMapProblem& problem,
                     const std::vector<VertexId>& fixed_order,
                     const std::vector<VertexId>& component_order,
                     std::size_t max_backtracks, ChromaticMapResult& result,
                     std::unordered_map<VertexId, VertexId>& solution) {
    Searcher s{problem, {}, {}, {}, {}, 0, max_backtracks, true};
    std::unordered_set<VertexId> in_scope;
    for (VertexId v : fixed_order) {
        s.order.push_back(v);
        in_scope.insert(v);
    }
    for (VertexId v : component_order) {
        s.order.push_back(v);
        in_scope.insert(v);
    }

    // Constraints restricted to simplices fully inside the scope, indexed
    // by their latest-assigned vertex so each is checked exactly once.
    std::unordered_map<VertexId, std::size_t> position;
    for (std::size_t i = 0; i < s.order.size(); ++i) position[s.order[i]] = i;
    for (const Simplex& sigma : problem.domain->complex().simplices()) {
        VertexId last = sigma.vertices().front();
        bool inside = true;
        for (VertexId v : sigma.vertices()) {
            if (in_scope.count(v) == 0) {
                inside = false;
                break;
            }
            if (position.at(v) > position.at(last)) last = v;
        }
        if (inside) s.constraints_by_last[last].push_back(sigma);
    }

    s.domains.resize(s.order.size());
    for (std::size_t i = 0; i < s.order.size(); ++i) {
        const VertexId v = s.order[i];
        const auto fit = problem.fixed.find(v);
        std::vector<VertexId> candidates;
        if (fit != problem.fixed.end()) {
            candidates = {fit->second};
        } else if (problem.candidate_order) {
            candidates = problem.candidate_order(v);
        } else {
            const topo::Color c = problem.domain->color(v);
            for (VertexId w : problem.codomain->vertex_ids()) {
                if (problem.codomain->color(w) == c) candidates.push_back(w);
            }
        }
        const SimplicialComplex& allowed = problem.allowed(Simplex{v});
        std::vector<VertexId> filtered;
        for (VertexId w : candidates) {
            if (allowed.contains(Simplex{w})) filtered.push_back(w);
        }
        s.domains[i] = std::move(filtered);
    }

    const bool found = s.assign(0);
    result.backtracks += s.backtracks;
    if (!s.exhausted) result.exhausted = false;
    if (found) {
        for (VertexId v : component_order) solution[v] = s.assignment.at(v);
        for (VertexId v : fixed_order) solution[v] = s.assignment.at(v);
    }
    return found;
}

}  // namespace

ChromaticMapResult solve_chromatic_map(const ChromaticMapProblem& problem,
                                       std::size_t max_backtracks) {
    require(problem.domain != nullptr && problem.codomain != nullptr,
            "solve_chromatic_map: missing complexes");
    require(static_cast<bool>(problem.allowed),
            "solve_chromatic_map: missing constraint function");

    const std::vector<VertexId> vertices = problem.domain->vertex_ids();
    std::unordered_map<VertexId, std::vector<VertexId>> adjacency;
    for (const Simplex& sigma :
         problem.domain->complex().simplices_of_dimension(1)) {
        adjacency[sigma.vertices()[0]].push_back(sigma.vertices()[1]);
        adjacency[sigma.vertices()[1]].push_back(sigma.vertices()[0]);
    }

    std::vector<VertexId> fixed_order;
    for (const auto& [v, w] : problem.fixed) {
        require(problem.domain->contains_vertex(v),
                "solve_chromatic_map: fixed vertex not in domain");
        fixed_order.push_back(v);
    }
    std::sort(fixed_order.begin(), fixed_order.end());

    // Connected components of free vertices (free-free adjacency): the
    // components are independent subproblems given the fixed assignments,
    // so solving them separately avoids cross-component thrashing.
    std::unordered_map<VertexId, std::size_t> component;
    std::size_t num_components = 0;
    for (VertexId v : vertices) {
        if (problem.fixed.count(v) != 0 || component.count(v) != 0) continue;
        std::vector<VertexId> stack{v};
        component[v] = num_components;
        while (!stack.empty()) {
            const VertexId u = stack.back();
            stack.pop_back();
            for (VertexId w : adjacency[u]) {
                if (problem.fixed.count(w) == 0 && component.count(w) == 0) {
                    component[w] = num_components;
                    stack.push_back(w);
                }
            }
        }
        ++num_components;
    }

    // Within each component, maximum-cardinality order: always the vertex
    // adjacent to the most already-ordered vertices, so contradictions
    // surface immediately.
    std::vector<std::vector<VertexId>> component_orders(num_components);
    {
        std::unordered_map<VertexId, std::size_t> ordered_neighbors;
        std::unordered_set<VertexId> placed;
        const auto place = [&](VertexId v) {
            placed.insert(v);
            for (VertexId u : adjacency[v]) ++ordered_neighbors[u];
        };
        for (VertexId v : fixed_order) place(v);
        for (std::size_t c = 0; c < num_components; ++c) {
            std::vector<VertexId> members;
            for (VertexId v : vertices) {
                const auto it = component.find(v);
                if (it != component.end() && it->second == c) {
                    members.push_back(v);
                }
            }
            for (std::size_t step = 0; step < members.size(); ++step) {
                VertexId best = 0;
                std::size_t best_score = 0;
                bool found = false;
                for (VertexId v : members) {
                    if (placed.count(v) != 0) continue;
                    const std::size_t score = ordered_neighbors[v];
                    if (!found || score > best_score ||
                        (score == best_score && v < best)) {
                        best = v;
                        best_score = score;
                        found = true;
                    }
                }
                component_orders[c].push_back(best);
                place(best);
            }
        }
    }

    ChromaticMapResult result;
    result.exhausted = true;
    std::unordered_map<VertexId, VertexId> solution;

    // The fixed-only subproblem validates the pre-assignment itself.
    if (!solve_component(problem, fixed_order, {}, max_backtracks, result,
                         solution)) {
        return result;
    }
    for (std::size_t c = 0; c < num_components; ++c) {
        if (!solve_component(problem, fixed_order, component_orders[c],
                             max_backtracks, result, solution)) {
            return result;
        }
    }

    result.map = SimplicialMap(std::move(solution));
    const std::string err = check_chromatic_map(problem, *result.map);
    ensure(err.empty(), "solve_chromatic_map: solver bug: " + err);
    return result;
}

std::string check_chromatic_map(const ChromaticMapProblem& problem,
                                const SimplicialMap& map) {
    if (!map.is_simplicial(problem.domain->complex(),
                           problem.codomain->complex())) {
        return "not simplicial";
    }
    if (!map.is_chromatic(*problem.domain, *problem.codomain)) {
        return "not chromatic";
    }
    for (const Simplex& sigma : problem.domain->complex().simplices()) {
        if (!problem.allowed(sigma).contains(map.apply(sigma))) {
            return "image of " + sigma.to_string() +
                   " violates its constraint";
        }
    }
    for (const auto& [v, w] : problem.fixed) {
        if (map.apply(v) != w) {
            return "fixed vertex " + std::to_string(v) + " not respected";
        }
    }
    return "";
}

}  // namespace gact::core
