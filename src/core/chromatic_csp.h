// A configurable search engine for chromatic, carrier-preserving
// simplicial maps.
//
// Both directions of the paper's machinery need witnesses of the form
// "a chromatic simplicial map from A to B such that the image of every
// simplex lies in a prescribed subcomplex":
//  * ACT (Corollary 7.1): eta : Chr^k I -> O with eta(sigma) in
//    Delta(carrier(sigma));
//  * the chromatic simplicial approximation of Theorem 8.4 / Proposition
//    9.1: delta : K(T') -> O approximating a continuous map f, found here
//    by ordering each vertex's candidates by distance to f(vertex).
//
// The search is a constraint satisfaction problem: variables are the
// vertices of A, domains are color-matching vertices of B allowed by the
// vertex's constraint complex, and every simplex of A whose vertices are
// all assigned must map to a simplex of its constraint complex.
//
// Two engines are provided, selected by SolverConfig:
//  * kStatic order without forward checking is the plain backtracker the
//    library shipped with (the "naive" baseline of bench_csp_ablation);
//  * kMrvDegree with forward checking prunes per-vertex domains through a
//    precomputed vertex/simplex adjacency index (topology/adjacency_index)
//    and always branches on the most constrained vertex.
// Independently, `num_threads > 1` races a portfolio of searches with
// diversified value orders; the first witness wins via an atomic stop
// flag.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "topology/simplicial_map.h"

namespace gact::core {

using topo::ChromaticComplex;
using topo::Simplex;
using topo::SimplicialComplex;
using topo::SimplicialMap;
using topo::VertexId;

/// Problem statement; see header comment.
struct ChromaticMapProblem {
    const ChromaticComplex* domain = nullptr;
    const ChromaticComplex* codomain = nullptr;

    /// The constraint complex for each simplex of the domain (the image
    /// must be one of its simplices). Must be monotone under faces for the
    /// search to be meaningful (carrier maps are). With num_threads > 1
    /// this is called concurrently and must be thread-safe for reads.
    std::function<const SimplicialComplex&(const Simplex&)> allowed;

    /// Pre-assigned vertices (may be empty).
    std::unordered_map<VertexId, VertexId> fixed;

    /// Optional candidate ordering: given a domain vertex, an ordered list
    /// of codomain vertices to try (already color-matching). When absent,
    /// all color-matching vertices allowed at the vertex are tried. With
    /// num_threads > 1 this is called concurrently and must be
    /// thread-safe.
    std::function<std::vector<VertexId>(VertexId)> candidate_order;
};

/// How the next branching variable is chosen.
enum class VariableOrder {
    /// Fixed vertices first, then per component a static
    /// maximum-cardinality order (most already-ordered neighbors first).
    /// This is the seed backtracker's order.
    kStatic,
    /// Dynamic minimum-remaining-values: branch on the free vertex with
    /// the smallest live domain; ties broken by larger 1-skeleton degree,
    /// then smaller vertex id.
    kMrvDegree,
};

/// How each variable's candidate list is ordered.
enum class ValueOrder {
    /// As given: `candidate_order` when present, else codomain vertex-id
    /// order restricted to matching colors.
    kGiven,
    /// Deterministic shuffle of the given order from `SolverConfig::seed`
    /// (portfolio threads perturb the seed per thread).
    kShuffled,
};

/// Tunable knobs of the search engine.
struct SolverConfig {
    VariableOrder variable_order = VariableOrder::kMrvDegree;
    ValueOrder value_order = ValueOrder::kGiven;
    /// Prune unassigned neighbors' domains after every assignment
    /// (requires no extra setup; uses topo::AdjacencyIndex internally).
    bool forward_checking = true;
    /// Backtrack budget per engine run (per thread in portfolio mode).
    std::size_t max_backtracks = 1000000;
    /// 1 = single-threaded. > 1 races that many searches with value
    /// orders diversified per thread; the first witness wins and stops
    /// the rest through an atomic flag.
    unsigned num_threads = 1;
    /// Base seed for ValueOrder::kShuffled and portfolio diversification.
    std::uint64_t seed = 0;

    /// The seed backtracker: static order, no pruning.
    static SolverConfig naive(std::size_t max_backtracks = 1000000) {
        SolverConfig c;
        c.variable_order = VariableOrder::kStatic;
        c.forward_checking = false;
        c.max_backtracks = max_backtracks;
        return c;
    }

    /// Forward checking + MRV/degree (the default).
    static SolverConfig fast(std::size_t max_backtracks = 1000000) {
        SolverConfig c;
        c.max_backtracks = max_backtracks;
        return c;
    }

    /// `threads` diversified searches racing, forward checking on.
    static SolverConfig portfolio(unsigned threads,
                                  std::size_t max_backtracks = 1000000,
                                  std::uint64_t seed = 0) {
        SolverConfig c;
        c.max_backtracks = max_backtracks;
        c.num_threads = threads;
        c.seed = seed;
        return c;
    }
};

/// Result of the search.
struct ChromaticMapResult {
    std::optional<SimplicialMap> map;
    /// Number of backtracking steps performed. In portfolio mode: the
    /// winning thread's count when a witness was found, else the total
    /// across threads.
    std::size_t backtracks = 0;
    /// True when the search space was exhausted (so no map exists under
    /// the given constraints); false when the backtrack budget ran out or
    /// a portfolio race was stopped early.
    bool exhausted = false;
};

/// Search for a satisfying map with the given engine configuration.
ChromaticMapResult solve_chromatic_map(const ChromaticMapProblem& problem,
                                       const SolverConfig& config);

/// Compatibility entry point: the seed backtracker
/// (SolverConfig::naive(max_backtracks)).
ChromaticMapResult solve_chromatic_map(const ChromaticMapProblem& problem,
                                       std::size_t max_backtracks = 1000000);

/// Verify that `map` is a chromatic simplicial map from problem.domain to
/// problem.codomain with every simplex image inside its constraint
/// complex. Returns a diagnostic or "" if valid.
std::string check_chromatic_map(const ChromaticMapProblem& problem,
                                const SimplicialMap& map);

}  // namespace gact::core
