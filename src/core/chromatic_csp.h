// A configurable search engine for chromatic, carrier-preserving
// simplicial maps.
//
// Both directions of the paper's machinery need witnesses of the form
// "a chromatic simplicial map from A to B such that the image of every
// simplex lies in a prescribed subcomplex":
//  * ACT (Corollary 7.1): eta : Chr^k I -> O with eta(sigma) in
//    Delta(carrier(sigma));
//  * the chromatic simplicial approximation of Theorem 8.4 / Proposition
//    9.1: delta : K(T') -> O approximating a continuous map f, found here
//    by ordering each vertex's candidates by distance to f(vertex).
//
// The search is a constraint satisfaction problem: variables are the
// vertices of A, domains are color-matching vertices of B allowed by the
// vertex's constraint complex, and every simplex of A whose vertices are
// all assigned must map to a simplex of its constraint complex.
//
// Two engines are provided, selected by SolverConfig:
//  * kStatic order without forward checking is the plain backtracker the
//    library shipped with (the "naive" baseline of bench_csp_ablation);
//  * kMrvDegree with forward checking prunes per-vertex domains through a
//    precomputed vertex/simplex adjacency index (topology/adjacency_index)
//    and always branches on the most constrained vertex.
// Independently, `num_threads > 1` races a portfolio of searches with
// diversified value orders as a cancellable task group on the resident
// scheduler (src/exec/); the first witness wins via a CancelToken.
//
// The FC engine's per-node work is flattened by three incremental
// layers, all on by default and all provably verdict/witness-preserving:
//  * an evaluation cache (core/eval_cache.h) memoizing allowed()
//    complexes and full image evaluations, keyed by dense constraint ids
//    from the adjacency index;
//  * nogood learning (core/nogood_store.h) recording each proven
//    conflict's minimal assignment set and pruning branches that would
//    recreate it;
//  * conflict-directed backjumping (SolverConfig::backjumping): the same
//    minimal conflict sets tell the engine which decision actually
//    caused a dead end, and the search returns straight to the deepest
//    decision in the set instead of backtracking chronologically
//    through decisions the conflict provably does not involve.
// Learned conflicts travel beyond the thread that proved them on two
// timescales: *mid-flight*, portfolio threads publish every newly
// recorded nogood to a lock-light LiveNogoodExchange and import each
// other's at backtrack/backjump points (SolverConfig::live_exchange);
// *across solves*, they persist through a SharedNogoodPool wired onto
// the problem by its builder (see ChromaticMapProblem::nogood_pool and
// core/nogood_store.h), which itself persists across processes via
// SharedNogoodPool::save/load.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/nogood_store.h"
#include "topology/simplicial_map.h"

namespace gact::exec {
class CancelToken;
}

namespace gact::core {

using topo::ChromaticComplex;
using topo::Simplex;
using topo::SimplicialComplex;
using topo::SimplicialMap;
using topo::VertexId;

/// @brief Problem statement of one chromatic-map search; see the header
/// comment for the two paper instances it encodes.
struct ChromaticMapProblem {
    /// @brief The complex being mapped (A). Not owned; must outlive the
    /// problem.
    const ChromaticComplex* domain = nullptr;
    /// @brief The complex mapped into (B). Not owned; must outlive the
    /// problem.
    const ChromaticComplex* codomain = nullptr;

    /// @brief The constraint complex for each simplex of the domain (the
    /// image must be one of its simplices).
    ///
    /// @note Carrier preservation lives here: for the paper's instances
    /// `allowed(sigma)` is Delta(carrier(sigma)), and the search is only
    /// meaningful when the function is monotone under faces (carrier
    /// maps are, by condition (ii) of Section 3.2).
    /// @note Must be pure and stable within one solve: the solver's
    /// memoization layers (core/eval_cache.h) cache both the returned
    /// reference and evaluation results against it. With num_threads > 1
    /// it is called concurrently and must be thread-safe for reads.
    std::function<const SimplicialComplex&(const Simplex&)> allowed;

    /// @brief Pre-assigned vertices (may be empty).
    std::unordered_map<VertexId, VertexId> fixed;

    /// @brief Optional candidate ordering: given a domain vertex, an
    /// ordered list of codomain vertices to try (already
    /// color-matching). When absent, all color-matching vertices allowed
    /// at the vertex are tried.
    /// @note With num_threads > 1 this is called concurrently and must
    /// be thread-safe.
    std::function<std::vector<VertexId>(VertexId)> candidate_order;

    /// @brief Optional cross-solve learning pool (core/nogood_store.h).
    /// When set together with `nogood_scope` and `pool_var_key`, every
    /// solver thread seeds its nogood store from the pool's scope before
    /// searching and publishes its newly learned nogoods afterwards.
    /// Installed by the problem builders, never by the solver: the
    /// builder owns the soundness contract that every solve sharing the
    /// scope poses the same constraint problem. Not owned; must outlive
    /// the problem. Thread-safe.
    SharedNogoodPool* nogood_pool = nullptr;
    /// @brief The pool namespace this problem publishes into and seeds
    /// from; see SharedNogoodPool for the identity contract. Empty
    /// disables pooling.
    std::string nogood_scope;
    /// @brief Translation of a domain vertex to its pool key (interned
    /// stable (position, color) id), so literals survive per-depth
    /// vertex re-indexing. Must be pure; called concurrently with
    /// num_threads > 1.
    std::function<SharedNogoodPool::VarKeyId(VertexId)> pool_var_key;
};

/// How the next branching variable is chosen.
enum class VariableOrder {
    /// Fixed vertices first, then per component a static
    /// maximum-cardinality order (most already-ordered neighbors first).
    /// This is the seed backtracker's order.
    kStatic,
    /// Dynamic minimum-remaining-values: branch on the free vertex with
    /// the smallest live domain; ties broken by larger 1-skeleton degree,
    /// then smaller vertex id.
    kMrvDegree,
};

/// How each variable's candidate list is ordered.
enum class ValueOrder {
    /// As given: `candidate_order` when present, else codomain vertex-id
    /// order restricted to matching colors.
    kGiven,
    /// Deterministic shuffle of the given order from `SolverConfig::seed`
    /// (portfolio threads perturb the seed per thread).
    kShuffled,
};

/// @brief Tunable knobs of the search engine.
struct SolverConfig {
    /// @brief Branching-variable strategy (see VariableOrder).
    VariableOrder variable_order = VariableOrder::kMrvDegree;
    /// @brief Candidate-value ordering (see ValueOrder).
    ValueOrder value_order = ValueOrder::kGiven;
    /// @brief Prune unassigned neighbors' domains after every assignment
    /// (requires no extra setup; uses topo::AdjacencyIndex internally).
    bool forward_checking = true;
    /// @brief Backtrack budget per engine run (per thread in portfolio
    /// mode).
    std::size_t max_backtracks = 1000000;
    /// @brief 1 = single-threaded. > 1 races that many searches with
    /// value orders diversified per thread; the first witness wins and
    /// stops the rest through a CancelToken (exec/cancel.h).
    unsigned num_threads = 1;
    /// @brief Base seed for ValueOrder::kShuffled and portfolio
    /// diversification.
    std::uint64_t seed = 0;

    /// @brief Memoize constraint-complex lookups and full image
    /// evaluations during the search (core/eval_cache.h). FC engine
    /// only; the naive baseline always runs uncached.
    /// @note Pure memoization: verdicts and witnesses are identical with
    /// the cache on or off (asserted by tests/solver_cache_test.cpp).
    bool eval_cache = true;
    /// @brief Entry cap of the per-thread image-evaluation memo (each
    /// entry is one (constraint, image fingerprint) -> verdict/mask
    /// result; the cap bounds the memo's memory per solver thread).
    std::size_t eval_cache_capacity = 1 << 18;

    /// @brief Learn nogoods from wipeouts/violations and prune future
    /// branches against them (core/nogood_store.h). FC engine only.
    /// @note Sound pruning only: verdicts and witnesses are identical
    /// with learning on or off; backtrack counts shrink.
    bool nogood_learning = true;
    /// @brief Max nogoods live per search thread (0 disables the store
    /// outright). What happens at the cap depends on `nogood_gc`.
    std::size_t nogood_capacity = 4096;
    /// @brief Collect the nogood store when it fills: retire the least
    /// active nogoods (activity-aged, LBD-style — see NogoodStore's
    /// GcConfig) down to `gc_keep_fraction * nogood_capacity` and keep
    /// learning. Off restores the legacy dead end where a full store
    /// rejects every further conflict and learning silently freezes.
    /// @note Eviction only forgets pruning shortcuts; verdicts and
    /// witnesses are identical either way (toggle-matrix tests).
    bool nogood_gc = true;
    /// @brief Live fraction kept by each collection (clamped inside the
    /// store so a collection always keeps >= 1 and frees >= 1).
    double gc_keep_fraction = 0.5;

    /// @brief Luby-sequence restarts (FC engine only, needs
    /// nogood_learning): abandon the current tree after luby(i) *
    /// restart_unit backtracks and redo the search from the component
    /// root, keeping the nogood store, the pool seeds, and the exchange
    /// cursor — so the retry spends its budget where the learned
    /// conflicts now prune hardest instead of grinding out the first
    /// ordering's tail. Total work stays bounded by max_backtracks
    /// (restarts reschedule the budget, they do not extend it).
    /// @note The restarted search runs the identical deterministic DFS
    /// with a superset of the pruning knowledge, so the first witness
    /// found — and the exhaustion verdict — are the same as without
    /// restarts (asserted across the registry toggle matrix).
    bool restarts = true;
    /// @brief Backtracks in the i-th run = luby(i) * restart_unit
    /// (1, 1, 2, 1, 1, 2, 4, ... times this unit).
    std::size_t restart_unit = 512;

    /// @brief Conflict-directed backjumping (FC engine only): on a dead
    /// end, return straight to the deepest decision in the conflict set
    /// — assembled from the same per-value pruning-constraint provenance
    /// the nogood store records — instead of chronologically re-trying
    /// decisions the conflict provably does not involve.
    /// @note The jump only ever skips subtrees that contain no witness
    /// (every skipped decision is absent from the conflict set, so
    /// re-assigning it cannot resolve the conflict), and it visits the
    /// surviving nodes in the same order as chronological backtracking:
    /// verdicts and witnesses are bit-identical with the knob on or off
    /// (asserted across the registry by tests/solver_cache_test.cpp).
    bool backjumping = true;

    /// @brief Mid-flight nogood exchange between portfolio threads
    /// (active only with num_threads > 1 and nogood_learning on): each
    /// thread publishes every newly recorded nogood to a lock-light
    /// shared log (core/nogood_store.h, LiveNogoodExchange) and imports
    /// the others' at its backtrack/backjump points and at each
    /// component start, so a conflict one thread proves stops costing
    /// every other thread its re-derivation — while they are all still
    /// searching, not at the next solve boundary.
    /// @note Sound for the same reason seeding from the cross-solve pool
    /// is: portfolio threads share every per-solve constant, and a
    /// recorded conflict depends only on those constants and its
    /// literals. Verdicts and witnesses are bit-identical with the
    /// exchange on or off; backtrack counts shrink nondeterministically
    /// (imports race with the search that would have re-proven them).
    bool live_exchange = true;
    /// @brief Import-size cap of the exchange: only nogoods with at most
    /// this many literals are imported (short nogoods fire most often —
    /// the LBD-style quality filter, applied on the cheap import side so
    /// publishing stays a single append). 0 = import everything.
    std::size_t exchange_max_literals = 8;

    /// @brief Diversify the portfolio (the default): threads beyond the
    /// first search with per-thread shuffled value orders, so the race
    /// explores different subtrees. Off = every thread runs the
    /// identical search; the race then only hedges scheduling, but the
    /// reported verdict and witness become deterministic for any thread
    /// count (what the toggle-matrix property tests pin) — and so do
    /// the counters when the live exchange is off (imports race, so
    /// with the exchange on only the verdict/witness stay pinned). The
    /// exchange still helps an undiversified race: a slower replica
    /// skips conflicts a faster one already proved.
    bool diversify_portfolio = true;

    /// @brief Capacity of the carrier -> constraint-complex LRU used by
    /// the *problem builders* (act_problem / lt_approximation_problem),
    /// not by the CSP core itself: it persists across subdivision depths
    /// where per-depth vertex ids do not. 0 disables it.
    std::size_t allowed_lru_capacity = 256;

    /// @brief External cancellation (exec/cancel.h): when set, the
    /// search aborts at its backtrack checkpoints once the token is
    /// cancelled or past its deadline — the same "not a proof" abort as
    /// a spent backtrack budget (`exhausted` comes back false). Not
    /// owned; must outlive the solve. Null = never cancelled. The
    /// engine threads EngineOptions::time_budget_ms through here, and
    /// the portfolio race runs under a child of this token so settling
    /// one race never cancels the caller's scope.
    const exec::CancelToken* cancel = nullptr;

    /// @brief The seed backtracker: static order, no pruning, no caches.
    static SolverConfig naive(std::size_t max_backtracks = 1000000) {
        SolverConfig c;
        c.variable_order = VariableOrder::kStatic;
        c.forward_checking = false;
        c.max_backtracks = max_backtracks;
        c.eval_cache = false;
        c.nogood_learning = false;
        c.backjumping = false;
        c.allowed_lru_capacity = 0;
        return c;
    }

    /// @brief Forward checking + MRV/degree with all memoization layers
    /// on (the default).
    static SolverConfig fast(std::size_t max_backtracks = 1000000) {
        SolverConfig c;
        c.max_backtracks = max_backtracks;
        return c;
    }

    /// @brief `threads` diversified searches racing, forward checking
    /// and the memoization layers on.
    static SolverConfig portfolio(unsigned threads,
                                  std::size_t max_backtracks = 1000000,
                                  std::uint64_t seed = 0) {
        SolverConfig c;
        c.max_backtracks = max_backtracks;
        c.num_threads = threads;
        c.seed = seed;
        return c;
    }
};

/// @brief The additive effort/learning counters of one search.
///
/// Every field is a std::size_t tally, and add() accumulates ALL of
/// them — that is an enforced invariant, not a convention: a
/// static_assert next to add()'s definition (chromatic_csp.cpp) pins
/// sizeof(SearchCounters) to the field count, so adding a counter
/// without extending add() fails the build instead of being silently
/// dropped by some accumulation site (the portfolio merge used to
/// hand-sum eight fields; a ninth would have vanished from merged
/// reports). The populated-struct round-trip in
/// tests/solver_cache_test.cpp covers the sums themselves.
struct SearchCounters {
    /// Number of backtracking steps performed.
    std::size_t backtracks = 0;
    /// Branches skipped because they would have completed a recorded
    /// nogood (not counted as backtracks).
    std::size_t nogood_prunings = 0;
    /// Nogoods recorded by the search itself (pool seeds and exchange
    /// imports are counted separately, never here). With nogood_gc on
    /// this keeps growing past nogood_capacity — the capacity bounds
    /// the *live* set, not the learning (the PR-6 regression tests pin
    /// exactly this).
    std::size_t nogoods_recorded = 0;
    /// Nogoods retired by store collections (SolverConfig::nogood_gc);
    /// 0 when GC is off or the store never filled.
    std::size_t nogoods_evicted = 0;
    /// Luby restarts taken (SolverConfig::restarts): abandoned trees,
    /// not counting the final run that settled the component.
    std::size_t restarts = 0;
    /// Dead ends resolved by a non-chronological jump: decision levels
    /// popped without re-enumerating their remaining values because the
    /// conflict set did not involve them (SolverConfig::backjumping).
    std::size_t backjumps = 0;
    /// Nogoods imported from the problem's SharedNogoodPool at the
    /// start of the search (0 when no pool is wired).
    std::size_t pool_seeded = 0;
    /// Newly learned nogoods published back to the pool.
    std::size_t pool_published = 0;
    /// Nogoods published to the mid-flight portfolio exchange
    /// (SolverConfig::live_exchange; 0 single-threaded).
    std::size_t exchange_published = 0;
    /// Nogoods imported from other portfolio threads mid-search.
    std::size_t exchange_imported = 0;
    /// Constraint-evaluation cache hits (allowed() + image memos
    /// combined); 0 when the cache is off.
    std::size_t eval_cache_hits = 0;
    /// Constraint-evaluation cache misses (including insertions
    /// rejected at capacity).
    std::size_t eval_cache_misses = 0;

    /// Field-wise accumulation of EVERY counter (see the struct note).
    void add(const SearchCounters& other) noexcept;
};

/// @brief Result of the search.
struct ChromaticMapResult {
    /// @brief The witness map, when one was found.
    std::optional<SimplicialMap> map;
    /// @brief True when the search space was exhausted (so no map exists
    /// under the given constraints); false when the backtrack budget ran
    /// out or a portfolio race was stopped early.
    bool exhausted = false;
    /// @brief Search effort and learning tallies. In portfolio mode the
    /// counters report the settling thread (the first to find a witness
    /// or exhaust the space) — one coherent search's account, never a
    /// sum mixing in losing threads' partial work; only when no thread
    /// settles (every budget ran out) are counters summed across
    /// threads as "total budgeted effort".
    SearchCounters counters;

    /// @brief Accumulate another result's counters (every field of
    /// SearchCounters — see its note on the fields-covered guarantee).
    /// `map` and `exhausted` are deliberately untouched: combining
    /// verdicts is the caller's semantic decision, combining tallies is
    /// not.
    void add_counters(const ChromaticMapResult& other) noexcept {
        counters.add(other.counters);
    }
};

/// @brief Search for a satisfying map with the given engine
/// configuration.
ChromaticMapResult solve_chromatic_map(const ChromaticMapProblem& problem,
                                       const SolverConfig& config);

/// @brief Compatibility entry point: the seed backtracker
/// (SolverConfig::naive(max_backtracks)).
ChromaticMapResult solve_chromatic_map(const ChromaticMapProblem& problem,
                                       std::size_t max_backtracks = 1000000);

/// @brief Verify that `map` is a chromatic simplicial map from
/// problem.domain to problem.codomain with every simplex image inside
/// its constraint complex. Returns a diagnostic or "" if valid.
/// @note This is the independent post-check every solve runs on its own
/// witness, which is also what guarantees the memoization layers cannot
/// smuggle an invalid map out of the solver.
std::string check_chromatic_map(const ChromaticMapProblem& problem,
                                const SimplicialMap& map);

}  // namespace gact::core
