// A backtracking solver for chromatic, carrier-preserving simplicial maps.
//
// Both directions of the paper's machinery need witnesses of the form
// "a chromatic simplicial map from A to B such that the image of every
// simplex lies in a prescribed subcomplex":
//  * ACT (Corollary 7.1): eta : Chr^k I -> O with eta(sigma) in
//    Delta(carrier(sigma));
//  * the chromatic simplicial approximation of Theorem 8.4 / Proposition
//    9.1: delta : K(T') -> O approximating a continuous map f, found here
//    by ordering each vertex's candidates by distance to f(vertex).
//
// The solver is a plain constraint search: variables are the vertices of
// A, domains are color-matching vertices of B allowed by the vertex's
// constraint complex, and every simplex of A whose vertices are all
// assigned must map to a simplex of its constraint complex.
#pragma once

#include <functional>
#include <optional>

#include "topology/simplicial_map.h"

namespace gact::core {

using topo::ChromaticComplex;
using topo::Simplex;
using topo::SimplicialComplex;
using topo::SimplicialMap;
using topo::VertexId;

/// Problem statement; see header comment.
struct ChromaticMapProblem {
    const ChromaticComplex* domain = nullptr;
    const ChromaticComplex* codomain = nullptr;

    /// The constraint complex for each simplex of the domain (the image
    /// must be one of its simplices). Must be monotone under faces for the
    /// search to be meaningful (carrier maps are).
    std::function<const SimplicialComplex&(const Simplex&)> allowed;

    /// Pre-assigned vertices (may be empty).
    std::unordered_map<VertexId, VertexId> fixed;

    /// Optional candidate ordering: given a domain vertex, an ordered list
    /// of codomain vertices to try (already color-matching). When absent,
    /// all color-matching vertices allowed at the vertex are tried.
    std::function<std::vector<VertexId>(VertexId)> candidate_order;
};

/// Result of the search.
struct ChromaticMapResult {
    std::optional<SimplicialMap> map;
    /// Number of backtracking steps performed.
    std::size_t backtracks = 0;
    /// True when the search space was exhausted (so no map exists under
    /// the given constraints); false when the backtrack budget ran out.
    bool exhausted = false;
};

/// Search for a satisfying map. `max_backtracks` bounds the search.
ChromaticMapResult solve_chromatic_map(const ChromaticMapProblem& problem,
                                       std::size_t max_backtracks = 1000000);

/// Verify that `map` is a chromatic simplicial map from problem.domain to
/// problem.codomain with every simplex image inside its constraint
/// complex. Returns a diagnostic or "" if valid.
std::string check_chromatic_map(const ChromaticMapProblem& problem,
                                const SimplicialMap& map);

}  // namespace gact::core
