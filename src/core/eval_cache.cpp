#include "core/eval_cache.h"

#include "core/chromatic_csp.h"
#include "util/require.h"

namespace gact::core {

EvalCache::EvalCache(std::size_t num_constraints, std::size_t image_capacity)
    : allowed_by_id_(num_constraints, nullptr),
      image_capacity_(image_capacity) {
    // Sized generously up front: the image memo is the hot map and
    // rehashing mid-search would show up in the profiles this cache
    // exists to flatten.
    image_memo_.reserve(std::min<std::size_t>(image_capacity, 1 << 16));
}

const topo::SimplicialComplex& EvalCache::allowed(
    const ChromaticMapProblem& problem, std::size_t cid,
    const topo::Simplex& sigma) {
    require(cid < allowed_by_id_.size(), "EvalCache: constraint id out of range");
    const topo::SimplicialComplex*& slot = allowed_by_id_[cid];
    if (slot != nullptr) {
        ++stats_.allowed_hits;
        return *slot;
    }
    ++stats_.allowed_misses;
    slot = &problem.allowed(sigma);
    return *slot;
}

bool EvalCache::image_allowed(const ChromaticMapProblem& problem,
                              std::size_t cid, const topo::Simplex& sigma,
                              const std::vector<topo::VertexId>& image) {
    const ImageKeyView view{static_cast<std::uint32_t>(cid), &image};
    const auto it = image_memo_.find(view);
    if (it != image_memo_.end()) {
        ++stats_.image_hits;
        return it->second;
    }
    const topo::Simplex img{std::vector<topo::VertexId>(image)};
    const bool ok = problem.codomain->contains(img) &&
                    allowed(problem, cid, sigma).contains(img);
    if (admit_one()) {
        ++stats_.image_misses;
        image_memo_.emplace(
            ImageKey{static_cast<std::uint32_t>(cid), image}, ok);
    } else {
        ++stats_.image_rejected;
    }
    return ok;
}

bool EvalCache::admit_one() {
    // Both memos share the one capacity so the configured cap bounds
    // the cache's total footprint.
    if (image_memo_.size() + mask_memo_.size() < image_capacity_) {
        return true;
    }
    if (image_capacity_ == 0) return false;  // image memos disabled
    // Full: reset the epoch instead of freezing. The old code refused
    // every insertion from here on, which pinned the memo to whatever
    // the search touched first — all later subtrees ran uncached for
    // the rest of the solve. Dropping everything and refilling with
    // the CURRENT working set costs one warm-up per epoch and keeps
    // memoization live (tests/eval_cache_test.cpp).
    stats_.image_evicted += image_memo_.size() + mask_memo_.size();
    ++stats_.epoch_resets;
    image_memo_.clear();
    mask_memo_.clear();
    return true;
}

const std::vector<std::uint64_t>& EvalCache::allowed_mask(
    const ChromaticMapProblem& problem, std::size_t cid,
    const topo::Simplex& sigma, std::vector<topo::VertexId>& image,
    std::size_t hole_slot, const std::vector<topo::VertexId>& values) {
    const ImageKeyView view{static_cast<std::uint32_t>(cid), &image};
    const auto it = mask_memo_.find(view);
    if (it != mask_memo_.end()) {
        ++stats_.image_hits;
        return it->second;
    }
    const topo::SimplicialComplex& constraint = allowed(problem, cid, sigma);
    std::vector<std::uint64_t> mask((values.size() + 63) / 64, 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
        image[hole_slot] = values[i];
        const topo::Simplex img{std::vector<topo::VertexId>(image)};
        if (problem.codomain->contains(img) && constraint.contains(img)) {
            mask[i / 64] |= std::uint64_t{1} << (i % 64);
        }
    }
    image[hole_slot] = kHole;
    if (admit_one()) {
        ++stats_.image_misses;
        const auto [pos, inserted] = mask_memo_.emplace(
            ImageKey{static_cast<std::uint32_t>(cid), image},
            std::move(mask));
        return pos->second;
    }
    ++stats_.image_rejected;
    mask_scratch_ = std::move(mask);
    return mask_scratch_;
}

AllowedComplexLru::AllowedComplexLru(std::size_t capacity)
    : capacity_(capacity) {}

const topo::SimplicialComplex& AllowedComplexLru::get(
    const topo::Simplex& carrier,
    const std::function<const topo::SimplicialComplex*()>& miss) {
    if (capacity_ == 0) return *miss();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(carrier);
        if (it != entries_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
            return *it->second.complex;
        }
        ++misses_;
    }
    // The miss function may be expensive (carrier-map walk); run it
    // outside the lock. Concurrent misses on the same carrier both
    // compute it, and emplace keeps the first — the pointers are equal
    // anyway (the carrier map is immutable during a solve).
    const topo::SimplicialComplex* complex = miss();
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(carrier);
    if (it != entries_.end()) return *it->second.complex;
    lru_.push_front(carrier);
    entries_.emplace(carrier, Entry{complex, lru_.begin()});
    if (entries_.size() > capacity_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
    }
    return *complex;
}

std::size_t AllowedComplexLru::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t AllowedComplexLru::hits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t AllowedComplexLru::misses() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

}  // namespace gact::core
