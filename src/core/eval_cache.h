// Memoization layers for the chromatic-CSP hot path.
//
// Profiling the forward-checking engine on the L_t (n=2, t=1)
// approximation instance shows the per-node cost is dominated not by the
// search itself but by re-deriving facts that never change within a
// solve:
//  * `problem.allowed(sigma)` re-walks the carrier of sigma (exact
//    rational support computations) and re-looks-up the carrier map at
//    every node that touches the constraint;
//  * the leaf/filter constraint checks re-build and re-hash the same
//    image simplices along every branch of the tree that reproduces the
//    same partial assignment.
// Two caches remove that rework:
//  * EvalCache — a per-search (single-threaded) memo pairing a dense
//    constraint-indexed table of `allowed()` results with a capped hash
//    map of full image evaluations keyed by (constraint id, image
//    fingerprint). Owned by one solver thread; never shared.
//  * AllowedComplexLru — a small thread-safe LRU keyed by *carrier*
//    simplex, shared by the problem builders (core/act_solver.h,
//    core/lt_pipeline.h) across subdivision depths: vertex ids change
//    from Chr^k I to Chr^{k+1} I but carriers live in the base complex,
//    so the carrier -> constraint-complex association survives depth
//    changes.
// Both caches are pure memoization: they never change a verdict or a
// witness, only the wall time (see tests/solver_cache_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "topology/simplicial_complex.h"
#include "util/hash.h"

namespace gact::core {

struct ChromaticMapProblem;  // core/chromatic_csp.h

/// Hit/miss counters of one EvalCache (monotone within a search).
struct EvalCacheStats {
    std::size_t allowed_hits = 0;
    std::size_t allowed_misses = 0;
    std::size_t image_hits = 0;
    std::size_t image_misses = 0;
    /// Image evaluations not memoized (only with image_capacity == 0,
    /// which disables the image memos outright; a full memo now resets
    /// instead of rejecting — see epoch_resets).
    std::size_t image_rejected = 0;
    /// Full-memo epoch resets: a miss at capacity drops BOTH image
    /// memos wholesale and memoizes the new entry. The old behavior —
    /// rejecting every insertion forever once full, pinning whatever
    /// filled the memo first even after the search moved to a subtree
    /// with a disjoint working set — silently degraded the cache to a
    /// pass-through (tests/eval_cache_test.cpp pins the fix).
    std::size_t epoch_resets = 0;
    /// Entries dropped by those resets.
    std::size_t image_evicted = 0;

    std::size_t hits() const noexcept { return allowed_hits + image_hits; }
    std::size_t misses() const noexcept {
        return allowed_misses + image_misses + image_rejected;
    }
};

/// Per-search memoization of constraint evaluations. One instance per
/// solver thread (no locking); constraint ids are the dense ids handed
/// out by topo::AdjacencyIndex for the problem's domain complex.
///
/// @note The cache is only sound within one (problem, fixed-assignment)
/// solve: entries assume `problem.allowed` is pure and stable, which the
/// ChromaticMapProblem contract guarantees.
class EvalCache {
public:
    /// `num_constraints` sizes the dense allowed() table;
    /// `image_capacity` caps the image-evaluation memo (0 disables just
    /// that memo — allowed() results are always memoized).
    EvalCache(std::size_t num_constraints, std::size_t image_capacity);

    /// Memoized `problem.allowed(sigma)` for the constraint with dense
    /// id `cid`. The returned reference is stable for the lifetime of
    /// the problem (it points into the caller's carrier-map storage).
    const topo::SimplicialComplex& allowed(const ChromaticMapProblem& problem,
                                           std::size_t cid,
                                           const topo::Simplex& sigma);

    /// Memoized full constraint evaluation: does the image simplex
    /// spanned by `image` (the assigned values of sigma's vertices, in
    /// sigma's vertex order, possibly unsorted) lie in the codomain and
    /// in sigma's constraint complex? Cache hits skip both the
    /// Simplex normalization (sort + dedup + allocation) and the two
    /// hash-set membership tests.
    bool image_allowed(const ChromaticMapProblem& problem, std::size_t cid,
                       const topo::Simplex& sigma,
                       const std::vector<topo::VertexId>& image);

    /// The hole marker allowed_mask() expects at the unassigned slot
    /// (never a real vertex id).
    static constexpr topo::VertexId kHole = 0xffffffffu;

    /// Memoized forward-checking filter: `image` is sigma's image with
    /// kHole at position `hole_slot` (the single unassigned vertex); the
    /// result has one bit per entry of `values` — set iff substituting
    /// that candidate yields an image inside the codomain and the
    /// constraint complex. One lookup replaces the whole per-candidate
    /// evaluation loop; this is the (vertex, candidate,
    /// neighborhood-image fingerprint) cache of the solve loop.
    ///
    /// `image` is used as scratch during a miss but returned with kHole
    /// restored. The returned reference is valid until the next cache
    /// call.
    const std::vector<std::uint64_t>& allowed_mask(
        const ChromaticMapProblem& problem, std::size_t cid,
        const topo::Simplex& sigma, std::vector<topo::VertexId>& image,
        std::size_t hole_slot, const std::vector<topo::VertexId>& values);

    const EvalCacheStats& stats() const noexcept { return stats_; }

private:
    struct ImageKey {
        std::uint32_t cid = 0;
        std::vector<topo::VertexId> image;
    };
    /// Borrowed-key view for heterogeneous lookup: the hot path probes
    /// the memo with the caller's scratch buffer, allocating only on
    /// insertion.
    struct ImageKeyView {
        std::uint32_t cid = 0;
        const std::vector<topo::VertexId>* image = nullptr;
    };
    struct ImageKeyHash {
        using is_transparent = void;
        static std::size_t mix(std::uint32_t cid,
                               const std::vector<topo::VertexId>& image)
            noexcept {
            std::size_t seed = hash_range(image);
            hash_combine(seed, cid);
            return seed;
        }
        std::size_t operator()(const ImageKey& k) const noexcept {
            return mix(k.cid, k.image);
        }
        std::size_t operator()(const ImageKeyView& k) const noexcept {
            return mix(k.cid, *k.image);
        }
    };
    struct ImageKeyEq {
        using is_transparent = void;
        bool operator()(const ImageKey& a, const ImageKey& b) const noexcept {
            return a.cid == b.cid && a.image == b.image;
        }
        bool operator()(const ImageKeyView& a, const ImageKey& b) const
            noexcept {
            return a.cid == b.cid && *a.image == b.image;
        }
        bool operator()(const ImageKey& a, const ImageKeyView& b) const
            noexcept {
            return a.cid == b.cid && a.image == *b.image;
        }
    };

    /// Make room for one image/mask memo insertion: true = insert. At
    /// capacity this resets the epoch (clears both memos) rather than
    /// refusing — the refill costs a few thousand re-evaluations once,
    /// the freeze cost every evaluation from then on. Callers only hold
    /// memo references up to the next cache call (the documented
    /// allowed_mask contract), so the reset invalidates nothing live.
    bool admit_one();

    std::vector<const topo::SimplicialComplex*> allowed_by_id_;
    std::unordered_map<ImageKey, bool, ImageKeyHash, ImageKeyEq> image_memo_;
    std::unordered_map<ImageKey, std::vector<std::uint64_t>, ImageKeyHash,
                       ImageKeyEq>
        mask_memo_;
    std::vector<std::uint64_t> mask_scratch_;  // result slot at capacity
    std::size_t image_capacity_ = 0;
    EvalCacheStats stats_;
};

/// A small thread-safe LRU from carrier simplices (base-complex ids) to
/// their constraint complexes. Shared by act_problem /
/// lt_approximation_problem closures so repeated carriers — within one
/// depth and across subdivision depths — skip the carrier-map walk.
///
/// @note Thread safety matters because ChromaticMapProblem::allowed is
/// called concurrently by portfolio solver threads; the mutex is only
/// contended in that mode.
class AllowedComplexLru {
public:
    /// `capacity` == 0 disables caching (get() always calls `miss`).
    explicit AllowedComplexLru(std::size_t capacity);

    /// The cached complex for `carrier`, or `miss()` (memoized) on a
    /// cache miss. `miss` must return a pointer stable for the lifetime
    /// of the underlying problem (carrier maps store complexes by
    /// value and are immutable during a solve).
    const topo::SimplicialComplex& get(
        const topo::Simplex& carrier,
        const std::function<const topo::SimplicialComplex*()>& miss);

    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t size() const;
    std::size_t hits() const;
    std::size_t misses() const;

private:
    using LruList = std::list<topo::Simplex>;

    struct Entry {
        const topo::SimplicialComplex* complex = nullptr;
        LruList::iterator lru_pos;
    };

    mutable std::mutex mutex_;
    std::size_t capacity_ = 0;
    LruList lru_;  // front = most recently used
    std::unordered_map<topo::Simplex, Entry> entries_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

}  // namespace gact::core
