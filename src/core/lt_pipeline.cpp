#include "core/lt_pipeline.h"

#include <algorithm>
#include <map>

#include "engine/general_route.h"
#include "util/require.h"

namespace gact::core {

bool lt_stable_rule(int n, int t, const SubdividedComplex& cx,
                    const Simplex& s) {
    if (cx.depth() < 2) return false;
    for (VertexId v : s.vertices()) {
        if (cx.carrier(v).dimension() < n - t) return false;
    }
    return true;
}

std::size_t ring_of_stable_facet(const TerminatingSubdivision& tsub,
                                 const Simplex& global_facet) {
    // A facet belongs to ring m when it first appears in Sigma_{m+2}; we
    // recover this from the stage complexes by locating its vertices.
    for (std::size_t k = 2; k < tsub.stages(); ++k) {
        const SubdividedComplex& cx = tsub.complex_at(k);
        bool all_found = true;
        std::vector<VertexId> stage_verts;
        for (VertexId v : global_facet.vertices()) {
            const auto sv = cx.find_vertex(
                tsub.stable_position(v), tsub.stable_complex().color(v));
            if (!sv.has_value()) {
                all_found = false;
                break;
            }
            stage_verts.push_back(*sv);
        }
        if (all_found &&
            tsub.stable_at(k).contains(Simplex(stage_verts))) {
            return k - 2;
        }
    }
    throw precondition_error("ring_of_stable_facet: facet is not stable");
}

bool point_in_l(const tasks::AffineTask& lt, const BaryPoint& x) {
    for (const Simplex& f : lt.l_complex.facets()) {
        if (topo::point_in_simplex(x, lt.subdivision.positions_of(f))) {
            return true;
        }
    }
    return false;
}

std::vector<Simplex> l_boundary_edges(const tasks::AffineTask& lt) {
    // Boundary edges: faces of exactly one facet of L.
    std::map<Simplex, int> facet_count;
    for (const Simplex& f : lt.l_complex.facets()) {
        for (const Simplex& e : f.boundary_faces()) ++facet_count[e];
    }
    std::vector<Simplex> out;
    for (const auto& [e, count] : facet_count) {
        if (count == 1) out.push_back(e);
    }
    return out;
}

namespace {

/// Coordinate difference b - a over the base vertex ids 0..n.
std::vector<Rational> coord_diff(const BaryPoint& b, const BaryPoint& a,
                                 int n) {
    std::vector<Rational> out;
    out.reserve(n + 1);
    for (int i = 0; i <= n; ++i) {
        out.push_back(b.coord(static_cast<VertexId>(i)) -
                      a.coord(static_cast<VertexId>(i)));
    }
    return out;
}

/// Intersection of the ray c + s*(x - c) with the segment [a, b]:
/// solutions (s, u) of c + s d = a + u e with u in [0,1]; collinear cases
/// yield the endpoints. Returns candidate s values with their points.
struct RayHit {
    Rational s;
    BaryPoint point;
};

void ray_segment_hits(const BaryPoint& c, const BaryPoint& x,
                      const BaryPoint& a, const BaryPoint& b, int n,
                      std::vector<RayHit>& out) {
    const std::vector<Rational> d = coord_diff(x, c, n);
    const std::vector<Rational> e = coord_diff(b, a, n);
    const std::vector<Rational> rhs = coord_diff(a, c, n);

    // Find a non-singular 2x2 subsystem s*d - u*e = rhs.
    for (int i = 0; i <= n; ++i) {
        for (int j = i + 1; j <= n; ++j) {
            const Rational det = d[i] * (-e[j]) - (-e[i]) * d[j];
            if (det.is_zero()) continue;
            const Rational s =
                (rhs[i] * (-e[j]) - (-e[i]) * rhs[j]) / det;
            const Rational u = (d[i] * rhs[j] - rhs[i] * d[j]) / det;
            // Verify the remaining coordinates.
            for (int m = 0; m <= n; ++m) {
                if (!(s * d[m] - u * e[m] == rhs[m])) return;  // no solution
            }
            if (u < Rational(0) || u > Rational(1)) return;
            if (s <= Rational(0)) return;
            std::vector<BaryPoint> pts = {a, b};
            std::vector<Rational> weights = {Rational(1) - u, u};
            out.push_back(RayHit{s, BaryPoint::combination(pts, weights)});
            return;
        }
    }
    // All 2x2 systems singular: d parallel to e (or degenerate). The
    // collinear case contributes the endpoints if they lie on the ray.
    for (const BaryPoint& endpoint : {a, b}) {
        const std::vector<Rational> g = coord_diff(endpoint, c, n);
        // endpoint = c + s*d needs g = s*d componentwise.
        Rational s;
        bool found_s = false;
        bool ok = true;
        for (int m = 0; m <= n; ++m) {
            if (d[m].is_zero()) {
                if (!g[m].is_zero()) ok = false;
            } else if (!found_s) {
                s = g[m] / d[m];
                found_s = true;
            } else if (!(g[m] == s * d[m])) {
                ok = false;
            }
        }
        if (ok && found_s && s > Rational(0)) {
            out.push_back(RayHit{s, endpoint});
        }
    }
}

}  // namespace

BaryPoint radial_projection_l1(const tasks::AffineTask& lt,
                               const BaryPoint& x) {
    const int n = lt.subdivision.base().dimension();
    require(n == 2, "radial_projection_l1: implemented for n = 2");
    if (point_in_l(lt, x)) return x;

    // Boundary edges of |L_1| as geometric segments.
    std::vector<std::pair<BaryPoint, BaryPoint>> segments;
    for (const Simplex& e : l_boundary_edges(lt)) {
        const auto pos = lt.subdivision.positions_of(e);
        segments.emplace_back(pos[0], pos[1]);
    }

    // Identify the corner whose radial ray reaches x before R_0: the one
    // for which every boundary hit is at parameter s >= 1.
    std::optional<BaryPoint> best;
    for (int corner = 0; corner <= n; ++corner) {
        const BaryPoint c = BaryPoint::vertex(static_cast<VertexId>(corner));
        if (x == c) continue;
        std::vector<RayHit> hits;
        for (const auto& [a, b] : segments) {
            ray_segment_hits(c, x, a, b, n, hits);
        }
        if (hits.empty()) continue;
        const auto min_hit = std::min_element(
            hits.begin(), hits.end(),
            [](const RayHit& p, const RayHit& q) { return p.s < q.s; });
        if (min_hit->s >= Rational(1)) {
            require(!best.has_value(),
                    "radial_projection_l1: ambiguous corner for " +
                        x.to_string());
            best = min_hit->point;
        }
    }
    require(best.has_value(),
            "radial_projection_l1: no corner projects " + x.to_string());
    return *best;
}

ChromaticMapProblem lt_approximation_problem(const tasks::AffineTask& task,
                                             const TerminatingSubdivision& tsub,
                                             bool fix_identity,
                                             LtGuidance guidance,
                                             AllowedComplexLru* lru,
                                             SharedNogoodPool* nogood_pool,
                                             const std::string& nogood_scope_tag) {
    const ChromaticComplex& k_complex = tsub.stable_complex();
    ChromaticMapProblem problem;
    problem.domain = &k_complex;
    problem.codomain = &task.task.outputs;
    if (nogood_pool != nullptr) {
        // Cross-solve learning scope: every parameter that shapes the
        // CSP is in the name — including the caller's tag for the rule
        // that drove the subdivision — so two solves share a scope
        // exactly when they pose the same problem (the model is
        // deliberately absent — it only enters at the admissibility
        // stage, after the CSP).
        problem.nogood_pool = nogood_pool;
        problem.nogood_scope =
            task.task.name + "|gen|rule=" + nogood_scope_tag +
            "|stages=" + std::to_string(tsub.stages()) +
            "|fix=" + (fix_identity ? "1" : "0") +
            "|guide=" + std::to_string(static_cast<int>(guidance));
        problem.pool_var_key = [&tsub, nogood_pool](VertexId v) {
            return nogood_pool->intern(
                tsub.stable_position(v), tsub.stable_complex().color(v));
        };
    }
    const tasks::Task& inner = task.task;
    problem.allowed = [&inner, &tsub, lru](const Simplex& sigma)
        -> const SimplicialComplex& {
        const Simplex carrier = tsub.stable_carrier(sigma);
        if (lru == nullptr) return inner.delta.at(carrier);
        return lru->get(carrier,
                        [&]() { return &inner.delta.at(carrier); });
    };

    if (fix_identity) {
        // Identity on the stable vertices that are vertices of L itself
        // (the R_0 part of K(T)).
        for (VertexId v : k_complex.vertex_ids()) {
            const auto lv = task.subdivision.find_vertex(
                tsub.stable_position(v), k_complex.color(v));
            if (lv.has_value() && task.l_complex.contains_vertex(*lv)) {
                problem.fixed[v] = *lv;
            }
        }
    }

    if (guidance != LtGuidance::kNone) {
        // Candidate order: L vertices of the right color, nearest (to the
        // radial projection of the vertex when requested, else to the
        // vertex itself) first.
        const bool radial = guidance == LtGuidance::kRadial;
        problem.candidate_order = [&task, &tsub, radial](VertexId v) {
            const topo::Color color = tsub.stable_complex().color(v);
            BaryPoint target = tsub.stable_position(v);
            if (radial) target = radial_projection_l1(task, target);
            std::vector<std::pair<Rational, VertexId>> scored;
            for (VertexId w : task.task.outputs.vertex_ids()) {
                if (task.task.outputs.color(w) != color) continue;
                scored.emplace_back(
                    target.l1_distance(task.subdivision.position(w)), w);
            }
            std::sort(scored.begin(), scored.end());
            std::vector<VertexId> order;
            order.reserve(scored.size());
            for (const auto& [dist, w] : scored) order.push_back(w);
            return order;
        };
    }
    return problem;
}

// Deprecated shim; defining it should not warn about itself.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

LtPipeline build_lt_pipeline(int n, int t, std::size_t extra_stages,
                             const SolverConfig& config) {
    // Thin compatibility shim: the construction itself lives in the
    // engine's general route (engine/general_route.h), where
    // lt_stable_rule is one StableRule instance among others. The L_t
    // convention "C_0 = s, C_1 = Chr s, C_2 = Chr^2 s, then the rule"
    // maps to 2 + extra_stages uniform advances because the rule is inert
    // below depth 2.
    LtPipeline out;
    out.task = tasks::t_resilience_task(n, t);

    const bool have_radial = (n == 2 && t == 1);
    engine::GeneralWitness witness = engine::build_general_witness(
        out.task, engine::LtStableRule(n, t), 2 + extra_stages,
        /*fix_identity=*/true,
        have_radial ? LtGuidance::kRadial : LtGuidance::kNearest, config);

    require(!witness.tsub.stable_complex().is_empty(),
            "build_lt_pipeline: no stable simplices; raise extra_stages");
    require(witness.delta.has_value(),
            "build_lt_pipeline: no chromatic approximation found; "
            "a finer stable refinement is needed");
    out.tsub = std::move(witness.tsub);
    out.delta = *witness.delta;
    out.csp_backtracks = witness.counters.backtracks;
    return out;
}

#pragma GCC diagnostic pop

std::optional<Landing> find_landing(const TerminatingSubdivision& tsub,
                                    const iis::Run& run,
                                    std::size_t max_round) {
    const int n = tsub.base().dimension();
    std::vector<VertexId> inputs;
    for (int i = 0; i <= n; ++i) inputs.push_back(static_cast<VertexId>(i));

    // The landing simplex must live inside the face spanned by the run's
    // participants: condition (2) of Definition 4.1 constrains outputs to
    // Delta(omega ∩ chi^{-1}(part(r))), and condition (b) of Theorem 6.1
    // delivers delta(tau) in Delta(carrier(tau)) — so tau's carrier must
    // be a face of the participation face. The candidates are the
    // maximal stable simplices of K(T) restricted to that face.
    std::vector<VertexId> face_verts;
    for (gact::ProcessId p : run.participants().members()) {
        face_verts.push_back(static_cast<VertexId>(p));
    }
    const Simplex face{std::move(face_verts)};
    std::vector<Simplex> candidates;
    for (const Simplex& tau :
         tsub.stable_complex().complex().simplices_of_dimension(
             face.dimension())) {
        if (tsub.stable_carrier(tau).is_face_of(face)) {
            candidates.push_back(tau);
        }
    }

    for (std::size_t k = 1; k <= max_round; ++k) {
        const auto points = iis::run_simplex_positions(run, k, inputs);
        for (const Simplex& tau : candidates) {
            if (tsub.stable_simplex_contains(tau, points)) {
                return Landing{k, tau,
                               std::max(k, tsub.stable_since(tau))};
            }
        }
    }
    return std::nullopt;
}

AdmissibilityReport check_admissibility(const TerminatingSubdivision& tsub,
                                        const std::vector<iis::Run>& runs,
                                        std::size_t max_round) {
    AdmissibilityReport report;
    report.admissible = true;
    for (const iis::Run& run : runs) {
        ++report.runs_checked;
        const auto landing = find_landing(tsub, run, max_round);
        if (!landing.has_value()) {
            report.admissible = false;
            report.failures.push_back(run);
        } else {
            report.max_landing_round =
                std::max(report.max_landing_round, landing->round);
        }
    }
    return report;
}

}  // namespace gact::core
