#include "core/lt_pipeline.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>

#include "engine/general_route.h"
#include "util/require.h"

namespace gact::core {

bool lt_stable_rule(int n, int t, const SubdividedComplex& cx,
                    const Simplex& s) {
    if (cx.depth() < 2) return false;
    for (VertexId v : s.vertices()) {
        if (cx.carrier(v).dimension() < n - t) return false;
    }
    return true;
}

std::size_t ring_of_stable_facet(const TerminatingSubdivision& tsub,
                                 const Simplex& global_facet) {
    // A facet belongs to ring m when it first appears in Sigma_{m+2}; we
    // recover this from the stage complexes by locating its vertices.
    for (std::size_t k = 2; k < tsub.stages(); ++k) {
        const SubdividedComplex& cx = tsub.complex_at(k);
        bool all_found = true;
        std::vector<VertexId> stage_verts;
        for (VertexId v : global_facet.vertices()) {
            const auto sv = cx.find_vertex(
                tsub.stable_position(v), tsub.stable_complex().color(v));
            if (!sv.has_value()) {
                all_found = false;
                break;
            }
            stage_verts.push_back(*sv);
        }
        if (all_found &&
            tsub.stable_at(k).contains(Simplex(stage_verts))) {
            return k - 2;
        }
    }
    throw precondition_error("ring_of_stable_facet: facet is not stable");
}

bool point_in_l(const tasks::AffineTask& lt, const BaryPoint& x) {
    for (const Simplex& f : lt.l_complex.facets()) {
        if (topo::point_in_simplex(x, lt.subdivision.positions_of(f))) {
            return true;
        }
    }
    return false;
}

std::vector<Simplex> l_boundary_edges(const tasks::AffineTask& lt) {
    // Boundary edges: faces of exactly one facet of L.
    std::map<Simplex, int> facet_count;
    for (const Simplex& f : lt.l_complex.facets()) {
        for (const Simplex& e : f.boundary_faces()) ++facet_count[e];
    }
    std::vector<Simplex> out;
    for (const auto& [e, count] : facet_count) {
        if (count == 1) out.push_back(e);
    }
    return out;
}

namespace {

/// Coordinate difference b - a over the base vertex ids 0..n.
std::vector<Rational> coord_diff(const BaryPoint& b, const BaryPoint& a,
                                 int n) {
    std::vector<Rational> out;
    out.reserve(n + 1);
    for (int i = 0; i <= n; ++i) {
        out.push_back(b.coord(static_cast<VertexId>(i)) -
                      a.coord(static_cast<VertexId>(i)));
    }
    return out;
}

/// Intersection of the ray c + s*(x - c) with the segment [a, b]:
/// solutions (s, u) of c + s d = a + u e with u in [0,1]; collinear cases
/// yield the endpoints. Returns candidate s values with their points.
struct RayHit {
    Rational s;
    BaryPoint point;
};

void ray_segment_hits(const BaryPoint& c, const BaryPoint& x,
                      const BaryPoint& a, const BaryPoint& b, int n,
                      std::vector<RayHit>& out) {
    const std::vector<Rational> d = coord_diff(x, c, n);
    const std::vector<Rational> e = coord_diff(b, a, n);
    const std::vector<Rational> rhs = coord_diff(a, c, n);

    // Find a non-singular 2x2 subsystem s*d - u*e = rhs.
    for (int i = 0; i <= n; ++i) {
        for (int j = i + 1; j <= n; ++j) {
            const Rational det = d[i] * (-e[j]) - (-e[i]) * d[j];
            if (det.is_zero()) continue;
            const Rational s =
                (rhs[i] * (-e[j]) - (-e[i]) * rhs[j]) / det;
            const Rational u = (d[i] * rhs[j] - rhs[i] * d[j]) / det;
            // Verify the remaining coordinates.
            for (int m = 0; m <= n; ++m) {
                if (!(s * d[m] - u * e[m] == rhs[m])) return;  // no solution
            }
            if (u < Rational(0) || u > Rational(1)) return;
            if (s <= Rational(0)) return;
            std::vector<BaryPoint> pts = {a, b};
            std::vector<Rational> weights = {Rational(1) - u, u};
            out.push_back(RayHit{s, BaryPoint::combination(pts, weights)});
            return;
        }
    }
    // All 2x2 systems singular: d parallel to e (or degenerate). The
    // collinear case contributes the endpoints if they lie on the ray.
    for (const BaryPoint& endpoint : {a, b}) {
        const std::vector<Rational> g = coord_diff(endpoint, c, n);
        // endpoint = c + s*d needs g = s*d componentwise.
        Rational s;
        bool found_s = false;
        bool ok = true;
        for (int m = 0; m <= n; ++m) {
            if (d[m].is_zero()) {
                if (!g[m].is_zero()) ok = false;
            } else if (!found_s) {
                s = g[m] / d[m];
                found_s = true;
            } else if (!(g[m] == s * d[m])) {
                ok = false;
            }
        }
        if (ok && found_s && s > Rational(0)) {
            out.push_back(RayHit{s, endpoint});
        }
    }
}

// Shared-denominator headroom for the integer candidate-distance fast
// path below: an l1 distance accumulates at most 2(n + 1) terms of
// magnitude <= den, so capping den well inside int64 keeps every sum
// exact. Returns lcm(a, b), or 0 when it would exceed the cap.
constexpr std::int64_t kGuideDenCap = std::int64_t{1} << 40;

std::int64_t lcm_capped(std::int64_t a, std::int64_t b) {
    const std::int64_t g = std::gcd(a, b);
    if (a / g > kGuideDenCap / b) return 0;
    return (a / g) * b;
}

}  // namespace

BaryPoint radial_projection_l1(const tasks::AffineTask& lt,
                               const BaryPoint& x) {
    const int n = lt.subdivision.base().dimension();
    require(n == 2, "radial_projection_l1: implemented for n = 2");
    if (point_in_l(lt, x)) return x;

    // Boundary edges of |L_1| as geometric segments.
    std::vector<std::pair<BaryPoint, BaryPoint>> segments;
    for (const Simplex& e : l_boundary_edges(lt)) {
        const auto pos = lt.subdivision.positions_of(e);
        segments.emplace_back(pos[0], pos[1]);
    }

    // Identify the corner whose radial ray reaches x before R_0: the one
    // for which every boundary hit is at parameter s >= 1.
    std::optional<BaryPoint> best;
    for (int corner = 0; corner <= n; ++corner) {
        const BaryPoint c = BaryPoint::vertex(static_cast<VertexId>(corner));
        if (x == c) continue;
        std::vector<RayHit> hits;
        for (const auto& [a, b] : segments) {
            ray_segment_hits(c, x, a, b, n, hits);
        }
        if (hits.empty()) continue;
        const auto min_hit = std::min_element(
            hits.begin(), hits.end(),
            [](const RayHit& p, const RayHit& q) { return p.s < q.s; });
        if (min_hit->s >= Rational(1)) {
            require(!best.has_value(),
                    "radial_projection_l1: ambiguous corner for " +
                        x.to_string());
            best = min_hit->point;
        }
    }
    require(best.has_value(),
            "radial_projection_l1: no corner projects " + x.to_string());
    return *best;
}

ChromaticMapProblem lt_approximation_problem(const tasks::AffineTask& task,
                                             const TerminatingSubdivision& tsub,
                                             bool fix_identity,
                                             LtGuidance guidance,
                                             AllowedComplexLru* lru,
                                             SharedNogoodPool* nogood_pool,
                                             const std::string& nogood_scope_tag) {
    const ChromaticComplex& k_complex = tsub.stable_complex();
    ChromaticMapProblem problem;
    problem.domain = &k_complex;
    problem.codomain = &task.task.outputs;
    if (nogood_pool != nullptr) {
        // Cross-solve learning scope: every parameter that shapes the
        // CSP is in the name — including the caller's tag for the rule
        // that drove the subdivision — so two solves share a scope
        // exactly when they pose the same problem (the model is
        // deliberately absent — it only enters at the admissibility
        // stage, after the CSP).
        problem.nogood_pool = nogood_pool;
        problem.nogood_scope =
            task.task.name + "|gen|rule=" + nogood_scope_tag +
            "|stages=" + std::to_string(tsub.stages()) +
            "|fix=" + (fix_identity ? "1" : "0") +
            "|guide=" + std::to_string(static_cast<int>(guidance));
        problem.pool_var_key = [&tsub, nogood_pool](VertexId v) {
            return nogood_pool->intern(
                tsub.stable_position(v), tsub.stable_complex().color(v));
        };
    }
    const tasks::Task& inner = task.task;
    problem.allowed = [&inner, &tsub, lru](const Simplex& sigma)
        -> const SimplicialComplex& {
        const Simplex carrier = tsub.stable_carrier(sigma);
        if (lru == nullptr) return inner.delta.at(carrier);
        return lru->get(carrier,
                        [&]() { return &inner.delta.at(carrier); });
    };

    if (fix_identity) {
        // Identity on the stable vertices that are vertices of L itself
        // (the R_0 part of K(T)).
        for (VertexId v : k_complex.vertex_ids()) {
            const auto lv = task.subdivision.find_vertex(
                tsub.stable_position(v), k_complex.color(v));
            if (lv.has_value() && task.l_complex.contains_vertex(*lv)) {
                problem.fixed[v] = *lv;
            }
        }
    }

    if (guidance != LtGuidance::kNone) {
        // Candidate order: L vertices of the right color, nearest (to the
        // radial projection of the vertex when requested, else to the
        // vertex itself) first. The per-color candidate lists (with their
        // positions) are precomputed here: vertex_ids() walks the whole
        // output complex, and the closure runs once per domain vertex —
        // tens of thousands of times on the heavy registry scenarios.
        // The distance computation additionally rescales every candidate
        // coordinate to one shared denominator, so each closure call
        // measures distances in pure integer arithmetic. At a common
        // denominator the scaled distances order exactly like the
        // rationals they stand for (ties broken by vertex id either way);
        // if an lcm would overflow the headroom, the closure falls back
        // to exact Rational distances — same order, just slower.
        const bool radial = guidance == LtGuidance::kRadial;
        struct Guide {
            std::map<topo::Color,
                     std::vector<std::pair<BaryPoint, VertexId>>> exact;
            // Entry-for-entry with `exact`: the same coordinates as
            // numerators over the shared denominator `den`.
            std::map<topo::Color,
                     std::vector<std::vector<
                         std::pair<VertexId, std::int64_t>>>> scaled;
            std::int64_t den = 1;
            bool use_scaled = true;
        };
        auto guide = std::make_shared<Guide>();
        for (VertexId w : task.task.outputs.vertex_ids()) {
            guide->exact[task.task.outputs.color(w)].emplace_back(
                task.subdivision.position(w), w);
        }
        for (const auto& [color, cands] : guide->exact) {
            for (const auto& [pos, w] : cands) {
                for (const auto& [bv, r] : pos.coords()) {
                    guide->den = lcm_capped(guide->den, r.den());
                    if (guide->den == 0) break;
                }
                if (guide->den == 0) break;
            }
            if (guide->den == 0) break;
        }
        if (guide->den == 0) {
            guide->use_scaled = false;
            guide->den = 1;
        } else {
            for (const auto& [color, cands] : guide->exact) {
                auto& lists = guide->scaled[color];
                lists.reserve(cands.size());
                for (const auto& [pos, w] : cands) {
                    std::vector<std::pair<VertexId, std::int64_t>> sc;
                    sc.reserve(pos.coords().size());
                    for (const auto& [bv, r] : pos.coords()) {
                        sc.emplace_back(bv,
                                        r.num() * (guide->den / r.den()));
                    }
                    lists.push_back(std::move(sc));
                }
            }
        }
        problem.candidate_order = [&task, &tsub, radial,
                                   guide](VertexId v) {
            const topo::Color color = tsub.stable_complex().color(v);
            BaryPoint target = tsub.stable_position(v);
            if (radial) target = radial_projection_l1(task, target);
            std::vector<VertexId> order;
            const auto it = guide->exact.find(color);
            if (it == guide->exact.end()) return order;
            const auto& cands = it->second;
            order.reserve(cands.size());
            if (guide->use_scaled) {
                // Extend the shared denominator to cover this target.
                std::int64_t dv = guide->den;
                for (const auto& [bv, r] : target.coords()) {
                    dv = lcm_capped(dv, r.den());
                    if (dv == 0) break;
                }
                if (dv != 0) {
                    const std::int64_t f = dv / guide->den;
                    std::vector<std::pair<VertexId, std::int64_t>> tgt;
                    tgt.reserve(target.coords().size());
                    for (const auto& [bv, r] : target.coords()) {
                        tgt.emplace_back(bv, r.num() * (dv / r.den()));
                    }
                    const auto& scaled = guide->scaled.find(color)->second;
                    std::vector<std::pair<std::int64_t, VertexId>> scored;
                    scored.reserve(cands.size());
                    for (std::size_t i = 0; i < cands.size(); ++i) {
                        const auto& cc = scaled[i];
                        std::int64_t dist = 0;
                        std::size_t a = 0, b = 0;
                        while (a < cc.size() && b < tgt.size()) {
                            if (cc[a].first == tgt[b].first) {
                                const std::int64_t d =
                                    cc[a].second * f - tgt[b].second;
                                dist += d < 0 ? -d : d;
                                ++a;
                                ++b;
                            } else if (cc[a].first < tgt[b].first) {
                                dist += cc[a].second * f;
                                ++a;
                            } else {
                                dist += tgt[b].second;
                                ++b;
                            }
                        }
                        for (; a < cc.size(); ++a) dist += cc[a].second * f;
                        for (; b < tgt.size(); ++b) dist += tgt[b].second;
                        scored.emplace_back(dist, cands[i].second);
                    }
                    std::sort(scored.begin(), scored.end());
                    for (const auto& [dist, w] : scored) order.push_back(w);
                    return order;
                }
            }
            std::vector<std::pair<Rational, VertexId>> scored;
            scored.reserve(cands.size());
            for (const auto& [pos, w] : cands) {
                scored.emplace_back(target.l1_distance(pos), w);
            }
            std::sort(scored.begin(), scored.end());
            for (const auto& [dist, w] : scored) order.push_back(w);
            return order;
        };
    }
    return problem;
}

// Deprecated shim; defining it should not warn about itself.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

LtPipeline build_lt_pipeline(int n, int t, std::size_t extra_stages,
                             const SolverConfig& config) {
    // Thin compatibility shim: the construction itself lives in the
    // engine's general route (engine/general_route.h), where
    // lt_stable_rule is one StableRule instance among others. The L_t
    // convention "C_0 = s, C_1 = Chr s, C_2 = Chr^2 s, then the rule"
    // maps to 2 + extra_stages uniform advances because the rule is inert
    // below depth 2.
    LtPipeline out;
    out.task = tasks::t_resilience_task(n, t);

    const bool have_radial = (n == 2 && t == 1);
    engine::GeneralWitness witness = engine::build_general_witness(
        out.task, engine::LtStableRule(n, t), 2 + extra_stages,
        /*fix_identity=*/true,
        have_radial ? LtGuidance::kRadial : LtGuidance::kNearest, config);

    require(!witness.tsub.stable_complex().is_empty(),
            "build_lt_pipeline: no stable simplices; raise extra_stages");
    require(witness.delta.has_value(),
            "build_lt_pipeline: no chromatic approximation found; "
            "a finer stable refinement is needed");
    out.tsub = std::move(witness.tsub);
    out.delta = *witness.delta;
    out.csp_backtracks = witness.counters.backtracks;
    return out;
}

#pragma GCC diagnostic pop

std::optional<Landing> find_landing(const TerminatingSubdivision& tsub,
                                    const iis::Run& run,
                                    std::size_t max_round) {
    const int n = tsub.base().dimension();
    std::vector<VertexId> inputs;
    for (int i = 0; i <= n; ++i) inputs.push_back(static_cast<VertexId>(i));

    // The landing simplex must live inside the face spanned by the run's
    // participants: condition (2) of Definition 4.1 constrains outputs to
    // Delta(omega ∩ chi^{-1}(part(r))), and condition (b) of Theorem 6.1
    // delivers delta(tau) in Delta(carrier(tau)) — so tau's carrier must
    // be a face of the participation face. The candidates are the
    // maximal stable simplices of K(T) restricted to that face.
    std::vector<VertexId> face_verts;
    for (gact::ProcessId p : run.participants().members()) {
        face_verts.push_back(static_cast<VertexId>(p));
    }
    const Simplex face{std::move(face_verts)};
    std::vector<Simplex> candidates;
    for (const Simplex& tau :
         tsub.stable_complex().complex().simplices_of_dimension(
             face.dimension())) {
        if (tsub.stable_carrier(tau).is_face_of(face)) {
            candidates.push_back(tau);
        }
    }

    for (std::size_t k = 1; k <= max_round; ++k) {
        const auto points = iis::run_simplex_positions(run, k, inputs);
        for (const Simplex& tau : candidates) {
            if (tsub.stable_simplex_contains(tau, points)) {
                return Landing{k, tau,
                               std::max(k, tsub.stable_since(tau))};
            }
        }
    }
    return std::nullopt;
}

AdmissibilityReport check_admissibility(const TerminatingSubdivision& tsub,
                                        const std::vector<iis::Run>& runs,
                                        std::size_t max_round) {
    AdmissibilityReport report;
    report.admissible = true;
    for (const iis::Run& run : runs) {
        ++report.runs_checked;
        const auto landing = find_landing(tsub, run, max_round);
        if (!landing.has_value()) {
            report.admissible = false;
            report.failures.push_back(run);
        } else {
            report.max_landing_round =
                std::max(report.max_landing_round, landing->round);
        }
    }
    return report;
}

}  // namespace gact::core
