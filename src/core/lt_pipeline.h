// The paper's headline application (Proposition 9.2): L_t is solvable in
// the t-resilient model, by a purely topological construction.
//
// The pipeline follows Section 9.2 exactly:
//  1. regions: R~_m is the union of the facets of Chr^{m+2} s having no
//     vertex on an (n-t-1)-face; R_0 = |L_t| and R_m peels off one more
//     ring toward the forbidden skeleton;
//  2. terminating subdivision: C_0 = s, C_1 = Chr s, C_2 = Chr^2 s, and
//     from stage 2 on every simplex whose vertices all avoid the
//     forbidden skeleton is terminated; K(T) accumulates the rings;
//  3. the continuous map f: identity on R_0, radial projection away from
//     the skeleton onto the boundary of R_0 elsewhere (implemented
//     exactly, in rational arithmetic, for n = 2, t = 1 — the paper's
//     illustrated case);
//  4. the chromatic simplicial approximation delta : K(T) -> L_t of
//     Proposition 9.1, found by the CSP solver with candidates ordered by
//     distance to f (Theorem 8.4 guarantees existence);
//  5. admissibility of T for Res_t, checked against enumerated compact
//     run families (landing condition of Theorem 6.1).
// Protocol extraction and Definition 4.1 verification live in
// src/protocol/gact_protocol.h.
#pragma once

#include "core/chromatic_csp.h"
#include "core/eval_cache.h"
#include "core/terminating_subdivision.h"
#include "iis/projection.h"
#include "iis/run_enumeration.h"
#include "tasks/standard_tasks.h"

namespace gact::core {

/// The constructed witness for Proposition 9.2.
struct LtPipeline {
    tasks::AffineTask task;        // the affine task L_t
    TerminatingSubdivision tsub;   // T, materialized to the given stage
    SimplicialMap delta;           // K(T) -> L_t (global ids -> Chr^2 ids)
    std::size_t csp_backtracks = 0;
};

/// Build T and delta for L_t on n+1 processes, materializing
/// 2 + extra_stages subdivision stages. Throws if the approximation CSP
/// fails (Theorem 8.4 rules this out for the cases the library targets).
/// `config` selects the CSP engine for the approximation step.
///
/// Deprecated: a thin shim over the engine's general route
/// (engine/general_route.h) with the L_t stable rule. Prefer
/// engine::Engine::solve on a general Scenario, which adds the
/// run-family admissibility stage and the unified report; use
/// engine::build_general_witness directly when only the construction is
/// needed.
[[deprecated(
    "use gact::engine::Engine (engine/engine.h) on a general Scenario, "
    "or engine::build_general_witness for the raw construction")]]
LtPipeline build_lt_pipeline(int n, int t, std::size_t extra_stages,
                             const SolverConfig& config = SolverConfig::fast());

/// How lt_approximation_problem orders each vertex's candidates.
enum class LtGuidance {
    kNone,     ///< no candidate ordering (solver default order)
    kNearest,  ///< nearest L vertex to the domain vertex itself
    kRadial,   ///< nearest to the radial projection (n = 2, t = 1 only)
};

/// The Proposition 9.1 approximation CSP for a materialized terminating
/// subdivision: domain K(T), codomain the task's outputs, carrier
/// constraints from Delta, optional identity fixing on the stable
/// vertices lying in L, and optional geometric candidate guidance. The
/// returned problem's closures reference `task` and `tsub`, which must
/// outlive it — and `lru`, when non-null: carrier lookups
/// (tsub.stable_carrier + the Delta walk) are then memoized through it
/// (core/eval_cache.h).
///
/// When `nogood_pool` is non-null, the problem carries the cross-solve
/// learning hooks (core/nogood_store.h): the scope names the task plus
/// every problem-shaping parameter (stages, identity fixing, guidance,
/// and `nogood_scope_tag` — the caller's name for whatever else shaped
/// `tsub`, e.g. the StableRule that drove it), so re-solves of the same
/// construction — including scenarios that differ only in their
/// *model*, which never enters the CSP — share learned conflicts;
/// literal variables travel as the pool's stable (position, color)
/// keys, which K(T)'s global registry makes exact. Callers who
/// materialized `tsub` by any means other than task + stages MUST
/// encode that in the tag: two different stabilization rules over the
/// same task pose different CSPs and must not share a scope.
ChromaticMapProblem lt_approximation_problem(
    const tasks::AffineTask& task, const TerminatingSubdivision& tsub,
    bool fix_identity, LtGuidance guidance, AllowedComplexLru* lru = nullptr,
    SharedNogoodPool* nogood_pool = nullptr,
    const std::string& nogood_scope_tag = "");

/// The stabilization rule of the pipeline: from depth 2 on, a simplex is
/// stable when every vertex carrier has dimension >= n - t.
bool lt_stable_rule(int n, int t, const SubdividedComplex& cx,
                    const Simplex& s);

/// The ring index of a stable facet: 0 for R_0 (stable at depth 2), m for
/// the facets first stabilized at depth m+2.
std::size_t ring_of_stable_facet(const TerminatingSubdivision& tsub,
                                 const Simplex& global_facet);

/// Exact radial projection f of Section 9.2 for n = 2, t = 1: identity on
/// |L_1|, and radial projection away from the nearest corner onto the
/// boundary of |L_1| outside. Requires x in |s| and not a corner.
BaryPoint radial_projection_l1(const tasks::AffineTask& lt,
                               const BaryPoint& x);

/// Whether `x` lies in the realization of the task's complex L.
bool point_in_l(const tasks::AffineTask& lt, const BaryPoint& x);

/// The boundary edges of |L| (faces of exactly one facet of L), used by
/// the radial projection and by the figure bench.
std::vector<Simplex> l_boundary_edges(const tasks::AffineTask& lt);

/// Admissibility of T for a set of runs (Theorem 6.1 condition (a)):
/// every run's simplex chain must enter the realization of some stable
/// facet by round `max_round`.
struct AdmissibilityReport {
    bool admissible = false;
    std::size_t runs_checked = 0;
    std::size_t max_landing_round = 0;
    std::vector<iis::Run> failures;
};

AdmissibilityReport check_admissibility(const TerminatingSubdivision& tsub,
                                        const std::vector<iis::Run>& runs,
                                        std::size_t max_round);

/// The landing data of one run: the first round k at which the run
/// simplex sigma_k lies in a stable simplex of the participants' face,
/// that simplex (global ids), and the round from which outputs may fire —
/// no earlier than the simplex's stabilization stage (see
/// TerminatingSubdivision::stable_since).
struct Landing {
    std::size_t round = 0;
    Simplex stable_facet;
    std::size_t output_round = 0;
};

/// Landing of a single run, if it happens by max_round.
std::optional<Landing> find_landing(const TerminatingSubdivision& tsub,
                                    const iis::Run& run,
                                    std::size_t max_round);

}  // namespace gact::core
