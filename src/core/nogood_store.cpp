#include "core/nogood_store.h"

#include <algorithm>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/hash.h"
#include "util/require.h"

namespace gact::core {

namespace {

std::size_t nogood_hash(const std::vector<NogoodLiteral>& literals) {
    std::size_t seed = literals.size();
    for (const NogoodLiteral& l : literals) {
        gact::hash_combine(seed, l.var);
        gact::hash_combine(seed, l.value);
    }
    return seed;
}

std::size_t portable_hash(
    const std::vector<SharedNogoodPool::PortableLiteral>& literals) {
    std::size_t seed = literals.size();
    for (const SharedNogoodPool::PortableLiteral& l : literals) {
        gact::hash_combine(seed, l.var_key);
        gact::hash_combine(seed, l.value);
    }
    return seed;
}

}  // namespace

NogoodStore::NogoodStore(std::size_t capacity) : capacity_(capacity) {}

NogoodStore::NogoodStore(std::size_t capacity, GcConfig gc)
    : capacity_(capacity), gc_(gc) {}

NogoodStore::NogoodStore(std::size_t capacity, Hasher hasher)
    : capacity_(capacity), hasher_(std::move(hasher)) {}

bool NogoodStore::record(std::vector<NogoodLiteral> literals) {
    if (literals.empty() || capacity_ == 0) return false;
    std::sort(literals.begin(), literals.end());
    literals.erase(std::unique(literals.begin(), literals.end()),
                   literals.end());
    // Dedup inside the hash bucket by comparing the canonical literal
    // vectors: hash equality is a hint, never the verdict. (The previous
    // hash-only dedup silently dropped a genuinely new nogood on every
    // collision — sound, since the store only prunes, but an invisible
    // learning loss that corrupted the recorded/pruning statistics.)
    // Dedup runs before the capacity gate so a re-derived conflict at a
    // full store counts as the duplicate it is, not as learning loss —
    // and the probe is a find(), never operator[], so rejected records
    // leave no empty bucket behind (the capacity bound must bound the
    // whole store, including its index). Retired ids left the buckets
    // at collection time, so a re-proved forgotten conflict is
    // re-learned here, not mistaken for a duplicate of a dead entry.
    const std::size_t h =
        hasher_ ? hasher_(literals) : nogood_hash(literals);
    const auto bucket_it = by_hash_.find(h);
    if (bucket_it != by_hash_.end()) {
        for (const std::uint32_t id : bucket_it->second) {
            if (nogoods_[id] == literals) {
                ++rejected_as_duplicate_;
                return false;
            }
        }
    }
    if (live_ >= capacity_) {
        if (!gc_.enabled) {
            // The legacy dead end: a full store refuses every new
            // conflict, silently freezing all learning for the rest of
            // the search. Kept (observable, opt-out) for callers that
            // pin it; the solver runs with GC on.
            ++rejected_at_capacity_;
            return false;
        }
        collect();
    }

    const auto id = static_cast<std::uint32_t>(nogoods_.size());
    by_hash_[h].push_back(id);
    for (const NogoodLiteral& l : literals) {
        watch_[literal_key(l.var, l.value)].push_back(id);
    }
    nogoods_.push_back(std::move(literals));
    // Born with one halving's worth of grace so a fresh nogood is not
    // the collector's first pick before it ever gets a chance to fire.
    activity_.push_back(2);
    retired_.push_back(0);
    ++live_;
    return true;
}

void NogoodStore::collect() {
    // Keep target, clamped so a collection always keeps at least one
    // nogood and frees at least one slot whatever the fraction says.
    const auto raw_target = static_cast<std::size_t>(
        static_cast<double>(capacity_) * gc_.keep_fraction);
    const std::size_t target =
        std::min(std::max<std::size_t>(raw_target, 1), capacity_ - 1);
    if (live_ <= target) return;

    std::vector<std::uint32_t> live_ids;
    live_ids.reserve(live_);
    for (std::uint32_t id = 0; id < nogoods_.size(); ++id) {
        if (retired_[id] == 0) live_ids.push_back(id);
    }
    // Eviction priority: least active first; among equals the widest
    // nogood goes first (a narrow nogood prunes more per probe), then
    // the oldest. The full sort keeps the policy deterministic, which
    // the bit-identical toggle-matrix tests lean on indirectly (any
    // sound pruning set preserves verdicts, but determinism keeps runs
    // reproducible for debugging).
    std::sort(live_ids.begin(), live_ids.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  if (activity_[a] != activity_[b]) {
                      return activity_[a] < activity_[b];
                  }
                  if (nogoods_[a].size() != nogoods_[b].size()) {
                      return nogoods_[a].size() > nogoods_[b].size();
                  }
                  return a < b;
              });
    const std::size_t n_evict = live_ids.size() - target;
    for (std::size_t i = 0; i < n_evict; ++i) {
        const std::uint32_t id = live_ids[i];
        // Logical retirement only: the deque slot and literal buffer
        // stay until reclaim(), preserving references a searcher or
        // the exchange path may still hold (PR-5 contract).
        retired_[id] = 1;
        pending_reclaim_.push_back(id);
    }
    live_ -= n_evict;
    evicted_ += n_evict;
    ++gc_runs_;

    // Drop retired ids from both indices so they stop blocking and
    // stop shadowing re-learned duplicates. O(live + buckets) — paid
    // once per (capacity - target) admissions.
    const auto sweep = [this](auto& index) {
        for (auto it = index.begin(); it != index.end();) {
            auto& ids = it->second;
            ids.erase(std::remove_if(ids.begin(), ids.end(),
                                     [this](std::uint32_t id) {
                                         return retired_[id] != 0;
                                     }),
                      ids.end());
            // Empty buckets go too: the capacity bound covers the
            // index, and record()'s dedup probe must stay a find().
            it = ids.empty() ? index.erase(it) : std::next(it);
        }
    };
    sweep(watch_);
    sweep(by_hash_);

    // Age every survivor: activity is a recency-weighted count, so a
    // nogood that stops firing decays toward eviction.
    for (std::uint32_t& a : activity_) a >>= 1;
}

std::size_t NogoodStore::reclaim() {
    const std::size_t freed = pending_reclaim_.size();
    for (const std::uint32_t id : pending_reclaim_) {
        // Free the buffer but keep the (now empty) deque slot: ids must
        // stay stable for the exchange/pool bookkeeping.
        std::vector<NogoodLiteral>().swap(nogoods_[id]);
    }
    pending_reclaim_.clear();
    return freed;
}

LiveNogoodExchange::LiveNogoodExchange(std::size_t capacity)
    : capacity_(capacity),
      segments_((capacity + kSegmentSize - 1) / kSegmentSize) {
    for (std::atomic<Segment*>& s : segments_) {
        s.store(nullptr, std::memory_order_relaxed);
    }
}

LiveNogoodExchange::~LiveNogoodExchange() {
    for (std::atomic<Segment*>& s : segments_) {
        delete s.load(std::memory_order_relaxed);
    }
}

bool LiveNogoodExchange::publish(unsigned source,
                                 std::vector<NogoodLiteral> literals) {
    if (literals.empty() || capacity_ == 0) return false;
    const std::lock_guard<std::mutex> lock(write_mutex_);
    const std::size_t i = count_.load(std::memory_order_relaxed);
    if (i >= capacity_) {
        rejected_at_capacity_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    std::atomic<Segment*>& slot = segments_[i >> kSegmentShift];
    Segment* segment = slot.load(std::memory_order_relaxed);
    if (segment == nullptr) {
        segment = new Segment();
        slot.store(segment, std::memory_order_release);
    }
    Entry& e = segment->entries[i & (kSegmentSize - 1)];
    e.source = source;
    e.literals = std::move(literals);
    // The release store is the publication point: a reader that
    // acquire-loads count_ >= i + 1 sees the fully built entry and the
    // segment pointer (both sequenced before this store).
    count_.store(i + 1, std::memory_order_release);
    return true;
}

SharedNogoodPool::SharedNogoodPool(std::size_t capacity_per_scope)
    : capacity_(capacity_per_scope) {}

SharedNogoodPool::VarKeyId SharedNogoodPool::intern(
    const topo::BaryPoint& position, topo::Color color) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return intern_locked(position, color);
}

SharedNogoodPool::VarKeyId SharedNogoodPool::intern_locked(
    const topo::BaryPoint& position, topo::Color color) {
    const auto key = std::make_pair(position, color);
    const auto it = key_index_.find(key);
    if (it != key_index_.end()) return it->second;
    const auto id = static_cast<VarKeyId>(key_index_.size());
    key_index_.emplace(key, id);
    return id;
}

bool SharedNogoodPool::publish(const std::string& scope,
                               std::vector<PortableLiteral> literals) {
    if (literals.empty() || capacity_ == 0) return false;
    std::sort(literals.begin(), literals.end());
    literals.erase(std::unique(literals.begin(), literals.end()),
                   literals.end());

    const std::lock_guard<std::mutex> lock(mutex_);
    return publish_locked(scope, std::move(literals));
}

bool SharedNogoodPool::publish_locked(const std::string& scope,
                                      std::vector<PortableLiteral> literals) {
    Scope& s = scopes_[scope];
    const std::size_t h = portable_hash(literals);
    const auto bucket_it = s.by_hash.find(h);
    if (bucket_it != s.by_hash.end()) {
        for (const std::uint32_t id : bucket_it->second) {
            if (s.nogoods[id] == literals) {
                ++rejected_as_duplicate_;
                return false;
            }
        }
    }
    if (s.nogoods.size() >= capacity_) {
        ++rejected_at_capacity_;
        return false;
    }
    s.by_hash[h].push_back(static_cast<std::uint32_t>(s.nogoods.size()));
    s.nogoods.push_back(std::move(literals));
    ++published_;
    return true;
}

void SharedNogoodPool::for_each(
    const std::string& scope,
    const std::function<void(const std::vector<PortableLiteral>&)>& fn)
    const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = scopes_.find(scope);
    if (it == scopes_.end()) return;
    for (const std::vector<PortableLiteral>& n : it->second.nogoods) fn(n);
}

std::size_t SharedNogoodPool::size(const std::string& scope) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = scopes_.find(scope);
    return it == scopes_.end() ? 0 : it->second.nogoods.size();
}

std::size_t SharedNogoodPool::published() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return published_;
}

std::size_t SharedNogoodPool::rejected_as_duplicate() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return rejected_as_duplicate_;
}

std::size_t SharedNogoodPool::rejected_at_capacity() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return rejected_at_capacity_;
}

// --- persistence (format spec: docs/ARCHITECTURE.md) -----------------------
//
//   gact-nogood-pool v1
//   keys <count>
//   key <id> <color> <ncoords> <vertex>:<num>/<den> ...
//   scopes <count>
//   scope <nogood-count> <scope string to end of line>
//   n <nliterals> <var_key>:<value> ...
//   end
//
// Rationals are written num/den exactly (never floats); key ids are
// file-local and re-interned on load, so a load composes with live
// interning and with previously loaded files.

namespace {

constexpr const char* kPoolMagic = "gact-nogood-pool v1";

/// Strict full-token u32 parse: the ENTIRE string must be digits (a
/// corrupted "1x" must be a rejection, not a silent 1 — a mangled
/// literal loaded as the wrong nogood would be unsound pruning, the one
/// failure mode persistence must never introduce).
bool parse_u32(const std::string& s, std::uint32_t& out) {
    if (s.empty()) return false;
    try {
        std::size_t pos = 0;
        const unsigned long v = std::stoul(s, &pos);
        if (pos != s.size() || v > 0xffffffffUL) return false;
        out = static_cast<std::uint32_t>(v);
    } catch (const std::exception&) {
        return false;
    }
    return true;
}

/// Strict full-token i64 parse (for rational components; sign allowed).
bool parse_i64(const std::string& s, std::int64_t& out) {
    if (s.empty()) return false;
    try {
        std::size_t pos = 0;
        const long long v = std::stoll(s, &pos);
        if (pos != s.size()) return false;
        out = v;
    } catch (const std::exception&) {
        return false;
    }
    return true;
}

/// Parse "a:b" with both halves full non-negative integers.
bool parse_pair_u32(const std::string& token, std::uint32_t& a,
                    std::uint32_t& b) {
    const auto colon = token.find(':');
    if (colon == std::string::npos) return false;
    return parse_u32(token.substr(0, colon), a) &&
           parse_u32(token.substr(colon + 1), b);
}

/// Parse "<vertex>:<num>/<den>" into one barycentric coordinate.
bool parse_coord(const std::string& token, topo::VertexId& vertex,
                 gact::Rational& weight) {
    const auto colon = token.find(':');
    if (colon == std::string::npos) return false;
    const auto slash = token.find('/', colon);
    if (slash == std::string::npos) return false;
    std::uint32_t v = 0;
    std::int64_t num = 0;
    std::int64_t den = 0;
    if (!parse_u32(token.substr(0, colon), v) ||
        !parse_i64(token.substr(colon + 1, slash - colon - 1), num) ||
        !parse_i64(token.substr(slash + 1), den)) {
        return false;
    }
    try {
        weight = gact::Rational(num, den);  // throws on den == 0
    } catch (const std::exception&) {
        return false;
    }
    vertex = static_cast<topo::VertexId>(v);
    return true;
}

/// Reject trailing tokens on a fully parsed line (an undercounting
/// corrupted "<n>" prefix must not silently drop literals — dropping
/// literals makes a nogood strictly stronger, which is unsound).
bool line_exhausted(std::istringstream& in) {
    std::string extra;
    return !(in >> extra);
}

}  // namespace

/// The staged contents of one parsed pool file: file-local key ids plus
/// the nogoods that reference them. Produced lock-free by parse_file(),
/// committed under the lock by merge_parsed_locked().
struct SharedNogoodPool::ParsedFile {
    struct FileNogood {
        std::string scope;
        std::vector<PortableLiteral> literals;  // file-local var keys
    };
    std::unordered_map<VarKeyId, std::pair<topo::BaryPoint, topo::Color>>
        keys;
    std::vector<FileNogood> nogoods;
};

std::string SharedNogoodPool::serialize_locked(std::string& contents) const {
    for (const auto& [scope, s] : scopes_) {
        (void)s;
        if (scope.find('\n') != std::string::npos) {
            return "scope contains a newline and cannot be serialized";
        }
    }
    std::ostringstream out;
    out << kPoolMagic << "\n";
    out << "keys " << key_index_.size() << "\n";
    for (const auto& [key, id] : key_index_) {
        out << "key " << id << " " << key.second << " "
            << key.first.coords().size();
        for (const auto& [vertex, weight] : key.first.coords()) {
            out << " " << vertex << ":" << weight.num() << "/"
                << weight.den();
        }
        out << "\n";
    }
    out << "scopes " << scopes_.size() << "\n";
    for (const auto& [scope, s] : scopes_) {
        out << "scope " << s.nogoods.size() << " " << scope << "\n";
        for (const std::vector<PortableLiteral>& nogood : s.nogoods) {
            out << "n " << nogood.size();
            for (const PortableLiteral& l : nogood) {
                out << " " << l.var_key << ":" << l.value;
            }
            out << "\n";
        }
    }
    out << "end\n";
    contents = out.str();
    return "";
}

std::string SharedNogoodPool::save(const std::string& path) {
    // Merge-on-save: fold in whatever another process persisted to this
    // file since we loaded it (or never did), so alternating writers
    // union their learning rather than clobber it. The parse diagnostic
    // is deliberately dropped — a missing file is the ordinary
    // first-save cold start, and a corrupt one holds no learning worth
    // keeping, so both simply get overwritten below. The file is read
    // and parsed BEFORE taking the lock: a live server snapshots its
    // pool while solves keep publishing, and those publishes must only
    // ever wait on in-memory work, never on the disk.
    ParsedFile existing;
    const std::string parse_err = parse_file(path, existing);

    std::string contents;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (parse_err.empty()) merge_parsed_locked(existing);
        const std::string err = serialize_locked(contents);
        if (!err.empty()) return err;
    }
    // The lock is dropped: `contents` is a consistent cut of the pool
    // (publishes landing after it simply make the next snapshot).

    // Write-then-rename so the save is atomic: a crash or a full disk
    // mid-write must never destroy the previously persisted learning —
    // the file either keeps its old contents or becomes the new pool
    // whole (load() depends on whole files; see its all-or-nothing
    // contract). The temp name is per-process AND per-call so neither
    // two fleet processes nor two threads of one process (a snapshot
    // timer racing a shutdown drain) can interleave writes into one
    // tmp; the renames themselves are atomic and last-writer-wins with
    // a whole file either way.
    static std::atomic<unsigned> save_counter{0};
    const std::string tmp_path =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(save_counter.fetch_add(1));
    {
        std::ofstream file(tmp_path, std::ios::trunc);
        if (!file) return "cannot open '" + tmp_path + "' for writing";
        file << contents;
        file.flush();
        if (!file) {
            std::remove(tmp_path.c_str());
            return "write to '" + tmp_path + "' failed";
        }
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return "cannot rename '" + tmp_path + "' to '" + path + "'";
    }
    return "";
}

std::string SharedNogoodPool::load(const std::string& path) {
    // Same split as save(): parse off the lock, commit under it.
    ParsedFile parsed;
    const std::string err = parse_file(path, parsed);
    if (!err.empty()) return err;
    const std::lock_guard<std::mutex> lock(mutex_);
    merge_parsed_locked(parsed);
    return "";
}

std::string SharedNogoodPool::parse_file(const std::string& path,
                                         ParsedFile& out) {
    std::ifstream file(path);
    if (!file) return "cannot open '" + path + "'";

    // Parse and validate the whole file WITHOUT touching the pool, so
    // any failure below leaves it exactly as it was.
    using FileNogood = ParsedFile::FileNogood;
    auto& file_keys = out.keys;
    auto& file_nogoods = out.nogoods;

    std::string line;
    std::size_t line_no = 0;
    const auto fail = [&](const std::string& what) {
        return "pool file '" + path + "' line " + std::to_string(line_no) +
               ": " + what;
    };
    const auto next_line = [&](const char* expect) -> std::string {
        if (!std::getline(file, line)) {
            line.clear();
            return std::string("truncated file (expected ") + expect + ")";
        }
        ++line_no;
        return "";
    };

    std::string err = next_line("header");
    if (!err.empty()) return fail(err);
    if (line != kPoolMagic) {
        return fail("unsupported header '" + line + "' (expected '" +
                    kPoolMagic + "')");
    }

    try {
        std::string word;
        std::size_t key_count = 0;
        {
            err = next_line("keys <count>");
            if (!err.empty()) return fail(err);
            std::istringstream in(line);
            if (!(in >> word >> key_count) || word != "keys" ||
                !line_exhausted(in)) {
                return fail("expected 'keys <count>'");
            }
        }
        for (std::size_t i = 0; i < key_count; ++i) {
            err = next_line("key line");
            if (!err.empty()) return fail(err);
            std::istringstream in(line);
            std::uint32_t id = 0;
            std::uint32_t color = 0;
            std::size_t ncoords = 0;
            if (!(in >> word >> id >> color >> ncoords) || word != "key") {
                return fail("expected 'key <id> <color> <ncoords> ...'");
            }
            std::vector<std::pair<topo::VertexId, Rational>> coords;
            coords.reserve(ncoords);
            for (std::size_t c = 0; c < ncoords; ++c) {
                std::string token;
                if (!(in >> token)) return fail("missing coordinate");
                topo::VertexId vertex = 0;
                Rational weight;
                if (!parse_coord(token, vertex, weight)) {
                    return fail("bad coordinate '" + token + "'");
                }
                coords.emplace_back(vertex, weight);
            }
            if (!line_exhausted(in)) {
                return fail("trailing tokens on key line");
            }
            // The BaryPoint constructor revalidates the invariants
            // (positive weights summing to 1) and throws on violation;
            // the catch below turns that into a rejection.
            if (!file_keys
                     .emplace(id, std::make_pair(
                                      topo::BaryPoint(std::move(coords)),
                                      static_cast<topo::Color>(color)))
                     .second) {
                return fail("duplicate key id " + std::to_string(id));
            }
        }
        std::size_t scope_count = 0;
        {
            err = next_line("scopes <count>");
            if (!err.empty()) return fail(err);
            std::istringstream in(line);
            if (!(in >> word >> scope_count) || word != "scopes" ||
                !line_exhausted(in)) {
                return fail("expected 'scopes <count>'");
            }
        }
        for (std::size_t sidx = 0; sidx < scope_count; ++sidx) {
            err = next_line("scope line");
            if (!err.empty()) return fail(err);
            std::size_t nogood_count = 0;
            std::string scope;
            {
                std::istringstream in(line);
                if (!(in >> word >> nogood_count) || word != "scope") {
                    return fail("expected 'scope <count> <name>'");
                }
                std::getline(in, scope);
                if (!scope.empty() && scope.front() == ' ') {
                    scope.erase(scope.begin());
                }
                if (scope.empty()) return fail("empty scope name");
            }
            for (std::size_t g = 0; g < nogood_count; ++g) {
                err = next_line("nogood line");
                if (!err.empty()) return fail(err);
                std::istringstream in(line);
                std::size_t nliterals = 0;
                if (!(in >> word >> nliterals) || word != "n") {
                    return fail("expected 'n <count> <var>:<value> ...'");
                }
                FileNogood nogood;
                nogood.scope = scope;
                nogood.literals.reserve(nliterals);
                for (std::size_t l = 0; l < nliterals; ++l) {
                    std::string token;
                    if (!(in >> token)) return fail("missing literal");
                    std::uint32_t var_key = 0;
                    std::uint32_t value = 0;
                    if (!parse_pair_u32(token, var_key, value)) {
                        return fail("bad literal '" + token + "'");
                    }
                    if (file_keys.count(var_key) == 0) {
                        return fail("literal references unknown key id " +
                                    std::to_string(var_key));
                    }
                    nogood.literals.push_back(
                        {var_key, static_cast<topo::VertexId>(value)});
                }
                if (nogood.literals.empty()) {
                    return fail("empty nogood");
                }
                if (!line_exhausted(in)) {
                    return fail("trailing literals beyond the declared "
                                "count");
                }
                file_nogoods.push_back(std::move(nogood));
            }
        }
        err = next_line("'end' trailer");
        if (!err.empty()) return fail(err);
        if (line != "end") return fail("expected 'end' trailer");
    } catch (const std::exception& e) {
        return fail(std::string("invalid geometry: ") + e.what());
    }
    return "";
}

void SharedNogoodPool::merge_parsed_locked(const ParsedFile& parsed) {
    // Commit a parsed file: re-intern every file key (ids are
    // file-local), remap the literals, and publish through the ordinary
    // dedup + capacity path. The caller holds mutex_.
    std::unordered_map<VarKeyId, VarKeyId> remap;
    remap.reserve(parsed.keys.size());
    for (const auto& [file_id, key] : parsed.keys) {
        remap.emplace(file_id, intern_locked(key.first, key.second));
    }
    for (const ParsedFile::FileNogood& nogood : parsed.nogoods) {
        std::vector<PortableLiteral> literals;
        literals.reserve(nogood.literals.size());
        for (const PortableLiteral& l : nogood.literals) {
            literals.push_back({remap.at(l.var_key), l.value});
        }
        std::sort(literals.begin(), literals.end());
        literals.erase(std::unique(literals.begin(), literals.end()),
                       literals.end());
        publish_locked(nogood.scope, std::move(literals));
    }
}

}  // namespace gact::core
