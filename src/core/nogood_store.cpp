#include "core/nogood_store.h"

#include <algorithm>

#include "util/hash.h"

namespace gact::core {

namespace {

std::size_t nogood_hash(const std::vector<NogoodLiteral>& literals) {
    std::size_t seed = literals.size();
    for (const NogoodLiteral& l : literals) {
        gact::hash_combine(seed, l.var);
        gact::hash_combine(seed, l.value);
    }
    return seed;
}

}  // namespace

NogoodStore::NogoodStore(std::size_t capacity) : capacity_(capacity) {}

bool NogoodStore::record(std::vector<NogoodLiteral> literals) {
    if (literals.empty() || capacity_ == 0) return false;
    if (nogoods_.size() >= capacity_) {
        ++rejected_at_capacity_;
        return false;
    }
    std::sort(literals.begin(), literals.end());
    literals.erase(std::unique(literals.begin(), literals.end()),
                   literals.end());
    // Hash-only dedup: a collision drops a genuinely new nogood, which
    // is always sound (the store only ever prunes, never decides).
    if (!seen_hashes_.insert(nogood_hash(literals)).second) return false;

    const auto id = static_cast<std::uint32_t>(nogoods_.size());
    for (const NogoodLiteral& l : literals) {
        watch_[literal_key(l.var, l.value)].push_back(id);
    }
    nogoods_.push_back(std::move(literals));
    return true;
}

}  // namespace gact::core
