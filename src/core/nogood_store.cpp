#include "core/nogood_store.h"

#include <algorithm>

#include "util/hash.h"

namespace gact::core {

namespace {

std::size_t nogood_hash(const std::vector<NogoodLiteral>& literals) {
    std::size_t seed = literals.size();
    for (const NogoodLiteral& l : literals) {
        gact::hash_combine(seed, l.var);
        gact::hash_combine(seed, l.value);
    }
    return seed;
}

std::size_t portable_hash(
    const std::vector<SharedNogoodPool::PortableLiteral>& literals) {
    std::size_t seed = literals.size();
    for (const SharedNogoodPool::PortableLiteral& l : literals) {
        gact::hash_combine(seed, l.var_key);
        gact::hash_combine(seed, l.value);
    }
    return seed;
}

}  // namespace

NogoodStore::NogoodStore(std::size_t capacity) : capacity_(capacity) {}

NogoodStore::NogoodStore(std::size_t capacity, Hasher hasher)
    : capacity_(capacity), hasher_(std::move(hasher)) {}

bool NogoodStore::record(std::vector<NogoodLiteral> literals) {
    if (literals.empty() || capacity_ == 0) return false;
    std::sort(literals.begin(), literals.end());
    literals.erase(std::unique(literals.begin(), literals.end()),
                   literals.end());
    // Dedup inside the hash bucket by comparing the canonical literal
    // vectors: hash equality is a hint, never the verdict. (The previous
    // hash-only dedup silently dropped a genuinely new nogood on every
    // collision — sound, since the store only prunes, but an invisible
    // learning loss that corrupted the recorded/pruning statistics.)
    // Dedup runs before the capacity gate so a re-derived conflict at a
    // full store counts as the duplicate it is, not as learning loss —
    // and the probe is a find(), never operator[], so rejected records
    // leave no empty bucket behind (the capacity bound must bound the
    // whole store, including its index).
    const std::size_t h =
        hasher_ ? hasher_(literals) : nogood_hash(literals);
    const auto bucket_it = by_hash_.find(h);
    if (bucket_it != by_hash_.end()) {
        for (const std::uint32_t id : bucket_it->second) {
            if (nogoods_[id] == literals) {
                ++rejected_as_duplicate_;
                return false;
            }
        }
    }
    if (nogoods_.size() >= capacity_) {
        ++rejected_at_capacity_;
        return false;
    }

    const auto id = static_cast<std::uint32_t>(nogoods_.size());
    by_hash_[h].push_back(id);
    for (const NogoodLiteral& l : literals) {
        watch_[literal_key(l.var, l.value)].push_back(id);
    }
    nogoods_.push_back(std::move(literals));
    return true;
}

SharedNogoodPool::SharedNogoodPool(std::size_t capacity_per_scope)
    : capacity_(capacity_per_scope) {}

SharedNogoodPool::VarKeyId SharedNogoodPool::intern(
    const topo::BaryPoint& position, topo::Color color) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto key = std::make_pair(position, color);
    const auto it = key_index_.find(key);
    if (it != key_index_.end()) return it->second;
    const auto id = static_cast<VarKeyId>(key_index_.size());
    key_index_.emplace(key, id);
    return id;
}

bool SharedNogoodPool::publish(const std::string& scope,
                               std::vector<PortableLiteral> literals) {
    if (literals.empty() || capacity_ == 0) return false;
    std::sort(literals.begin(), literals.end());
    literals.erase(std::unique(literals.begin(), literals.end()),
                   literals.end());

    const std::lock_guard<std::mutex> lock(mutex_);
    Scope& s = scopes_[scope];
    const std::size_t h = portable_hash(literals);
    const auto bucket_it = s.by_hash.find(h);
    if (bucket_it != s.by_hash.end()) {
        for (const std::uint32_t id : bucket_it->second) {
            if (s.nogoods[id] == literals) {
                ++rejected_as_duplicate_;
                return false;
            }
        }
    }
    if (s.nogoods.size() >= capacity_) {
        ++rejected_at_capacity_;
        return false;
    }
    s.by_hash[h].push_back(static_cast<std::uint32_t>(s.nogoods.size()));
    s.nogoods.push_back(std::move(literals));
    ++published_;
    return true;
}

void SharedNogoodPool::for_each(
    const std::string& scope,
    const std::function<void(const std::vector<PortableLiteral>&)>& fn)
    const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = scopes_.find(scope);
    if (it == scopes_.end()) return;
    for (const std::vector<PortableLiteral>& n : it->second.nogoods) fn(n);
}

std::size_t SharedNogoodPool::size(const std::string& scope) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = scopes_.find(scope);
    return it == scopes_.end() ? 0 : it->second.nogoods.size();
}

std::size_t SharedNogoodPool::published() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return published_;
}

std::size_t SharedNogoodPool::rejected_as_duplicate() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return rejected_as_duplicate_;
}

std::size_t SharedNogoodPool::rejected_at_capacity() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return rejected_at_capacity_;
}

}  // namespace gact::core
