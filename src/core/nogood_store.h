// Nogood recording for the forward-checking chromatic-CSP engine.
//
// A nogood is a set of assignments {v_1 := w_1, .., v_k := w_k} that is
// provably contradictory: the solver has established that no satisfying
// map extends it. The FC engine records one at each conflict it proves,
// in its minimal observable form:
//  * domain wipeout — when forward checking empties an unassigned
//    vertex's domain, the nogood is the set of currently-assigned
//    (vertex, value) pairs that caused each pruning (tracked per pruned
//    value, so decisions that pruned nothing stay out of the nogood);
//  * constraint violation — when a fully assigned simplex maps outside
//    its constraint complex, the nogood is the conflicting tuple itself
//    (its non-fixed vertices' assignments).
// Before trying v := w, the engine asks the store whether that
// assignment would complete a recorded nogood under the current partial
// assignment; if so, the branch is pruned without redoing the search
// work that proved the conflict the first time.
//
// Soundness: a recorded conflict depends only on the per-solve constants
// (the constraint complexes and the root-propagated domains) and the
// recorded assignments — never on assignment order — so pruning against
// the store never removes a satisfying branch. Verdicts and witnesses
// are bit-identical with the store on or off; only backtrack counts and
// wall time change (tests/solver_cache_test.cpp asserts this across the
// scenario registry).
//
// The store is bounded: recording stops at the configured capacity
// (SolverConfig::nogood_capacity) so pathological searches cannot grow
// it without bound. Lookup is via a watch index that maps every literal
// to the nogoods containing it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/simplex.h"

namespace gact::core {

/// One assignment `var := value` inside a nogood.
struct NogoodLiteral {
    topo::VertexId var = 0;
    topo::VertexId value = 0;

    bool operator==(const NogoodLiteral& o) const noexcept {
        return var == o.var && value == o.value;
    }
    bool operator<(const NogoodLiteral& o) const noexcept {
        return var != o.var ? var < o.var : value < o.value;
    }
};

/// A bounded, deduplicated store of nogoods with per-literal lookup.
/// Single-threaded: each solver thread owns its own store (portfolio
/// threads do not share learned conflicts).
class NogoodStore {
public:
    /// `capacity` == 0 disables the store (record() drops everything).
    explicit NogoodStore(std::size_t capacity);

    /// Record a conflicting assignment set. Literals are canonicalized
    /// (sorted, deduplicated); empty sets, duplicates of stored
    /// nogoods, and records past the capacity are dropped. Returns true
    /// iff the nogood was newly stored.
    bool record(std::vector<NogoodLiteral> literals);

    /// Would assigning `var := value` complete a stored nogood, given
    /// the current partial assignment? `value_of(u, out)` must return
    /// true and set `out` iff vertex `u` is currently assigned. True
    /// means the extended assignment is provably unsatisfiable and the
    /// value can be skipped. Templated so the solver's dense value
    /// tables plug in without indirection; the watch index keeps the
    /// common no-match case to one hash probe.
    template <typename ValueOf>
    bool blocked(topo::VertexId var, topo::VertexId value,
                 const ValueOf& value_of) const {
        const auto it = watch_.find(literal_key(var, value));
        if (it == watch_.end()) return false;
        for (const std::uint32_t id : it->second) {
            bool complete = true;
            for (const NogoodLiteral& l : nogoods_[id]) {
                if (l.var == var) {
                    // The literal being assigned; a same-var literal
                    // with a different value can never be satisfied
                    // alongside it.
                    if (l.value != value) {
                        complete = false;
                        break;
                    }
                    continue;
                }
                topo::VertexId assigned_value = 0;
                if (!value_of(l.var, assigned_value) ||
                    assigned_value != l.value) {
                    complete = false;
                    break;
                }
            }
            if (complete) return true;
        }
        return false;
    }

    /// Convenience overload over an assignment map (tests, cold paths).
    bool blocked(
        topo::VertexId var, topo::VertexId value,
        const std::unordered_map<topo::VertexId, topo::VertexId>& assignment)
        const {
        return blocked(var, value,
                       [&assignment](topo::VertexId u, topo::VertexId& out) {
                           const auto it = assignment.find(u);
                           if (it == assignment.end()) return false;
                           out = it->second;
                           return true;
                       });
    }

    bool empty() const noexcept { return nogoods_.empty(); }
    std::size_t size() const noexcept { return nogoods_.size(); }
    std::size_t capacity() const noexcept { return capacity_; }
    /// Records dropped because the store was full.
    std::size_t rejected_at_capacity() const noexcept {
        return rejected_at_capacity_;
    }

private:
    static std::uint64_t literal_key(topo::VertexId var,
                                     topo::VertexId value) noexcept {
        return (static_cast<std::uint64_t>(var) << 32) | value;
    }

    std::size_t capacity_ = 0;
    std::vector<std::vector<NogoodLiteral>> nogoods_;
    /// literal -> indices of nogoods containing it (every literal is
    /// indexed, so blocked() sees a nogood whichever literal completes
    /// it last).
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> watch_;
    std::unordered_set<std::size_t> seen_hashes_;
    std::size_t rejected_at_capacity_ = 0;
};

}  // namespace gact::core
