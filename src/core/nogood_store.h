// Nogood recording for the forward-checking chromatic-CSP engine, plus
// the cross-solve pool that lets learned conflicts outlive one solve.
//
// A nogood is a set of assignments {v_1 := w_1, .., v_k := w_k} that is
// provably contradictory: the solver has established that no satisfying
// map extends it. The FC engine records one at each conflict it proves,
// in its minimal observable form:
//  * domain wipeout — when forward checking empties an unassigned
//    vertex's domain, the nogood is the set of currently-assigned
//    (vertex, value) pairs that caused each pruning (tracked per pruned
//    value, so decisions that pruned nothing stay out of the nogood);
//  * constraint violation — when a fully assigned simplex maps outside
//    its constraint complex, the nogood is the conflicting tuple itself
//    (its non-fixed vertices' assignments).
// Before trying v := w, the engine asks the store whether that
// assignment would complete a recorded nogood under the current partial
// assignment; if so, the branch is pruned without redoing the search
// work that proved the conflict the first time. The same minimal
// conflict sets drive the engine's conflict-directed backjumping (see
// chromatic_csp.h, SolverConfig::backjumping).
//
// Soundness: a recorded conflict depends only on the per-solve constants
// (the constraint complexes and the root-propagated domains) and the
// recorded assignments — never on assignment order — so pruning against
// the store never removes a satisfying branch. Verdicts and witnesses
// are bit-identical with the store on or off; only backtrack counts and
// wall time change (tests/solver_cache_test.cpp asserts this across the
// scenario registry).
//
// The store is bounded (SolverConfig::nogood_capacity) so pathological
// searches cannot grow it without bound — but a full store must not
// stop learning. Historically it did: once size() hit the capacity,
// record() rejected every new conflict for the rest of the search
// (rejected_at_capacity_), freezing the learning on whatever was
// derived first. With GcConfig::enabled the store instead *collects*:
// when the live count reaches the capacity it retires the least useful
// nogoods (lowest activity first — activity is bumped each time a
// nogood blocks a branch and halved at every collection, a clause-aging
// scheme in the LBD/VSIDS family) down to capacity * keep_fraction and
// admits the new record. Retirement is logical: the nogood leaves the
// watch and dedup indices (it stops pruning and may be re-learned) but
// its deque slot and literal buffer survive, so ids stay stable and the
// PR-5 lifetime contract holds — a blocking_nogood() reference or an
// all().back() reference held by a searcher, and the copies in the
// exchange log, are never invalidated by a collection. Buffers are
// freed only by an explicit reclaim() at caller-chosen safe points
// (restart and component boundaries, where no references are live);
// see tests/nogood_gc_test.cpp for the ASan-visible contract tests.
// Lookup is via a watch index that maps every literal to the live
// nogoods containing it. Deduplication compares canonicalized literal
// vectors inside per-hash buckets — hash equality alone is never
// trusted (a collision used to silently drop a genuinely new nogood).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/chromatic_complex.h"
#include "topology/geometry.h"
#include "topology/simplex.h"

namespace gact::core {

/// One assignment `var := value` inside a nogood.
struct NogoodLiteral {
    topo::VertexId var = 0;
    topo::VertexId value = 0;

    bool operator==(const NogoodLiteral& o) const noexcept {
        return var == o.var && value == o.value;
    }
    bool operator<(const NogoodLiteral& o) const noexcept {
        return var != o.var ? var < o.var : value < o.value;
    }
};

/// A bounded, deduplicated store of nogoods with per-literal lookup.
/// Single-threaded: each solver thread owns its own store (cross-thread
/// and cross-solve sharing go through SharedNogoodPool).
class NogoodStore {
public:
    using Hasher = std::function<std::size_t(const std::vector<NogoodLiteral>&)>;

    /// Eviction policy for a full store (see the file comment). Off by
    /// default: without it the store keeps the legacy reject-at-capacity
    /// behavior, which some callers (and tests) still pin.
    struct GcConfig {
        bool enabled = false;
        /// Fraction of `capacity` left live after a collection; the
        /// evicted headroom is what amortizes the O(live) index rebuild.
        /// Clamped so a collection always keeps >= 1 and frees >= 1.
        double keep_fraction = 0.5;
    };

    /// `capacity` == 0 disables the store (record() drops everything).
    explicit NogoodStore(std::size_t capacity);

    /// A store that collects instead of rejecting when full.
    NogoodStore(std::size_t capacity, GcConfig gc);

    /// Test-only: inject a custom hasher (e.g. a constant, to force every
    /// record into one collision bucket). Dedup must survive any hasher.
    NogoodStore(std::size_t capacity, Hasher hasher);

    /// Record a conflicting assignment set. Literals are canonicalized
    /// (sorted, deduplicated); empty sets and duplicates of live
    /// nogoods are dropped. A full store either rejects the record
    /// (GC off — the legacy dead end) or retires its least active
    /// nogoods to make room (GC on). Returns true iff newly stored.
    bool record(std::vector<NogoodLiteral> literals);

    /// Would assigning `var := value` complete a stored nogood, given
    /// the current partial assignment? Returns the completed nogood's
    /// literal vector (stable for the lifetime of the store: nogoods
    /// live in a deque precisely so that record() — including a
    /// mid-flight exchange import racing ahead of a held pointer —
    /// never invalidates a previously returned reference; the vector
    /// used to reallocate, which made "hold across a record()" an
    /// ASan-visible use-after-free, see
    /// tests/nogood_exchange_test.cpp), or nullptr.
    /// `value_of(u, out)` must return true and set `out` iff vertex `u`
    /// is currently assigned. A non-null result means the extended
    /// assignment is provably unsatisfiable and the value can be
    /// skipped; the literals name the assignments responsible (the
    /// conflict set backjumping consumes). Templated so the solver's
    /// dense value tables plug in without indirection; the watch index
    /// keeps the common no-match case to one hash probe.
    template <typename ValueOf>
    const std::vector<NogoodLiteral>* blocking_nogood(
        topo::VertexId var, topo::VertexId value,
        const ValueOf& value_of) const {
        const auto it = watch_.find(literal_key(var, value));
        if (it == watch_.end()) return nullptr;
        for (const std::uint32_t id : it->second) {
            bool complete = true;
            for (const NogoodLiteral& l : nogoods_[id]) {
                if (l.var == var) {
                    // The literal being assigned; a same-var literal
                    // with a different value can never be satisfied
                    // alongside it.
                    if (l.value != value) {
                        complete = false;
                        break;
                    }
                    continue;
                }
                topo::VertexId assigned_value = 0;
                if (!value_of(l.var, assigned_value) ||
                    assigned_value != l.value) {
                    complete = false;
                    break;
                }
            }
            if (complete) {
                // The activity signal the collector ranks by: a nogood
                // earns its keep each time it blocks a branch. Mutable
                // because a lookup is logically const.
                ++activity_[id];
                return &nogoods_[id];
            }
        }
        return nullptr;
    }

    /// Boolean view of blocking_nogood().
    template <typename ValueOf>
    bool blocked(topo::VertexId var, topo::VertexId value,
                 const ValueOf& value_of) const {
        return blocking_nogood(var, value, value_of) != nullptr;
    }

    /// Convenience overload over an assignment map (tests, cold paths).
    bool blocked(
        topo::VertexId var, topo::VertexId value,
        const std::unordered_map<topo::VertexId, topo::VertexId>& assignment)
        const {
        return blocked(var, value,
                       [&assignment](topo::VertexId u, topo::VertexId& out) {
                           const auto it = assignment.find(u);
                           if (it == assignment.end()) return false;
                           out = it->second;
                           return true;
                       });
    }

    bool empty() const noexcept { return nogoods_.empty(); }
    /// Stored entries including retired ones — ids [0, size()) stay
    /// stable across collections, which the exchange-import bookkeeping
    /// (ascending imported ids) and the pool-publish scan rely on.
    std::size_t size() const noexcept { return nogoods_.size(); }
    std::size_t capacity() const noexcept { return capacity_; }
    /// Entries still pruning (indexed in watch_/by_hash_).
    std::size_t live() const noexcept { return live_; }
    /// True iff `id` was retired by a collection. Retired entries keep
    /// their literals until reclaim().
    bool is_retired(std::uint32_t id) const noexcept {
        return id < retired_.size() && retired_[id] != 0;
    }
    /// Total retirements across all collections.
    std::size_t evicted() const noexcept { return evicted_; }
    /// Collections run so far.
    std::size_t gc_runs() const noexcept { return gc_runs_; }

    /// Free the literal buffers of nogoods retired since the last
    /// reclaim(), returning how many were freed. THIS is the call that
    /// invalidates outstanding references into retired entries (the
    /// deque slots themselves survive — ids stay stable — but their
    /// literal vectors are emptied), so callers may only invoke it at
    /// points where no blocking_nogood()/back() reference is held:
    /// the searcher reclaims at restart and component boundaries.
    std::size_t reclaim();

    /// Records dropped because the store was full (GC off only; with GC
    /// on, a full store evicts instead and this stays 0).
    std::size_t rejected_at_capacity() const noexcept {
        return rejected_at_capacity_;
    }
    /// Records dropped as exact duplicates of a stored nogood (literal
    /// vectors compared, not hashes).
    std::size_t rejected_as_duplicate() const noexcept {
        return rejected_as_duplicate_;
    }

    /// All stored nogoods, in record order (for cross-solve publishing).
    /// A deque, not a vector: elements never move, so references handed
    /// out by blocking_nogood() / back() survive later record() calls.
    /// Retired-and-reclaimed entries appear as empty vectors.
    const std::deque<std::vector<NogoodLiteral>>& all() const noexcept {
        return nogoods_;
    }

private:
    /// Retire the least active live nogoods down to the keep target,
    /// rebuilding the watch and dedup indices without them. Called by
    /// record() when the live count reaches capacity and GC is on.
    void collect();
    static std::uint64_t literal_key(topo::VertexId var,
                                     topo::VertexId value) noexcept {
        return (static_cast<std::uint64_t>(var) << 32) | value;
    }

    std::size_t capacity_ = 0;
    GcConfig gc_;
    Hasher hasher_;  // null = the default literal-vector hash
    /// Stable element addresses (see all()); push_back on a deque never
    /// invalidates references to existing elements.
    std::deque<std::vector<NogoodLiteral>> nogoods_;
    /// Per-id block counts (see blocking_nogood); halved each
    /// collection so stale usefulness ages out. Mutable: bumping on a
    /// const lookup is bookkeeping, not observable state.
    mutable std::vector<std::uint32_t> activity_;
    /// Per-id retirement flags, parallel to nogoods_.
    std::vector<char> retired_;
    /// Retired ids whose literal buffers reclaim() has not freed yet.
    std::vector<std::uint32_t> pending_reclaim_;
    /// literal -> indices of nogoods containing it (every literal is
    /// indexed, so blocking_nogood() sees a nogood whichever literal
    /// completes it last).
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> watch_;
    /// hash -> indices of stored nogoods with that hash. Dedup compares
    /// the canonicalized literal vectors inside the bucket: two distinct
    /// nogoods may collide, and both must be kept.
    std::unordered_map<std::size_t, std::vector<std::uint32_t>> by_hash_;
    std::size_t live_ = 0;
    std::size_t evicted_ = 0;
    std::size_t gc_runs_ = 0;
    std::size_t rejected_at_capacity_ = 0;
    std::size_t rejected_as_duplicate_ = 0;
};

/// A lock-light mid-flight exchange of learned nogoods between the
/// portfolio threads of ONE solve (the SharedNogoodPool below shares
/// *across* solves and only syncs at solve boundaries; this exchange is
/// what lets a racing thread profit from a conflict another thread
/// proved seconds ago, while both are still searching).
///
/// Design: an append-only log of entries in fixed-size segments whose
/// addresses never change once allocated. Writers serialize on one
/// mutex (publishing happens only when a nogood is newly recorded, so
/// contention is proportional to learning, not to search); readers are
/// wait-free — an acquire load of the entry count synchronizes with the
/// writer's release store, after which every entry below the count is
/// fully constructed and immutable, and the segment spine is a
/// fixed-size array of atomic pointers, so no reader ever observes a
/// reallocation. Each importer keeps its own cursor and drains only the
/// suffix it has not seen, skipping entries it published itself.
///
/// Soundness is inherited from NogoodStore's argument: portfolio
/// threads of one solve share every per-solve constant (the constraint
/// complexes and the root-propagated domains), and a recorded conflict
/// depends only on those constants and its literals — never on the
/// publishing thread's assignment order — so importing it mid-search
/// prunes only branches that provably contain no witness. Verdicts and
/// witnesses are bit-identical with the exchange on or off; only
/// backtrack counts and wall time change (tests/solver_cache_test.cpp
/// asserts this across the registry's toggle matrix).
class LiveNogoodExchange {
public:
    /// `capacity` caps the total entries retained (publishes past it are
    /// dropped and counted); 0 disables the exchange outright.
    explicit LiveNogoodExchange(std::size_t capacity = 1 << 14);
    ~LiveNogoodExchange();

    LiveNogoodExchange(const LiveNogoodExchange&) = delete;
    LiveNogoodExchange& operator=(const LiveNogoodExchange&) = delete;

    /// Publish one newly learned nogood (already canonicalized by the
    /// publisher's NogoodStore). `source` tags the publishing thread so
    /// it never re-imports its own entries. Returns true iff stored.
    bool publish(unsigned source, std::vector<NogoodLiteral> literals);

    /// Entries visible so far (acquire; safe to read concurrently with
    /// publishers).
    std::size_t size() const noexcept {
        return count_.load(std::memory_order_acquire);
    }

    /// Visit every entry in [cursor, size()) not published by `source`
    /// and with at most `max_literals` literals (0 = no cap), advancing
    /// and returning the cursor. Wait-free with respect to publishers.
    template <typename Fn>
    std::size_t drain(std::size_t cursor, unsigned source,
                      std::size_t max_literals, Fn&& fn) const {
        const std::size_t limit = size();
        for (; cursor < limit; ++cursor) {
            const Entry& e = entry(cursor);
            if (e.source == source) continue;
            if (max_literals != 0 && e.literals.size() > max_literals) {
                continue;
            }
            fn(e.literals);
        }
        return cursor;
    }

    std::size_t capacity() const noexcept { return capacity_; }
    /// Publishes dropped because the exchange was full.
    std::size_t rejected_at_capacity() const noexcept {
        return rejected_at_capacity_.load(std::memory_order_relaxed);
    }

private:
    struct Entry {
        unsigned source = 0;
        std::vector<NogoodLiteral> literals;
    };
    /// 256 entries per segment: small enough that a short solve touches
    /// one allocation, large enough that the spine stays tiny.
    static constexpr std::size_t kSegmentShift = 8;
    static constexpr std::size_t kSegmentSize = std::size_t{1}
                                                << kSegmentShift;
    struct Segment {
        Entry entries[kSegmentSize];
    };

    const Entry& entry(std::size_t i) const {
        // The acquire in size() ordered this load after the publishing
        // thread's release store of count_, which happened after both
        // the segment-pointer store and the entry construction.
        return segments_[i >> kSegmentShift]
            .load(std::memory_order_acquire)
            ->entries[i & (kSegmentSize - 1)];
    }

    std::size_t capacity_ = 0;
    /// Fixed-size spine: sized once in the constructor, never resized,
    /// so readers can index it without synchronizing with writers.
    std::vector<std::atomic<Segment*>> segments_;
    std::atomic<std::size_t> count_{0};
    std::atomic<std::size_t> rejected_at_capacity_{0};
    std::mutex write_mutex_;
};

/// A thread-safe pool of learned nogoods shared *across* solves — across
/// subdivision depths, across portfolio threads' sequential solves, and
/// across repeated solves of the same construction (e.g. two registry
/// scenarios differing only in their model).
///
/// Portability across vertex re-indexing: per-solve vertex ids change
/// from one subdivision depth to the next, but the *geometry* of a
/// vertex — its exact rational position in the base complex plus its
/// color — does not (the same carrier-keyed idea as AllowedComplexLru).
/// The pool therefore stores literals with the variable translated to an
/// interned (position, color) key id; the problem builders
/// (core/act_solver.h, core/lt_pipeline.h) install the translation
/// closure on ChromaticMapProblem, and the solver maps key ids back to
/// the current solve's vertex ids when seeding. A nogood whose variables
/// do not all exist in the current domain is simply not imported.
/// Output-side values are raw codomain vertex ids: every solve sharing a
/// scope maps into the same output complex, whose ids are stable.
///
/// Soundness contract — this is the part the caller owns: nogoods are
/// namespaced by a `scope` string, and every solve publishing into or
/// seeding from one scope must pose THE SAME constraint problem (same
/// domain-complex geometry, same codomain, same constraint complexes,
/// same fixed assignments). The builders derive the scope from the task
/// name plus every problem-shaping parameter (depth / stages / identity
/// fixing / guidance), so distinct problems never share a scope unless
/// two distinct tasks are given the same name. Scopes are compared as
/// strings — never by hash — for exactly the reason NogoodStore's dedup
/// was rewritten.
///
/// Reused nogoods are pruning-only, so seeding can change backtrack
/// counts but never a verdict or a witness
/// (tests/solver_cache_test.cpp asserts this across the registry).
class SharedNogoodPool {
public:
    using VarKeyId = std::uint32_t;

    struct PortableLiteral {
        VarKeyId var_key = 0;
        topo::VertexId value = 0;

        bool operator==(const PortableLiteral& o) const noexcept {
            return var_key == o.var_key && value == o.value;
        }
        bool operator<(const PortableLiteral& o) const noexcept {
            return var_key != o.var_key ? var_key < o.var_key
                                        : value < o.value;
        }
    };

    /// `capacity` caps the nogoods retained per scope (0 disables the
    /// pool: publish() drops everything and for_each() visits nothing).
    explicit SharedNogoodPool(std::size_t capacity_per_scope = 1 << 16);

    /// The stable dense id of a (position, color) vertex key, interning
    /// it on first sight. Ids are process-stable for the lifetime of the
    /// pool, so portable literals stay comparable across solves.
    VarKeyId intern(const topo::BaryPoint& position, topo::Color color);

    /// Publish one learned nogood under `scope`. Literals are
    /// canonicalized; duplicates (compared literal-by-literal inside
    /// hash buckets) and records past the per-scope capacity are
    /// dropped. Returns true iff newly stored.
    bool publish(const std::string& scope,
                 std::vector<PortableLiteral> literals);

    /// Visit every nogood stored under `scope` (snapshot semantics: the
    /// visit runs under the pool lock; keep `fn` cheap).
    void for_each(const std::string& scope,
                  const std::function<void(
                      const std::vector<PortableLiteral>&)>& fn) const;

    std::size_t size(const std::string& scope) const;
    std::size_t capacity_per_scope() const noexcept { return capacity_; }
    /// Total nogoods accepted across all scopes.
    std::size_t published() const;
    /// Publishes dropped as duplicates of an already-pooled nogood.
    std::size_t rejected_as_duplicate() const;
    /// Publishes dropped because their scope was full — observable, like
    /// every other learning-loss path in this header.
    std::size_t rejected_at_capacity() const;

    // --- persistence across processes --------------------------------
    //
    // The pool's contents are exactly the process-independent parts of
    // the learning: interned (position, color) keys (exact rationals —
    // serialized as num/den, never floats), string scopes, and literal
    // vectors. save()/load() move them through a versioned line-based
    // text format (spec in docs/ARCHITECTURE.md) so a later process
    // warm-starts where this one left off. The soundness contract is
    // unchanged — scopes still name the full problem identity, and a
    // load only ever adds nogoods a solver may prune against.

    /// Serialize every scope to `path` (format `gact-nogood-pool v1`).
    /// Merge-on-save: if `path` already holds a valid pool file, its
    /// contents are first merged into this pool (union, dedup, capacity
    /// still capping each scope), so two processes alternating on one
    /// file accumulate each other's learning instead of last-writer
    /// clobbering it; a missing or invalid existing file is simply
    /// overwritten. Atomic: the contents are written to a per-process,
    /// per-call temp name and renamed over the target, so a crash or
    /// write failure mid-save leaves the previous file intact, and
    /// concurrent save() calls (a snapshot timer racing a shutdown
    /// drain) cannot interleave into one tmp file. Returns "" on
    /// success, else a diagnostic. Scopes containing newlines are
    /// unrepresentable and reported as an error (the builders never
    /// produce them).
    ///
    /// Snapshot-friendly: the pool lock is held only to merge the
    /// parsed existing file and serialize the pool to memory — the
    /// file read before and the write+rename after run unlocked, so
    /// concurrent publishes (live solves) never block on disk I/O, and
    /// every snapshot is a consistent cut of the pool
    /// (tests/nogood_pool_persistence_test.cpp pins this under a
    /// publisher/snapshotter race).
    std::string save(const std::string& path);

    /// Merge the pool file at `path` into this pool: file-local key ids
    /// are re-interned (so loading composes with live interning and
    /// with multiple files), duplicate nogoods are dropped by literal
    /// comparison, capacity still caps each scope. All-or-nothing: the
    /// file is fully parsed and validated BEFORE the pool is touched,
    /// so a truncated, corrupted, or version-mismatched file returns a
    /// diagnostic and leaves the pool exactly as it was — callers
    /// downgrade to a cold start (SolveReport::warnings), never abort.
    /// Returns "" on success.
    std::string load(const std::string& path);

private:
    struct Scope {
        std::vector<std::vector<PortableLiteral>> nogoods;
        std::unordered_map<std::size_t, std::vector<std::uint32_t>> by_hash;
    };

    /// intern() / publish() bodies, callable while already holding
    /// mutex_ (load() re-interns a whole file under one lock).
    VarKeyId intern_locked(const topo::BaryPoint& position,
                           topo::Color color);
    /// A fully parsed and validated pool file, not yet merged (defined
    /// in nogood_store.cpp). Splitting parse from merge keeps the file
    /// I/O outside mutex_: load() and save() parse first, lock second.
    struct ParsedFile;
    /// Parse + validate the pool file at `path` into `out` WITHOUT
    /// touching the pool (no lock needed). Returns "" or a diagnostic;
    /// on error `out` is unspecified and must not be merged.
    static std::string parse_file(const std::string& path, ParsedFile& out);
    /// Commit a parsed file: re-intern its file-local keys, remap and
    /// publish its nogoods through the ordinary dedup + capacity path.
    /// The caller holds mutex_.
    void merge_parsed_locked(const ParsedFile& parsed);
    /// Serialize the whole pool into `out` (the `gact-nogood-pool v1`
    /// text). The caller holds mutex_. Returns "" or a diagnostic.
    std::string serialize_locked(std::string& out) const;
    bool publish_locked(const std::string& scope,
                        std::vector<PortableLiteral> literals);

    mutable std::mutex mutex_;
    std::size_t capacity_ = 0;
    std::map<std::pair<topo::BaryPoint, topo::Color>, VarKeyId> key_index_;
    std::map<std::string, Scope> scopes_;
    std::size_t published_ = 0;
    std::size_t rejected_as_duplicate_ = 0;
    std::size_t rejected_at_capacity_ = 0;
};

}  // namespace gact::core
