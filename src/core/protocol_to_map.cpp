#include "core/protocol_to_map.h"

#include "util/require.h"

namespace gact::core {

iis::ViewId view_of_vertex(iis::SubdivisionChain& chain,
                           iis::ViewArena& arena, std::size_t k,
                           VertexId vertex) {
    const topo::SubdividedComplex& level = chain.level(k);
    if (k == 0) {
        return arena.make_initial(level.complex().color(vertex));
    }
    const topo::SubdividedComplex::Provenance& prov = level.provenance(vertex);
    std::vector<iis::ViewId> seen;
    seen.reserve(prov.parent_simplex.size());
    for (VertexId w : prov.parent_simplex.vertices()) {
        seen.push_back(view_of_vertex(chain, arena, k - 1, w));
    }
    return arena.make_view(level.complex().color(vertex), std::move(seen));
}

EtaExtraction extract_eta(const protocol::Protocol& protocol,
                          iis::SubdivisionChain& chain,
                          iis::ViewArena& arena, std::size_t k) {
    EtaExtraction out;
    const topo::SubdividedComplex& level = chain.level(k);
    for (VertexId v : level.complex().vertex_ids()) {
        const iis::ViewId view = view_of_vertex(chain, arena, k, v);
        const auto decided = protocol.output(view, arena);
        if (decided.has_value()) {
            out.eta.set(v, *decided);
        } else {
            out.undecided.push_back(v);
        }
    }
    return out;
}

}  // namespace gact::core
