// The "=>" direction of the characterizations: from a protocol to a
// topological witness.
//
// Every vertex of Chr^k s *is* a (process, view) pair: the Chr vertex
// (p, tau) encodes "p's previous view, together with the simplex of views
// it saw" (Sections 2.1, 5). view_of_vertex materializes this
// correspondence through the subdivision's provenance chain. Given a
// protocol, mapping each vertex through its view's output yields the
// simplicial map eta of Corollary 7.1 — when the protocol decides on all
// views by depth k, which is exactly the compactness step of the
// wait-free proof. For genuinely non-wait-free protocols (such as the
// Res_t protocol for L_t) the extraction is partial, witnessing why a
// uniform depth bound cannot exist (the paper's 1-resilient example in
// the introduction).
#pragma once

#include "core/act_solver.h"
#include "iis/projection.h"
#include "protocol/protocol.h"

namespace gact::core {

/// The view of the process owning `vertex` of Chr^k(base), reconstructed
/// from subdivision provenance. For input-less tasks: the depth-0 views
/// carry no input vertex. `chain` must have level k built or buildable.
iis::ViewId view_of_vertex(iis::SubdivisionChain& chain,
                           iis::ViewArena& arena, std::size_t k,
                           VertexId vertex);

/// Result of extracting eta from a protocol at depth k.
struct EtaExtraction {
    SimplicialMap eta;
    /// Vertices of Chr^k whose views are outside the protocol's domain;
    /// empty iff the protocol decides everywhere by depth k.
    std::vector<VertexId> undecided;
    bool total() const noexcept { return undecided.empty(); }
};

/// Map every vertex of Chr^k(inputs) through the protocol. For a total
/// extraction on a wait-free-solvable task, the result is a Corollary 7.1
/// witness (validated by act_problem + check_chromatic_map in tests).
EtaExtraction extract_eta(const protocol::Protocol& protocol,
                          iis::SubdivisionChain& chain,
                          iis::ViewArena& arena, std::size_t k);

}  // namespace gact::core
