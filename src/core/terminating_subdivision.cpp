#include "core/terminating_subdivision.h"

#include <unordered_map>

#include "exec/for_index.h"
#include "util/require.h"

namespace gact::core {

TerminatingSubdivision::TerminatingSubdivision(const ChromaticComplex& base)
    : base_(base) {
    Stage s;
    s.complex = SubdividedComplex::identity(base);
    stages_.push_back(std::move(s));
}

VertexId TerminatingSubdivision::global_id(
    const SubdividedComplex& stage_complex, VertexId v) {
    const BaryPoint& pos = stage_complex.position(v);
    const Color color = stage_complex.complex().color(v);
    const auto key = std::make_pair(pos, color);
    const auto it = global_index_.find(key);
    if (it != global_index_.end()) return it->second;
    const VertexId id = static_cast<VertexId>(global_position_.size());
    global_index_.emplace(key, id);
    global_position_.push_back(pos);
    global_color_[id] = color;
    return id;
}

void TerminatingSubdivision::advance(
    const std::function<bool(const SubdividedComplex&, const Simplex&)>&
        stabilize,
    unsigned num_threads) {
    require(!stages_.empty(),
            "TerminatingSubdivision: advance on an empty placeholder");
    Stage& current = stages_.back();
    const SubdividedComplex& cx = current.complex;

    // Collect Sigma_k: previously stable simplices persist; new ones come
    // from the predicate. Closure under faces is enforced by construction
    // (SimplicialComplex::add_simplex adds all faces). The predicate scan
    // is per-facet work over immutable state, so it shards as
    // index-slotted tasks on the resident scheduler; the selected faces
    // are merged in facet order, and since the stable set is a *set*,
    // the merged result is identical to the sequential scan's.
    const std::vector<Simplex> facets = cx.complex().facets();
    std::vector<std::vector<Simplex>> selected(facets.size());
    exec::for_index(
        exec::Scheduler::shared(), facets.size(), num_threads,
        [&](std::size_t fi) {
            for (const Simplex& s : facets[fi].faces()) {
                if (current.stable.contains(s)) continue;
                if (stabilize(cx, s)) selected[fi].push_back(s);
            }
        });
    std::vector<Simplex> newly_stable;
    for (const std::vector<Simplex>& faces : selected) {
        for (const Simplex& s : faces) {
            if (current.stable.contains(s)) continue;
            current.stable.add_simplex(s);
            newly_stable.push_back(s);
        }
    }

    // Record the newly stable simplices into the global complex, stamping
    // first-stabilization stages (faces stabilize with their cofaces).
    // Only the simplices selected THIS stage need recording: everything
    // else in current.stable is either a face of one of them (covered by
    // the closure walk below) or the persisted image of a simplex that
    // was recorded — under the same position/color global ids — at an
    // earlier stage, where stable_since_ already holds its first
    // stabilization stage (emplace keeps the first stamp).
    const std::size_t stage = stages_.size() - 1;
    // global_id resolves through the exact-rational position index;
    // memoize per stage so each stage vertex pays for one probe however
    // many stable simplices share it.
    std::unordered_map<VertexId, VertexId> global_of;
    const auto global_id_memo = [&](VertexId v) {
        const auto it = global_of.find(v);
        if (it != global_of.end()) return it->second;
        const VertexId id = global_id(cx, v);
        global_of.emplace(v, id);
        return id;
    };
    for (const Simplex& s : newly_stable) {
        std::vector<VertexId> verts;
        verts.reserve(s.size());
        for (VertexId v : s.vertices()) verts.push_back(global_id_memo(v));
        Simplex global(std::move(verts));
        for (const Simplex& face : global.faces()) {
            stable_since_.emplace(face, stage);
        }
        stable_simplices_.add_simplex(std::move(global));
    }
    stable_stale_ = true;

    // Build C_{k+1}: partial chromatic subdivision terminating Sigma_k.
    const SimplicialComplex& sigma = current.stable;
    Stage next;
    next.complex = cx.chromatic_subdivision_with_termination(
        [&sigma](const Simplex& t) { return sigma.contains(t); },
        num_threads);

    // Sigma_k persists in C_{k+1}: terminated simplices survive with new
    // vertex ids (matched by position + color). The per-vertex lookup
    // goes through the exact-rational position index, so memoize it:
    // stable simplices share vertices heavily and the map probe is the
    // expensive part of this check.
    std::unordered_map<VertexId, VertexId> vertex_image;
    std::vector<Simplex> images;
    images.reserve(sigma.simplices().size());
    for (const Simplex& s : sigma.simplices()) {
        std::vector<VertexId> verts;
        for (VertexId v : s.vertices()) {
            const auto memo = vertex_image.find(v);
            if (memo != vertex_image.end()) {
                verts.push_back(memo->second);
                continue;
            }
            const auto nv = next.complex.find_vertex(
                cx.position(v), cx.complex().color(v));
            ensure(nv.has_value(),
                   "TerminatingSubdivision: stable vertex vanished");
            vertex_image.emplace(v, *nv);
            verts.push_back(*nv);
        }
        Simplex image{std::move(verts)};
        ensure(next.complex.complex().contains(image),
               "TerminatingSubdivision: stable simplex not preserved");
        images.push_back(std::move(image));
    }
    // Sigma_k is closed under faces and the vertexwise image of a closed
    // set is closed, so the images need no per-simplex closure walk.
    next.stable = SimplicialComplex::from_closed(std::move(images));
    stages_.push_back(std::move(next));
}

const ChromaticComplex& TerminatingSubdivision::stable_complex() const {
    if (stable_stale_) {
        // Trusted: global simplices are color-preserving images of
        // properly colored stage simplices, so the coloring stays proper.
        stable_ = ChromaticComplex::trusted(stable_simplices_, global_color_);
        stable_stale_ = false;
    }
    return stable_;
}

const SubdividedComplex& TerminatingSubdivision::complex_at(
    std::size_t k) const {
    require(k < stages_.size(), "TerminatingSubdivision: stage not built");
    return stages_[k].complex;
}

const SimplicialComplex& TerminatingSubdivision::stable_at(
    std::size_t k) const {
    require(k < stages_.size(), "TerminatingSubdivision: stage not built");
    return stages_[k].stable;
}

const BaryPoint& TerminatingSubdivision::stable_position(
    VertexId global_vertex) const {
    require(global_vertex < global_position_.size(),
            "TerminatingSubdivision: unknown global vertex");
    return global_position_[global_vertex];
}

Simplex TerminatingSubdivision::stable_carrier(
    const Simplex& global_simplex) const {
    Simplex out;
    for (VertexId v : global_simplex.vertices()) {
        out = out.union_with(stable_position(v).support());
    }
    return out;
}

std::vector<BaryPoint> TerminatingSubdivision::stable_positions_of(
    const Simplex& s) const {
    std::vector<BaryPoint> out;
    out.reserve(s.size());
    for (VertexId v : s.vertices()) out.push_back(stable_position(v));
    return out;
}

std::size_t TerminatingSubdivision::stable_since(
    const Simplex& global_simplex) const {
    const auto it = stable_since_.find(global_simplex);
    require(it != stable_since_.end(),
            "TerminatingSubdivision: simplex is not stable");
    return it->second;
}

std::optional<VertexId> TerminatingSubdivision::find_stable_vertex(
    const BaryPoint& position, Color color) const {
    const auto it = global_index_.find(std::make_pair(position, color));
    if (it == global_index_.end()) return std::nullopt;
    return it->second;
}

bool TerminatingSubdivision::stable_simplex_contains(
    const Simplex& tau, const std::vector<BaryPoint>& points) const {
    const std::vector<BaryPoint> vertices = stable_positions_of(tau);
    for (const BaryPoint& p : points) {
        if (!topo::point_in_simplex(p, vertices)) return false;
    }
    return true;
}

}  // namespace gact::core
