// Terminating subdivisions (paper, Section 6.1).
//
// A terminating subdivision T of a chromatic complex C is a sequence of
// complexes C_0 = C, C_1, C_2, ... together with subcomplexes
// Sigma_0 ⊆ Sigma_1 ⊆ ... of "stable" simplices: C_{k+1} is the partial
// chromatic subdivision of C_k in which the simplices of Sigma_k are
// terminated (not subdivided further). Stable simplices persist verbatim
// in all later stages. The union K(T) of all stable simplices is a
// chromatic complex whose realization sits inside |C|.
//
// Stage complexes have per-stage vertex ids; K(T) is accumulated in a
// global registry keyed by (color, exact position), so a stable vertex is
// the same K(T) vertex no matter at which stage it stabilized.
#pragma once

#include <functional>
#include <map>

#include "topology/subdivision.h"

namespace gact::core {

using topo::BaryPoint;
using topo::ChromaticComplex;
using topo::Color;
using topo::Simplex;
using topo::SimplicialComplex;
using topo::SubdividedComplex;
using topo::VertexId;

/// A terminating subdivision, materialized stage by stage.
class TerminatingSubdivision {
public:
    /// An empty placeholder; assign a real subdivision before use.
    TerminatingSubdivision() = default;

    explicit TerminatingSubdivision(const ChromaticComplex& base);

    /// Advance one stage: mark as stable every *not yet stable* simplex of
    /// the current complex selected by `stabilize` (must be closed under
    /// faces together with the already-stable simplices), then build the
    /// next complex by partial chromatic subdivision.
    ///
    /// `num_threads > 1` shards the stage into per-facet work units on a
    /// self-scheduling pool: the stabilization scan and the subdivision
    /// build (see SubdividedComplex::chromatic_subdivision_with_termination)
    /// run in parallel, with results merged in facet order — the stage
    /// produced is bit-identical to the single-threaded one. `stabilize`
    /// must then be a pure predicate safe for concurrent calls (every
    /// StableRule is).
    void advance(const std::function<bool(const SubdividedComplex&,
                                          const Simplex&)>& stabilize,
                 unsigned num_threads = 1);

    /// Number of stages built (C_0 .. C_{stages()-1}).
    std::size_t stages() const noexcept { return stages_.size(); }

    /// The stage complex C_k.
    const SubdividedComplex& complex_at(std::size_t k) const;

    /// The stable subcomplex Sigma_k in C_k's vertex ids.
    const SimplicialComplex& stable_at(std::size_t k) const;

    /// K(T) so far: the union of stable simplices, in global vertex ids.
    /// Rebuilt lazily after advance() stages (the chromatic wrapper is a
    /// full copy of the stable set, too expensive to refresh per stage).
    const ChromaticComplex& stable_complex() const;

    /// Position in |base| of a global stable vertex.
    const BaryPoint& stable_position(VertexId global_vertex) const;

    /// Carrier in the base complex of a global stable simplex.
    Simplex stable_carrier(const Simplex& global_simplex) const;

    /// Positions of a global stable simplex's vertices, in vertex order.
    std::vector<BaryPoint> stable_positions_of(const Simplex& s) const;

    /// The global id for a stable vertex given color and exact position;
    /// nullopt if no such stable vertex exists yet.
    std::optional<VertexId> find_stable_vertex(const BaryPoint& position,
                                               Color color) const;

    /// The stage at which a global stable simplex was terminated (its
    /// first appearance in some Sigma_k). A protocol may only output on a
    /// stable simplex from this many rounds on: stable simplices stand for
    /// "outputs produced after stage-many IS layers" (Section 6.1), and
    /// firing earlier breaks Definition 4.1 (2) in runs that share the
    /// early views but land elsewhere.
    std::size_t stable_since(const Simplex& global_simplex) const;

    /// The stable facets (maximal stable simplices) of K(T) so far.
    std::vector<Simplex> stable_facets() const {
        return stable_complex().complex().facets();
    }

    /// Is the realization of the global stable simplex `tau` a superset of
    /// the geometric simplex spanned by `points`? (The landing condition
    /// |sigma_k| ⊆ |tau| of Section 6.2, input-less case.)
    bool stable_simplex_contains(const Simplex& tau,
                                 const std::vector<BaryPoint>& points) const;

    const ChromaticComplex& base() const noexcept { return base_; }

private:
    struct Stage {
        SubdividedComplex complex;
        SimplicialComplex stable;  // Sigma_k, in this stage's vertex ids
    };

    /// Intern a stage vertex into the global registry.
    VertexId global_id(const SubdividedComplex& stage_complex, VertexId v);

    ChromaticComplex base_;
    std::vector<Stage> stages_;

    // Global stable complex and geometry. stable_ mirrors
    // stable_simplices_ + global_color_; advance() only marks it stale
    // and stable_complex() refreshes it on demand.
    mutable ChromaticComplex stable_;
    mutable bool stable_stale_ = false;
    std::map<std::pair<BaryPoint, Color>, VertexId> global_index_;
    std::vector<BaryPoint> global_position_;
    std::unordered_map<VertexId, Color> global_color_;
    SimplicialComplex stable_simplices_;
    std::unordered_map<Simplex, std::size_t> stable_since_;
};

}  // namespace gact::core
