#include "engine/engine.h"

#include <filesystem>

#include "engine/general_route.h"
#include "engine/stage_clock.h"
#include "exec/cancel.h"
#include "exec/for_index.h"
#include "iis/run_enumeration.h"
#include "util/require.h"

namespace gact::engine {

namespace {

SolveReport solve_wait_free(const Scenario& scenario,
                            const core::SolverConfig& solver,
                            core::SharedNogoodPool* pool) {
    SolveReport report;
    report.scenario = scenario.name;

    const auto start = stage_clock_now();
    const core::ActResult act = core::run_act_search(
        scenario.task, scenario.options.max_depth, solver, pool);
    report.timings.push_back({"act-search", millis_since(start)});

    report.backtracks_per_depth = act.backtracks_per_depth;
    report.counters = act.counters;
    report.total_backtracks = act.counters.backtracks;
    if (act.solvable) {
        report.verdict = Verdict::kSolvable;
        report.witness = act.eta;
        report.witness_depth = act.witness_depth;
        report.wf_domain = act.domain;
        report.detail = "Corollary 7.1 witness eta : Chr^" +
                        std::to_string(act.witness_depth) + " I -> O";
    } else if (act.exhausted_all_depths) {
        report.verdict = Verdict::kUnsolvableAtDepth;
        report.detail = "depths 0.." +
                        std::to_string(scenario.options.max_depth) +
                        " exhausted without a witness";
    } else {
        report.verdict = Verdict::kBudgetExhausted;
        report.detail = "backtrack budget hit before depth " +
                        std::to_string(scenario.options.max_depth) +
                        " settled";
    }
    return report;
}

SolveReport solve_general(const Scenario& scenario,
                          const core::SolverConfig& solver,
                          core::SharedNogoodPool* pool) {
    SolveReport report;
    report.scenario = scenario.name;
    if (!scenario.affine.has_value() ||
        scenario.options.stable_rule == nullptr) {
        report.verdict = Verdict::kUnsupported;
        report.detail = "model " + scenario.model->name() +
                        " needs affine geometry and a StableRule (the "
                        "general route is the Section 9 construction)";
        return report;
    }

    // kRadial is exact rational geometry for the n = 2 base only
    // (radial_projection_l1 requires it); on any other base the engine
    // downgrades to the default candidate order and says so, instead of
    // letting the projection's precondition abort the solve mid-search.
    // Candidate order only shapes the search, never its verdict, so the
    // downgrade is safe. (See EngineOptions::guidance for the residual
    // contract on non-L_1 3-process geometries.)
    core::LtGuidance guidance = scenario.options.guidance;
    if (guidance == core::LtGuidance::kRadial &&
        scenario.affine->subdivision.base().dimension() != 2) {
        guidance = core::LtGuidance::kNearest;
        report.warnings.push_back(
            "radial-projection guidance requested on an n = " +
            std::to_string(
                scenario.affine->subdivision.base().dimension()) +
            " base; the exact projection covers n = 2 only — downgraded "
            "to nearest-vertex candidate order");
    }

    // Stages 1-2: terminating subdivision + simplicial approximation.
    GeneralWitness witness = build_general_witness(
        *scenario.affine, *scenario.options.stable_rule,
        scenario.options.subdivision_stages, scenario.options.fix_identity,
        guidance, solver, scenario.options.shard_threads, pool);
    report.timings.push_back(
        {"terminating-subdivision", witness.subdivision_millis});
    report.timings.push_back(
        {"simplicial-approximation", witness.approximation_millis});
    report.counters = witness.counters;
    report.total_backtracks = witness.counters.backtracks;
    report.witness_depth =
        static_cast<int>(scenario.options.subdivision_stages);
    report.tsub = std::make_shared<const core::TerminatingSubdivision>(
        std::move(witness.tsub));

    if (report.tsub->stable_complex().is_empty()) {
        report.verdict = Verdict::kBudgetExhausted;
        report.detail = "no stable simplices after " +
                        std::to_string(scenario.options.subdivision_stages) +
                        " stages of " +
                        scenario.options.stable_rule->name() +
                        "; raise subdivision_stages";
        return report;
    }
    if (!witness.delta.has_value()) {
        if (witness.exhausted) {
            report.verdict = Verdict::kUnsolvableAtDepth;
            report.detail =
                "no chromatic approximation K(T) -> L exists for this "
                "subdivision (search exhausted); a finer T might carry one";
        } else {
            report.verdict = Verdict::kBudgetExhausted;
            report.detail =
                "approximation search hit its backtrack budget";
        }
        return report;
    }
    report.witness = witness.delta;

    // Stage 3: the model's compact run family M_D.
    auto start = stage_clock_now();
    report.model_runs = iis::filter_by_model(
        iis::enumerate_stabilized_runs(scenario.task.num_processes,
                                       scenario.options.run_prefix_depth),
        *scenario.model);
    report.timings.push_back({"run-enumeration", millis_since(start)});
    if (report.model_runs.empty()) {
        report.verdict = Verdict::kBudgetExhausted;
        report.detail = "no compact runs of " + scenario.model->name() +
                        " at prefix depth " +
                        std::to_string(scenario.options.run_prefix_depth) +
                        "; raise run_prefix_depth";
        return report;
    }

    // Stage 4: admissibility (Theorem 6.1, condition (a)).
    start = stage_clock_now();
    report.admissibility = core::check_admissibility(
        *report.tsub, report.model_runs, scenario.options.max_landing_round);
    report.timings.push_back({"admissibility", millis_since(start)});

    if (report.admissibility->admissible) {
        report.verdict = Verdict::kSolvable;
        report.detail =
            "delta : K(T) -> L found and T admissible for " +
            scenario.model->name() + " (" +
            std::to_string(report.admissibility->runs_checked) +
            " compact runs land by round " +
            std::to_string(report.admissibility->max_landing_round) + ")";
    } else {
        report.verdict = Verdict::kUnsolvableAtDepth;
        report.detail =
            "T is not admissible for " + scenario.model->name() + ": " +
            std::to_string(report.admissibility->failures.size()) +
            " runs fail to land by round " +
            std::to_string(scenario.options.max_landing_round) +
            "; this subdivision carries no witness";
    }
    return report;
}

}  // namespace

const char* to_string(Verdict v) {
    switch (v) {
        case Verdict::kSolvable:
            return "solvable";
        case Verdict::kUnsolvableAtDepth:
            return "unsolvable-to-depth";
        case Verdict::kBudgetExhausted:
            return "budget-exhausted";
        case Verdict::kUnsupported:
            return "unsupported";
    }
    return "?";
}

std::string SolveReport::summary() const {
    std::string out = scenario + ": " + to_string(verdict);
    if (verdict == Verdict::kSolvable && witness_depth >= 0) {
        out += " at depth " + std::to_string(witness_depth);
    }
    out += ", " + std::to_string(total_backtracks) + " backtracks";
    // Learning traffic, when any happened: cross-solve pool seeding /
    // publishing and mid-flight portfolio exchange — the counters the
    // warm-start and exchange acceptance checks read off this line.
    if (counters.pool_seeded != 0 || counters.pool_published != 0) {
        out += ", pool " + std::to_string(counters.pool_seeded) +
               " seeded / " + std::to_string(counters.pool_published) +
               " published";
    }
    if (counters.exchange_published != 0 ||
        counters.exchange_imported != 0) {
        out += ", exchange " + std::to_string(counters.exchange_published) +
               " published / " +
               std::to_string(counters.exchange_imported) + " imported";
    }
    double total_ms = 0.0;
    for (const StageTiming& t : timings) total_ms += t.millis;
    out += ", " + std::to_string(static_cast<long long>(total_ms)) + " ms";
    if (!detail.empty()) out += " — " + detail;
    for (const std::string& w : warnings) out += " [warning: " + w + "]";
    return out;
}

SolveReport Engine::solve(const Scenario& scenario) const {
    require(!scenario.name.empty(), "Engine::solve: unnamed scenario");

    // Pool persistence (EngineOptions::pool_file): resolve the pool and
    // warm-start it from disk before the solve, save it back after. Any
    // file problem downgrades to a cold start with a warning — a stale
    // or mangled pool file must never take the solve down, because the
    // pool only ever accelerates; it never decides.
    std::shared_ptr<core::SharedNogoodPool> pool =
        scenario.options.nogood_pool;
    std::vector<std::string> pool_warnings;
    const std::string& pool_file = scenario.options.pool_file;
    if (!pool_file.empty()) {
        if (pool == nullptr) {
            pool = std::make_shared<core::SharedNogoodPool>();
        }
        // Only a genuinely ABSENT file is the clean, silent cold start
        // (the run that seeds it below). A file that exists but cannot
        // be opened or parsed — permissions, corruption, version skew —
        // must surface as a warning: the operator configured a
        // warm-start that is not happening.
        std::error_code ec;
        if (std::filesystem::exists(pool_file, ec) || ec) {
            const std::string err = pool->load(pool_file);
            if (!err.empty()) {
                pool_warnings.push_back(
                    "nogood-pool file rejected (" + err +
                    ") — continuing with a cold pool");
            }
        }
    }

    // Time budget (EngineOptions::time_budget_ms): materialized as a
    // CancelToken deadline the whole route observes — between wait-free
    // depths, between subdivision stages, at the CSP's backtrack
    // checkpoints, and across the portfolio race — so an over-budget
    // solve stops at the next task boundary. A caller-provided token
    // (solver.cancel) becomes the parent, so either source stops the
    // solve and the deadline never leaks into the caller's scope.
    const auto solve_start = stage_clock_now();
    core::SolverConfig solver = scenario.options.solver;
    exec::CancelToken budget_token;
    const bool budgeted = scenario.options.time_budget_ms > 0;
    if (budgeted) {
        if (solver.cancel != nullptr) {
            budget_token = exec::CancelToken::child_of(*solver.cancel);
        }
        budget_token.set_deadline_after_ms(scenario.options.time_budget_ms);
        solver.cancel = &budget_token;
    }

    SolveReport report =
        scenario.is_wait_free()
            ? solve_wait_free(scenario, solver, pool.get())
            : solve_general(scenario, solver, pool.get());
    report.warnings.insert(report.warnings.begin(), pool_warnings.begin(),
                           pool_warnings.end());

    // The promised "cancelled" stage timing: when the budget's token
    // fired, record how long the solve had run when it wound down.
    if (budgeted && budget_token.cancelled()) {
        report.timings.push_back({"cancelled", millis_since(solve_start)});
    }

    if (!pool_file.empty()) {
        const std::string err = pool->save(pool_file);
        if (!err.empty()) {
            report.warnings.push_back("nogood-pool save failed (" + err +
                                      ") — learning not persisted");
        }
    }
    return report;
}

std::vector<SolveReport> Engine::solve_batch(
    const std::vector<Scenario>& scenarios, unsigned num_threads) const {
    require(num_threads >= 1, "Engine::solve_batch: num_threads must be >= 1");
    std::vector<SolveReport> reports(scenarios.size());
    if (num_threads == 1 || scenarios.size() <= 1) {
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            reports[i] = solve(scenarios[i]);
        }
        return reports;
    }

    // Self-scheduling shards on the resident scheduler
    // (exec/for_index.h): index-slotted tasks pull the next unsolved
    // scenario off an atomic index, so long solves (an L_t pipeline)
    // overlap short ones instead of serializing behind a static
    // partition; the first task error stops the loop and is rethrown
    // after the group join. Reports land in per-index slots, so the
    // batch is identical to sequential solves at any thread count.
    exec::for_index(exec::Scheduler::shared(), scenarios.size(),
                    num_threads, [&](std::size_t i) {
                        reports[i] = solve(scenarios[i]);
                    });
    return reports;
}

}  // namespace gact::engine
