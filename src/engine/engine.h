// The unified solvability engine: one entry point for any (Task, Model)
// pair.
//
// Engine::solve dispatches a Scenario by its model:
//  * wait-free models route to the Corollary 7.1 search (core/act_solver):
//    depths k = 0..max_depth of Chr^k I are tried for a chromatic
//    carrier-preserving witness eta;
//  * every other model routes through the Theorem 6.1 "<=" construction
//    (engine/general_route): a terminating subdivision driven by the
//    scenario's StableRule, the Proposition 9.1 simplicial approximation
//    delta : K(T) -> L, and admissibility of T against the model's
//    enumerated compact run families.
// Either way the caller gets a SolveReport: a three-way verdict, the
// witness artifacts needed by downstream protocol extraction, and
// per-stage timings/backtracks. Engine::solve_batch shards many scenarios
// across a self-scheduling thread pool so whole portfolios of (task,
// model) questions run in flight.
#pragma once

#include <vector>

#include "core/act_solver.h"
#include "engine/scenario.h"

namespace gact::engine {

/// @brief The three-way outcome of a bounded solvability search (plus a
/// guard for pairs outside the engine's routes).
enum class Verdict {
    /// A verified witness was found: the task is solvable in the model.
    kSolvable,
    /// Every explored depth was searched to exhaustion without a witness.
    /// Wait-free: no Corollary 7.1 map up to max_depth (full
    /// unsolvability needs the k -> infinity limit). General: the
    /// materialized subdivision provably carries no witness — a deeper or
    /// differently-stabilized T might.
    kUnsolvableAtDepth,
    /// Inconclusive: a backtrack budget or the landing horizon ran out
    /// before the search settled.
    kBudgetExhausted,
    /// The (task, model) pair is outside the engine's routes: a
    /// non-wait-free model needs affine geometry and a StableRule.
    kUnsupported,
};

/// @brief Stable lowercase name of a verdict (for CLIs and benches).
const char* to_string(Verdict v);

/// @brief Result summary of the runtime executed-check (runtime/fuzz.h):
/// the witness, run as an actual protocol over randomized admissible
/// schedules on the SM substrate, checked against Definition 4.1.
/// @note Plain data on purpose: the engine does not depend on the
/// runtime layer; runtime::fuzz fills this in for callers that ask.
struct ExecutedCheck {
    std::size_t schedules = 0;   ///< admissible schedules executed
    std::size_t violations = 0;  ///< Definition 4.1 violations observed
    std::uint64_t seed = 0;      ///< base seed of the campaign
    /// Deterministic digest of every execution's outputs and round
    /// counts, folded in iteration order — equal across shard thread
    /// counts, the replay anchor for "same seed, same behavior".
    std::uint64_t result_digest = 0;
    bool skipped = false;  ///< no runnable witness (see detail)
    std::string detail;    ///< skip reason or first violation
};

/// @brief Wall time of one pipeline stage.
struct StageTiming {
    std::string stage;   ///< stage name, e.g. "act-search"
    double millis = 0.0; ///< wall time in milliseconds
};

/// @brief Everything Engine::solve learned about a scenario.
///
/// @note The general-route artifacts (`tsub`, `model_runs`,
/// `admissibility`) are exactly the inputs downstream protocol
/// extraction (protocol/gact_protocol.h) consumes; a solvable report is
/// a self-contained constructive proof.
struct SolveReport {
    std::string scenario;
    Verdict verdict = Verdict::kUnsupported;
    /// One-line human-readable explanation of the verdict.
    std::string detail;
    /// Non-fatal adjustments the engine made to keep the solve running
    /// (e.g. downgrading kRadial guidance on a base the exact projection
    /// does not cover). Empty on a clean run.
    std::vector<std::string> warnings;

    /// @brief The witness map: eta : Chr^k I -> O (wait-free route) or
    /// delta : K(T) -> L (general route).
    /// @note Carrier preservation is guaranteed, not incidental: the
    /// solver re-verifies every witness against its constraint
    /// complexes (check_chromatic_map) before it reaches this field.
    std::optional<core::SimplicialMap> witness;
    /// Wait-free: the k of the witness (or -1). General: the number of
    /// subdivision stages materialized.
    int witness_depth = -1;

    // Wait-free route artifacts.
    /// Chr^k I at the witness depth, when solvable.
    std::optional<topo::SubdividedComplex> wf_domain;
    /// Backtracks per depth k = 0.. (wait-free route only).
    std::vector<std::size_t> backtracks_per_depth;

    // General route artifacts (shared so batch reports stay cheap to
    // copy; all are immutable once the report is built).
    std::shared_ptr<const core::TerminatingSubdivision> tsub;
    /// The model's compact run family used for admissibility — reusable
    /// by protocol extraction (protocol/gact_protocol.h).
    std::vector<iis::Run> model_runs;
    std::optional<core::AdmissibilityReport> admissibility;

    /// Total CSP backtracks across all searches of the solve
    /// (== counters.backtracks, kept as the historical field name).
    std::size_t total_backtracks = 0;
    /// Full search/learning tallies summed across the solve's CSP runs:
    /// backtracks, nogood learning, cross-solve pool seeding/publishing
    /// and mid-flight exchange traffic (core::SearchCounters). What the
    /// summary() learning annotations and the benches read.
    core::SearchCounters counters;
    /// Per-stage wall times, in pipeline order.
    std::vector<StageTiming> timings;

    /// Filled by runtime::attach_executed_check when the caller fuzzes
    /// the witness after solving; absent on a plain Engine::solve.
    std::optional<ExecutedCheck> executed_check;

    bool solvable() const { return verdict == Verdict::kSolvable; }
    /// One-line report summary for CLIs and benches.
    std::string summary() const;
};

/// @brief The engine facade.
///
/// @note Stateless: scenarios carry their own budgets, so one Engine
/// serves any mix of them, and solve() is safe to call concurrently
/// (per-solve caches are created per call, never shared).
class Engine {
public:
    /// @brief Solve one scenario; never throws for unsupported pairs
    /// (see Verdict::kUnsupported) but propagates precondition
    /// violations of malformed tasks.
    SolveReport solve(const Scenario& scenario) const;

    /// @brief Solve many scenarios as index-slotted tasks on the
    /// resident scheduler (exec/for_index.h), at most `num_threads` in
    /// flight, pulled off a self-scheduling atomic work index; the
    /// first task error stops the loop and is rethrown. Reports come
    /// back in input order and are identical to sequential solves
    /// regardless of shard order.
    std::vector<SolveReport> solve_batch(
        const std::vector<Scenario>& scenarios,
        unsigned num_threads = 1) const;
};

}  // namespace gact::engine
