#include "engine/executable.h"

#include "iis/projection.h"
#include "util/require.h"

namespace gact::engine {

namespace {

/// core::view_of_vertex with inputs: the depth-0 view of a Chr^0 vertex
/// carries that vertex as its input (Section 4.3) when the task has a
/// non-trivial input complex, matching the views the executor's
/// processes build from their assigned input vertices.
iis::ViewId view_of_vertex(iis::SubdivisionChain& chain,
                           iis::ViewArena& arena, std::size_t k,
                           topo::VertexId vertex, bool with_inputs) {
    const topo::SubdividedComplex& level = chain.level(k);
    if (k == 0) {
        return arena.make_initial(
            level.complex().color(vertex),
            with_inputs ? std::optional<topo::VertexId>(vertex)
                        : std::nullopt);
    }
    const topo::SubdividedComplex::Provenance& prov =
        level.provenance(vertex);
    std::vector<iis::ViewId> seen;
    seen.reserve(prov.parent_simplex.size());
    for (topo::VertexId w : prov.parent_simplex.vertices()) {
        seen.push_back(view_of_vertex(chain, arena, k - 1, w, with_inputs));
    }
    return arena.make_view(level.complex().color(vertex), std::move(seen));
}

}  // namespace

std::unique_ptr<runtime::DecisionRule> make_decision_rule(
    const Scenario& scenario, const SolveReport& report) {
    require(report.solvable() && report.witness.has_value(),
            "make_decision_rule: report carries no witness");
    if (scenario.is_wait_free()) {
        require(report.witness_depth >= 0 && report.wf_domain.has_value(),
                "make_decision_rule: wait-free report without domain");
        const std::size_t d = static_cast<std::size_t>(report.witness_depth);
        auto table = std::make_unique<runtime::TableRule>(
            "eta@" + std::to_string(d) + "(" + scenario.name + ")", d);
        iis::SubdivisionChain chain(scenario.task.inputs);
        iis::ViewArena arena;
        const bool with_inputs = !scenario.task.is_inputless();
        for (topo::VertexId v : chain.level(d).complex().vertex_ids()) {
            require(report.witness->is_defined_at(v),
                    "make_decision_rule: witness undefined at a Chr^" +
                        std::to_string(d) + " vertex");
            table->insert(
                runtime::canonical_view_key(
                    arena, view_of_vertex(chain, arena, d, v, with_inputs)),
                report.witness->apply(v));
        }
        return table;
    }
    require(report.tsub != nullptr,
            "make_decision_rule: general report without subdivision");
    return std::make_unique<runtime::LandingDecisionRule>(report.tsub,
                                                          *report.witness);
}

}  // namespace gact::engine
