// Witness -> executable protocol adapter: the bridge from a SolveReport
// (a topological witness) to a runtime::DecisionRule the execution
// runtime can run as n simulated processes.
//
// Wait-free route: eta : Chr^d I -> O is tabulated into a TableRule over
// canonical view keys via the view <-> Chr^d vertex bijection (the same
// provenance recursion as core/protocol_to_map.h, extended to carry
// depth-0 input vertices for tasks with inputs). General route: the
// witness delta : K(T) -> L is wrapped into the on-the-fly view-local
// landing rule, which covers any admissible schedule — not only the
// compact run family the engine enumerated for admissibility.
#pragma once

#include <memory>

#include "engine/engine.h"
#include "runtime/executor.h"

namespace gact::engine {

/// Build the executable decision rule for a solvable report's witness.
/// Requires report.solvable() with the route artifacts present
/// (wf_domain for the wait-free route, tsub for the general route).
std::unique_ptr<runtime::DecisionRule> make_decision_rule(
    const Scenario& scenario, const SolveReport& report);

}  // namespace gact::engine
