#include "engine/general_route.h"

#include "engine/stage_clock.h"
#include "exec/cancel.h"

namespace gact::engine {

GeneralWitness build_general_witness(const tasks::AffineTask& task,
                                     const StableRule& rule,
                                     std::size_t stages, bool fix_identity,
                                     core::LtGuidance guidance,
                                     const core::SolverConfig& solver,
                                     unsigned shard_threads,
                                     core::SharedNogoodPool* nogood_pool) {
    GeneralWitness out;
    auto start = stage_clock_now();
    out.tsub = core::TerminatingSubdivision(task.task.inputs);
    for (std::size_t i = 0; i < stages; ++i) {
        // Task-boundary cancellation (SolverConfig::cancel): check
        // BETWEEN stages only — never inside a stage's facet tasks,
        // whose deterministic stable-set merge must see every facet.
        // A stage cut short here leaves a coarser-but-valid T; the
        // empty-stable or no-delta verdicts below report the budget.
        if (solver.cancel != nullptr && solver.cancel->cancelled()) {
            break;
        }
        out.tsub.advance(
            [&rule](const core::SubdividedComplex& cx,
                    const topo::Simplex& s) { return rule.stable(cx, s); },
            shard_threads);
    }
    out.subdivision_millis = millis_since(start);
    if (out.tsub.stable_complex().is_empty()) return out;

    start = stage_clock_now();
    // The carrier-keyed LRU memoizes the constraint complexes the
    // approximation CSP asks for; it must outlive the solve below.
    core::AllowedComplexLru lru(solver.allowed_lru_capacity);
    const core::ChromaticMapProblem problem =
        core::lt_approximation_problem(
            task, out.tsub, fix_identity, guidance,
            solver.allowed_lru_capacity > 0 ? &lru : nullptr, nogood_pool,
            rule.name());
    const core::ChromaticMapResult result =
        core::solve_chromatic_map(problem, solver);
    out.approximation_millis = millis_since(start);
    out.counters = result.counters;
    out.exhausted = result.exhausted;
    if (result.map.has_value()) out.delta = *result.map;
    return out;
}

}  // namespace gact::engine
