// The general-model witness construction (Theorem 6.1, "<=" direction,
// stages 2-4 of the Section 9.2 pipeline), parameterized by a StableRule.
//
// Given an affine task and a stabilization strategy, materialize the
// terminating subdivision T stage by stage, then search for the chromatic
// carrier-preserving approximation delta : K(T) -> L (Proposition 9.1 /
// Theorem 8.4). Admissibility against a model's run families — stage 5 —
// lives with the engine, which owns the model; this module is purely the
// topological construction. core::build_lt_pipeline is a thin shim over
// this function with LtStableRule, kept for compatibility.
#pragma once

#include "core/lt_pipeline.h"
#include "engine/stable_rule.h"

namespace gact::engine {

/// The constructed witness (or the evidence that none was found).
struct GeneralWitness {
    core::TerminatingSubdivision tsub;  ///< T, materialized
    std::optional<core::SimplicialMap> delta;  ///< K(T) -> L if found
    /// Approximation-CSP effort and learning tallies (backtracks,
    /// nogood/pool/exchange activity — see core::SearchCounters).
    core::SearchCounters counters;
    /// True when the CSP search space was exhausted (no approximation
    /// exists for this T); false when the budget ran out first. Only
    /// meaningful when `delta` is empty.
    bool exhausted = false;
    /// Wall time of the two stages, for SolveReport timings.
    double subdivision_millis = 0.0;
    double approximation_millis = 0.0;
};

/// Materialize `stages` advance() steps of the terminating subdivision of
/// the task's input complex under `rule`, then search for delta. Rules are
/// consulted from stage 0 on — the L_t convention of two unconditional
/// Chr stages is the rule's own business (lt_stable_rule rejects depths
/// < 2), so build_lt_pipeline's 2 + extra_stages maps to stages here.
/// If no simplex ever stabilizes, the returned witness has an empty
/// stable complex and no delta (the CSP is not attempted).
///
/// `shard_threads > 1` splits the terminating-subdivision stage into
/// per-facet work units on a self-scheduling thread pool (the
/// stabilization scan and the per-parent-facet subdivision build of each
/// advance; see topology/subdivision.h). The sharded build is
/// bit-identical to the sequential one — work units are merged in facet
/// order — so it changes wall clock only. The approximation stage is
/// parallelized separately by `solver.num_threads` (portfolio race).
///
/// `nogood_pool`, when non-null, wires cross-solve conflict reuse into
/// the approximation CSP (see core::lt_approximation_problem).
GeneralWitness build_general_witness(const tasks::AffineTask& task,
                                     const StableRule& rule,
                                     std::size_t stages, bool fix_identity,
                                     core::LtGuidance guidance,
                                     const core::SolverConfig& solver,
                                     unsigned shard_threads = 1,
                                     core::SharedNogoodPool* nogood_pool =
                                         nullptr);

}  // namespace gact::engine
