#include "engine/report_json.h"

#include <cstdio>
#include <functional>

#include "engine/scenario_registry.h"

namespace gact::engine {

std::uint64_t witness_digest(const core::SimplicialMap& map) {
    // XOR of a splitmix64-style mix of each (vertex, image) pair:
    // order-independent (the map iterates in unspecified order) and
    // fully specified — no std::hash, whose output is implementation-
    // defined and would make digests differ across standard libraries.
    // (The CLI's original digest multiplied (hash | 1) by a constant,
    // which collided pairs differing only in their lowest bit.)
    std::uint64_t digest = 0x9e3779b97f4a7c15ULL;
    for (const auto& [v, w] : map.vertex_map()) {
        std::uint64_t x = (static_cast<std::uint64_t>(v) << 32) | w;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        digest ^= x;
    }
    return digest;
}

std::string witness_digest_hex(const core::SimplicialMap& map) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(witness_digest(map)));
    return buf;
}

// Every SearchCounters field crosses the wire; a new one must be added
// to counters_to_json below AND to the round-trip assertions in
// tests/report_json_test.cpp, then this count bumped (the same guard
// idiom as SearchCounters::add in chromatic_csp.cpp).
static_assert(sizeof(core::SearchCounters) == 12 * sizeof(std::size_t),
              "SearchCounters gained or lost a field: update "
              "counters_to_json(), the report_json round-trip test, and "
              "this count");

util::Json counters_to_json(const core::SearchCounters& c) {
    util::Json out = util::Json::object();
    out.set("backtracks", c.backtracks);
    out.set("nogood_prunings", c.nogood_prunings);
    out.set("nogoods_recorded", c.nogoods_recorded);
    out.set("nogoods_evicted", c.nogoods_evicted);
    out.set("restarts", c.restarts);
    out.set("backjumps", c.backjumps);
    out.set("pool_seeded", c.pool_seeded);
    out.set("pool_published", c.pool_published);
    out.set("exchange_published", c.exchange_published);
    out.set("exchange_imported", c.exchange_imported);
    out.set("eval_cache_hits", c.eval_cache_hits);
    out.set("eval_cache_misses", c.eval_cache_misses);
    return out;
}

namespace {

std::string hex16(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace

util::Json report_to_json(const SolveReport& report) {
    util::Json out = util::Json::object();
    out.set("scenario", report.scenario);
    out.set("verdict", to_string(report.verdict));
    out.set("detail", report.detail);
    if (!report.warnings.empty()) {
        util::Json warnings = util::Json::array();
        for (const std::string& w : report.warnings) warnings.push_back(w);
        out.set("warnings", std::move(warnings));
    }
    out.set("witness_depth", static_cast<std::int64_t>(report.witness_depth));
    if (report.witness.has_value()) {
        util::Json witness = util::Json::object();
        witness.set("digest", witness_digest_hex(*report.witness));
        witness.set("vertices", report.witness->size());
        out.set("witness", std::move(witness));
    }
    out.set("total_backtracks", report.total_backtracks);
    out.set("counters", counters_to_json(report.counters));
    util::Json timings = util::Json::array();
    for (const StageTiming& t : report.timings) {
        util::Json stage = util::Json::object();
        stage.set("stage", t.stage);
        stage.set("millis", t.millis);
        timings.push_back(std::move(stage));
    }
    out.set("timings", std::move(timings));
    if (report.executed_check.has_value()) {
        const ExecutedCheck& ec = *report.executed_check;
        util::Json check = util::Json::object();
        check.set("schedules", ec.schedules);
        check.set("violations", ec.violations);
        check.set("seed", static_cast<std::int64_t>(ec.seed));
        check.set("result_digest", hex16(ec.result_digest));
        check.set("skipped", ec.skipped);
        check.set("detail", ec.detail);
        out.set("executed_check", std::move(check));
    }
    out.set("summary", report.summary());
    return out;
}

namespace {

/// One overridable knob: validate the JSON value's type/range and
/// assign. Each returns "" or a diagnostic naming the key.
std::string expect_uint(const util::Json& v, const char* key,
                        std::size_t& out) {
    if (!v.is_int() || v.as_int() < 0) {
        return std::string("option '") + key +
               "' must be a non-negative integer";
    }
    out = static_cast<std::size_t>(v.as_int());
    return "";
}

std::string expect_bool(const util::Json& v, const char* key, bool& out) {
    if (!v.is_bool()) {
        return std::string("option '") + key + "' must be a boolean";
    }
    out = v.as_bool();
    return "";
}

}  // namespace

std::string apply_options_json(const util::Json& overrides,
                               EngineOptions& options) {
    if (!overrides.is_object()) {
        return "'options' must be a JSON object";
    }
    for (const auto& [key, value] : overrides.as_object()) {
        std::string err;
        std::size_t u = 0;
        bool b = false;
        if (key == "max_depth") {
            err = expect_uint(value, key.c_str(), u);
            if (err.empty()) options.max_depth = static_cast<int>(u);
        } else if (key == "subdivision_stages") {
            err = expect_uint(value, key.c_str(), u);
            if (err.empty()) options.subdivision_stages = u;
        } else if (key == "max_backtracks") {
            err = expect_uint(value, key.c_str(), u);
            if (err.empty()) options.solver.max_backtracks = u;
        } else if (key == "num_threads") {
            err = expect_uint(value, key.c_str(), u);
            if (err.empty() && u == 0) {
                err = "option 'num_threads' must be >= 1";
            }
            if (err.empty()) {
                options.solver.num_threads = static_cast<unsigned>(u);
            }
        } else if (key == "shard_threads") {
            err = expect_uint(value, key.c_str(), u);
            if (err.empty() && u == 0) {
                err = "option 'shard_threads' must be >= 1";
            }
            if (err.empty()) {
                options.shard_threads = static_cast<unsigned>(u);
            }
        } else if (key == "fix_identity") {
            err = expect_bool(value, key.c_str(), b);
            if (err.empty()) options.fix_identity = b;
        } else if (key == "run_prefix_depth") {
            err = expect_uint(value, key.c_str(), u);
            if (err.empty()) {
                options.run_prefix_depth = static_cast<std::uint32_t>(u);
            }
        } else if (key == "max_landing_round") {
            err = expect_uint(value, key.c_str(), u);
            if (err.empty()) options.max_landing_round = u;
        } else if (key == "time_budget_ms") {
            err = expect_uint(value, key.c_str(), u);
            if (err.empty()) options.time_budget_ms = u;
        } else if (key == "nogood_learning") {
            err = expect_bool(value, key.c_str(), b);
            if (err.empty()) options.solver.nogood_learning = b;
        } else if (key == "restarts") {
            err = expect_bool(value, key.c_str(), b);
            if (err.empty()) options.solver.restarts = b;
        } else if (key == "nogood_gc") {
            err = expect_bool(value, key.c_str(), b);
            if (err.empty()) options.solver.nogood_gc = b;
        } else if (key == "backjumping") {
            err = expect_bool(value, key.c_str(), b);
            if (err.empty()) options.solver.backjumping = b;
        } else if (key == "live_exchange") {
            err = expect_bool(value, key.c_str(), b);
            if (err.empty()) options.solver.live_exchange = b;
        } else {
            err = "unknown option '" + key + "'";
        }
        if (!err.empty()) return err;
    }
    return "";
}

std::optional<Scenario> scenario_from_request(const util::Json& request,
                                              std::string* error) {
    const auto fail = [&](std::string what) -> std::optional<Scenario> {
        if (error != nullptr) *error = std::move(what);
        return std::nullopt;
    };
    if (!request.is_object()) return fail("request must be a JSON object");
    const util::Json* name = request.find("scenario");
    if (name == nullptr || !name->is_string() ||
        name->as_string().empty()) {
        return fail("request needs a non-empty string 'scenario' field");
    }
    // The registry resolves registered names (including the legacy
    // aliases) and any canonical family name (`lt-3-1-res1` style); its
    // diagnostic cites the family grammar for near-miss names and the
    // grammar summary plus registered names otherwise.
    const ScenarioRegistry& registry = ScenarioRegistry::standard();
    std::string why;
    std::optional<Scenario> scenario =
        registry.find(name->as_string(), &why);
    if (!scenario.has_value()) {
        return fail("unknown scenario '" + name->as_string() + "': " +
                    why);
    }
    if (const util::Json* overrides = request.find("options")) {
        const std::string err =
            apply_options_json(*overrides, scenario->options);
        if (!err.empty()) return fail(err);
    }
    return scenario;
}

}  // namespace gact::engine
