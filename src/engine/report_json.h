// The engine's JSON surface: one serialization of SolveReport and one
// parser of scenario requests, shared by every consumer.
//
// Two surfaces speak engine results over text: the service layer
// (src/service/) answers solve requests with serialized SolveReports,
// and example_engine_cli --json prints the same objects to stdout. Both
// call report_to_json(), so the wire format and the CLI format are one
// definition that cannot drift. The same goes for the request side:
// scenario_from_request() resolves a registry name plus inline
// EngineOptions overrides into a ready-to-solve Scenario, and is the
// single interpreter of the {"scenario": ..., "options": {...}} shape.
//
// The witness itself stays out of the JSON (a subdivision-depth vertex
// map is megabytes of rationals nobody diffs); what crosses the wire is
// its order-independent digest — the same digest example_engine_cli has
// always printed, now computed by witness_digest() here so the CLI, the
// service, and the e2e gates compare one canonical value.
#pragma once

#include <cstdint>
#include <string>

#include "engine/engine.h"
#include "util/json.h"

namespace gact::engine {

/// Order-independent FNV-style digest of a witness's vertex map: two
/// processes assert bit-identical witnesses by comparing one value (an
/// unordered_map's iteration order is not stable across processes; XOR
/// of per-pair hashes is).
std::uint64_t witness_digest(const core::SimplicialMap& map);

/// witness_digest() as the canonical 16-hex-digit string.
std::string witness_digest_hex(const core::SimplicialMap& map);

/// Every SearchCounters field as a JSON object (a static_assert in
/// report_json.cpp pins the field count so a new counter cannot be
/// silently dropped from the format). Shared by report_to_json and the
/// service's cumulative-stats reply.
util::Json counters_to_json(const core::SearchCounters& c);

/// Serialize a report for the wire / --json: scenario, verdict, detail,
/// warnings, witness digest + vertex count (when present), every
/// SearchCounters field, per-stage timings, and the human summary()
/// line.
util::Json report_to_json(const SolveReport& report);

/// Apply inline overrides from a JSON object onto `options`. Accepted
/// keys (the request-facing subset of EngineOptions — knobs that shape
/// budgets and strategy, not ones that alias server-owned resources
/// like nogood_pool/pool_file): "max_depth", "subdivision_stages",
/// "max_backtracks", "num_threads", "shard_threads", "fix_identity",
/// "run_prefix_depth", "max_landing_round", "time_budget_ms",
/// "nogood_learning", "restarts", "nogood_gc", "backjumping",
/// "live_exchange".
/// Returns "" on success, else a diagnostic naming the offending key
/// (unknown keys are errors: a typo must not silently solve with
/// defaults).
std::string apply_options_json(const util::Json& overrides,
                               EngineOptions& options);

/// Resolve a solve-request JSON object into a Scenario: {"scenario":
/// "<registry name>"} selects from ScenarioRegistry::standard(), and an
/// optional {"options": {...}} object applies apply_options_json()
/// overrides on top of the scenario's registered defaults. On failure
/// `error` gets a diagnostic (for an unknown name it includes the
/// sorted list of registered names) and nullopt is returned.
std::optional<Scenario> scenario_from_request(const util::Json& request,
                                              std::string* error);

}  // namespace gact::engine
