#include "engine/scenario.h"

#include "util/require.h"

namespace gact::engine {

Scenario Scenario::wait_free(std::string name, tasks::Task task,
                             EngineOptions options) {
    Scenario s;
    s.name = std::move(name);
    s.task = std::move(task);
    s.model = std::make_shared<iis::WaitFreeModel>();
    s.options = std::move(options);
    return s;
}

Scenario Scenario::general(std::string name, tasks::AffineTask affine,
                           std::shared_ptr<const iis::Model> model,
                           std::shared_ptr<const StableRule> rule,
                           EngineOptions options) {
    require(model != nullptr, "Scenario::general: missing model");
    require(rule != nullptr, "Scenario::general: missing stable rule");
    Scenario s;
    s.name = std::move(name);
    s.task = affine.task;
    s.affine = std::move(affine);
    s.model = std::move(model);
    s.options = std::move(options);
    s.options.stable_rule = std::move(rule);
    return s;
}

bool Scenario::is_wait_free() const {
    return model == nullptr ||
           dynamic_cast<const iis::WaitFreeModel*>(model.get()) != nullptr;
}

}  // namespace gact::engine
