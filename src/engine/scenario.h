// Scenarios: the unified (Task, Model) problem statement of GACT.
//
// Theorem 6.1 parameterizes solvability of a task T by an arbitrary
// sub-IIS model M. A Scenario packages one such pair together with the
// search budgets, so every entry point of the library — the examples, the
// benches, the CLI driver, and Engine::solve_batch — consumes the same
// value type instead of hand-rolling its own driver per model.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/chromatic_csp.h"
#include "core/lt_pipeline.h"
#include "engine/stable_rule.h"
#include "iis/models.h"
#include "tasks/affine_task.h"

namespace gact::engine {

/// @brief Per-scenario search budgets and strategy knobs. The defaults
/// are the historical values of the rewritten callers.
struct EngineOptions {
    /// @brief Wait-free route: Corollary 7.1 search depths
    /// k = 0..max_depth.
    int max_depth = 3;

    /// @brief CSP engine for every witness search (both routes).
    /// @note The solver's incremental layers (evaluation cache, nogood
    /// learning, carrier LRU — see core/eval_cache.h and
    /// core/nogood_store.h) are configured here too; they are on by
    /// default and provably verdict/witness-preserving.
    core::SolverConfig solver = core::SolverConfig::fast();

    /// General route: stabilization strategy for the terminating
    /// subdivision. Required for non-wait-free models on affine tasks.
    std::shared_ptr<const StableRule> stable_rule;

    /// General route: total TerminatingSubdivision::advance() steps. The
    /// L_t pipeline's 2 + extra_stages convention maps here directly
    /// (lt_stable_rule is inert below depth 2).
    std::size_t subdivision_stages = 4;

    /// General route: pre-assign delta as the identity on the stable
    /// vertices lying in L (the R_0 part of K(T)).
    bool fix_identity = true;

    /// General route: candidate ordering for the approximation CSP.
    /// kRadial is the exact radial projection of the L_t (n = 2, t = 1)
    /// geometry: on any other base dimension the engine downgrades the
    /// request to the default ordering and records the downgrade in
    /// SolveReport::warnings instead of aborting mid-solve. On a
    /// *different* 3-process geometry the projection's preconditions may
    /// still not hold and Engine::solve will propagate the
    /// precondition_error — request kNearest for custom affine tasks.
    core::LtGuidance guidance = core::LtGuidance::kNearest;

    /// @brief Cross-solve nogood reuse (core/nogood_store.h): when set,
    /// every CSP the scenario runs seeds from and publishes to this pool
    /// under a scope derived from the problem's identity, so repeated
    /// solves of the same construction — re-runs, equivalence sweeps,
    /// scenarios differing only in their model — skip conflicts already
    /// proven. Share one pool across scenarios freely: scoping keeps
    /// distinct problems apart. Null disables reuse. Verdict- and
    /// witness-preserving (pruning only).
    std::shared_ptr<core::SharedNogoodPool> nogood_pool;

    /// @brief Pool persistence (core/nogood_store.h, save/load): when
    /// non-empty, the solve warm-starts by loading this pool file into
    /// its SharedNogoodPool (a per-solve pool is created when
    /// `nogood_pool` is null) and saves the pool back afterwards, so a
    /// fresh process replays every conflict an earlier one proved — the
    /// second process finds the bit-identical witness with 0
    /// backtracks. A missing file is a clean cold start; an unreadable,
    /// corrupted, or version-mismatched file downgrades to a cold start
    /// with a SolveReport::warnings entry, never an abort. Batch
    /// drivers sharing one pool across scenarios (example_engine_cli
    /// --pool-file) should load/save once themselves instead of setting
    /// this per scenario: per-solve saves of a shared file would race.
    std::string pool_file;

    /// @brief Intra-scenario sharding (general route): split each
    /// terminating-subdivision stage into per-facet work units across
    /// this many self-scheduling threads. Bit-identical to 1-thread
    /// builds; wall clock only. (The approximation CSP parallelizes
    /// separately via solver.num_threads.)
    unsigned shard_threads = 1;

    /// General route: depth of the arbitrary-schedule prefix of the
    /// enumerated compact run families M_D (iis/run_enumeration.h).
    std::uint32_t run_prefix_depth = 1;

    /// General route: admissibility landing horizon (Theorem 6.1 (a)).
    std::size_t max_landing_round = 8;

    /// @brief Wall-clock budget of the whole solve, in milliseconds
    /// (0 = none). Enforced through a CancelToken deadline
    /// (exec/cancel.h) observed at every task boundary — between
    /// wait-free depths, between subdivision stages, at the CSP's
    /// backtrack checkpoints, and across the portfolio race — so an
    /// over-budget solve stops at the next boundary instead of only
    /// when a backtrack budget runs out. A solve cut short reports
    /// Verdict::kBudgetExhausted plus a "cancelled" stage timing. The
    /// solve server maps a request's queue-wait deadline here, so long
    /// solves are cut mid-flight rather than served late.
    std::size_t time_budget_ms = 0;
};

/// @brief One solvability question: does `model` solve `task`?
struct Scenario {
    std::string name;
    std::string description;

    /// @brief The task T = (I, O, Delta).
    tasks::Task task;

    /// @brief Geometry when T is affine (Section 4.2): required by the
    /// general route (terminating subdivision + simplicial
    /// approximation), unused by the wait-free route.
    /// @note Invariant: when set, `task` equals `affine->task` — the
    /// factories maintain this; hand-built scenarios must too.
    std::optional<tasks::AffineTask> affine;

    /// @brief The sub-IIS model M. Null means wait-free (all runs).
    std::shared_ptr<const iis::Model> model;

    EngineOptions options;

    /// @brief Excluded from the quick registry sets (minutes-scale builds, e.g.
    /// L_t at n = 3); runnable by name from the CLI.
    bool heavy = false;

    /// @brief A wait-free scenario: Corollary 7.1 search on `task`.
    static Scenario wait_free(std::string name, tasks::Task task,
                              EngineOptions options = {});

    /// @brief A general-model scenario on an affine task; `rule` drives
    /// the terminating subdivision.
    static Scenario general(std::string name, tasks::AffineTask affine,
                            std::shared_ptr<const iis::Model> model,
                            std::shared_ptr<const StableRule> rule,
                            EngineOptions options = {});

    /// @brief Does the scenario's model mean wait-free (route
    /// selector)? True for a null model and for iis::WaitFreeModel.
    bool is_wait_free() const;
};

}  // namespace gact::engine
