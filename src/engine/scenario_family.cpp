#include "engine/scenario_family.h"

#include <algorithm>

#include "tasks/standard_tasks.h"
#include "util/require.h"

namespace gact::engine {

/// Canonical decimal: nonempty, digits only, no leading zero (so every
/// accepted spelling re-encodes bit-identically), fits in int.
bool parse_canonical_int(const std::string& text, int& out) {
    if (text.empty() || text.size() > 9) return false;
    if (text.size() > 1 && text[0] == '0') return false;
    int value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') return false;
        value = value * 10 + (c - '0');
    }
    out = value;
    return true;
}

namespace {

std::vector<std::string> split_dashes(const std::string& name) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t dash = name.find('-', start);
        if (dash == std::string::npos) {
            out.push_back(name.substr(start));
            return out;
        }
        out.push_back(name.substr(start, dash - start));
        start = dash + 1;
    }
}

}  // namespace

ScenarioFamily::ScenarioFamily(std::string key, std::string description,
                               std::string constraints_doc,
                               std::vector<NameSegment> pattern,
                               std::vector<FamilyParam> params,
                               std::vector<FamilyModel> models,
                               ValidateFn validate, HeavyFn heavy,
                               InstantiateFn instantiate)
    : key_(std::move(key)),
      description_(std::move(description)),
      constraints_doc_(std::move(constraints_doc)),
      pattern_(std::move(pattern)),
      params_(std::move(params)),
      models_(std::move(models)),
      validate_(std::move(validate)),
      heavy_(std::move(heavy)),
      instantiate_(std::move(instantiate)) {
    require(!pattern_.empty() && static_cast<bool>(instantiate_),
            "ScenarioFamily: empty pattern or null instantiate");
    if (!validate_) validate_ = [](const FamilyInstance&) { return ""; };
    if (!heavy_) heavy_ = [](const FamilyInstance&) { return false; };
}

std::string ScenarioFamily::grammar() const {
    std::string out;
    for (const NameSegment& seg : pattern_) {
        if (!out.empty()) out += "-";
        switch (seg.kind) {
            case NameSegment::Kind::kLiteral:
                out += seg.text;
                break;
            case NameSegment::Kind::kParam:
                out += "<" + params_[seg.param].name + ">";
                break;
            case NameSegment::Kind::kPrefixedParam:
                out += seg.text + "<" + params_[seg.param].name + ">";
                break;
            case NameSegment::Kind::kModel: {
                std::string alts;
                for (const FamilyModel& m : models_) {
                    if (!alts.empty()) alts += "|";
                    alts += m.token;
                    if (m.has_arg) alts += "<" + m.token.substr(0, 1) + ">";
                }
                out += "<" + alts + ">";
                break;
            }
        }
    }
    return out;
}

std::string ScenarioFamily::grammar_help() const {
    std::string out = grammar() + " — " + description_;
    std::string ranges;
    for (const FamilyParam& p : params_) {
        if (!ranges.empty()) ranges += ", ";
        ranges += p.name + " in [" + std::to_string(p.min) + ".." +
                  std::to_string(p.max) + "] (" + p.doc + ")";
    }
    for (const FamilyModel& m : models_) {
        if (!m.has_arg) continue;
        if (!ranges.empty()) ranges += ", ";
        ranges += m.token + " arg in [" + std::to_string(m.arg_min) + ".." +
                  std::to_string(m.arg_max) + "]";
    }
    if (!ranges.empty()) out += "\n      " + ranges;
    if (!constraints_doc_.empty()) out += "; " + constraints_doc_;
    return out;
}

std::string ScenarioFamily::encode(const FamilyInstance& inst) const {
    std::string out;
    for (const NameSegment& seg : pattern_) {
        if (!out.empty()) out += "-";
        switch (seg.kind) {
            case NameSegment::Kind::kLiteral:
                out += seg.text;
                break;
            case NameSegment::Kind::kParam:
                out += std::to_string(inst.params[seg.param]);
                break;
            case NameSegment::Kind::kPrefixedParam:
                out += seg.text + std::to_string(inst.params[seg.param]);
                break;
            case NameSegment::Kind::kModel: {
                out += inst.model_token;
                for (const FamilyModel& m : models_) {
                    if (m.token == inst.model_token && m.has_arg) {
                        out += std::to_string(inst.model_arg);
                    }
                }
                break;
            }
        }
    }
    return out;
}

bool ScenarioFamily::claims(const std::string& name) const {
    const std::vector<std::string> tokens = split_dashes(name);
    for (std::size_t i = 0; i < pattern_.size(); ++i) {
        if (pattern_[i].kind != NameSegment::Kind::kLiteral) return true;
        if (i >= tokens.size() || tokens[i] != pattern_[i].text) {
            return false;
        }
    }
    return true;  // all-literal pattern fully matched
}

std::optional<FamilyInstance> ScenarioFamily::parse(
    const std::string& name, std::string* error) const {
    const auto fail = [&](std::string what) -> std::optional<FamilyInstance> {
        if (error != nullptr) {
            *error = "'" + name + "' does not match " + key_ +
                     " family grammar " + grammar() + ": " + std::move(what);
        }
        return std::nullopt;
    };
    const std::vector<std::string> tokens = split_dashes(name);
    if (tokens.size() != pattern_.size()) {
        return fail("expected " + std::to_string(pattern_.size()) +
                    " '-'-separated segments, got " +
                    std::to_string(tokens.size()));
    }
    FamilyInstance inst;
    inst.family = key_;
    inst.params.assign(params_.size(), 0);
    for (std::size_t i = 0; i < pattern_.size(); ++i) {
        const NameSegment& seg = pattern_[i];
        const std::string& tok = tokens[i];
        switch (seg.kind) {
            case NameSegment::Kind::kLiteral:
                if (tok != seg.text) {
                    return fail("segment " + std::to_string(i + 1) +
                                " must be '" + seg.text + "'");
                }
                break;
            case NameSegment::Kind::kParam:
                if (!parse_canonical_int(tok, inst.params[seg.param])) {
                    return fail("segment '" + tok +
                                "' is not a canonical integer for "
                                "parameter " +
                                params_[seg.param].name);
                }
                break;
            case NameSegment::Kind::kPrefixedParam:
                if (tok.rfind(seg.text, 0) != 0 ||
                    !parse_canonical_int(tok.substr(seg.text.size()),
                                         inst.params[seg.param])) {
                    return fail("segment '" + tok + "' must be " + seg.text +
                                "<" + params_[seg.param].name + ">");
                }
                break;
            case NameSegment::Kind::kModel: {
                const FamilyModel* match = nullptr;
                for (const FamilyModel& m : models_) {
                    if (tok.rfind(m.token, 0) != 0) continue;
                    // Longest-token match (none of the standard tokens
                    // prefix each other, but stay order-independent).
                    if (match == nullptr ||
                        m.token.size() > match->token.size()) {
                        match = &m;
                    }
                }
                if (match == nullptr) {
                    return fail("unknown model token '" + tok + "'");
                }
                inst.model_token = match->token;
                const std::string arg = tok.substr(match->token.size());
                if (!match->has_arg) {
                    if (!arg.empty()) {
                        return fail("model '" + match->token +
                                    "' takes no argument, got '" + tok +
                                    "'");
                    }
                } else if (!parse_canonical_int(arg, inst.model_arg)) {
                    return fail("model '" + match->token +
                                "' needs a canonical integer argument, "
                                "got '" +
                                tok + "'");
                }
                break;
            }
        }
    }
    const std::string verr = validate(inst);
    if (!verr.empty()) {
        if (error != nullptr) {
            *error = "'" + name + "' is out of the " + key_ +
                     " family's range: " + verr + "\n    " + grammar_help();
        }
        return std::nullopt;
    }
    return inst;
}

std::string ScenarioFamily::validate(const FamilyInstance& inst) const {
    if (inst.params.size() != params_.size()) {
        return "expected " + std::to_string(params_.size()) +
               " parameters, got " + std::to_string(inst.params.size());
    }
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const FamilyParam& p = params_[i];
        if (inst.params[i] < p.min || inst.params[i] > p.max) {
            return "parameter " + p.name + "=" +
                   std::to_string(inst.params[i]) + " outside [" +
                   std::to_string(p.min) + ".." + std::to_string(p.max) +
                   "]";
        }
    }
    if (models_.empty()) {
        if (!inst.model_token.empty()) {
            return "family " + key_ + " has no model axis";
        }
    } else {
        const FamilyModel* match = nullptr;
        for (const FamilyModel& m : models_) {
            if (m.token == inst.model_token) match = &m;
        }
        if (match == nullptr) {
            return "unknown model token '" + inst.model_token + "'";
        }
        if (match->has_arg && (inst.model_arg < match->arg_min ||
                               inst.model_arg > match->arg_max)) {
            return "model argument " + match->token +
                   std::to_string(inst.model_arg) + " outside [" +
                   std::to_string(match->arg_min) + ".." +
                   std::to_string(match->arg_max) + "]";
        }
    }
    return validate_(inst);
}

std::string ScenarioFamily::describe(const FamilyInstance& inst) const {
    std::string out = description_ + " (";
    for (std::size_t i = 0; i < params_.size(); ++i) {
        if (i != 0) out += ", ";
        out += params_[i].name + "=" + std::to_string(inst.params[i]);
    }
    if (!inst.model_token.empty()) {
        out += ", model=" + inst.model_token;
        for (const FamilyModel& m : models_) {
            if (m.token == inst.model_token && m.has_arg) {
                out += std::to_string(inst.model_arg);
            }
        }
    }
    return out + ")";
}

util::Json ScenarioFamily::schema_json() const {
    util::Json out = util::Json::object();
    out.set("family", key_);
    out.set("description", description_);
    out.set("grammar", grammar());
    util::Json params = util::Json::array();
    for (const FamilyParam& p : params_) {
        util::Json j = util::Json::object();
        j.set("name", p.name);
        j.set("min", p.min);
        j.set("max", p.max);
        j.set("doc", p.doc);
        params.push_back(std::move(j));
    }
    out.set("params", std::move(params));
    util::Json models = util::Json::array();
    for (const FamilyModel& m : models_) {
        util::Json j = util::Json::object();
        j.set("token", m.token);
        j.set("has_arg", m.has_arg);
        if (m.has_arg) {
            j.set("arg_min", m.arg_min);
            j.set("arg_max", m.arg_max);
        }
        j.set("doc", m.doc);
        models.push_back(std::move(j));
    }
    out.set("models", std::move(models));
    if (!constraints_doc_.empty()) out.set("constraints", constraints_doc_);
    return out;
}

std::optional<GridAxis> parse_grid_axis(const std::string& text,
                                        std::string* error) {
    const auto fail = [&](std::string what) -> std::optional<GridAxis> {
        if (error != nullptr) {
            *error = "bad axis '" + text + "': " + std::move(what) +
                     " (expected NAME=A..B or NAME=v1,v2,..)";
        }
        return std::nullopt;
    };
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size()) {
        return fail("missing NAME=VALUES");
    }
    GridAxis axis;
    axis.name = text.substr(0, eq);
    const std::string values = text.substr(eq + 1);
    if (axis.name == "model") {
        // Comma-separated model tokens, validated against the family
        // later (expand knows which family the axis belongs to).
        std::size_t start = 0;
        while (start <= values.size()) {
            const std::size_t comma = values.find(',', start);
            const std::string tok =
                values.substr(start, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - start);
            if (tok.empty()) return fail("empty model token");
            axis.models.push_back(tok);
            if (comma == std::string::npos) break;
            start = comma + 1;
        }
        return axis;
    }
    const std::size_t dots = values.find("..");
    if (dots != std::string::npos) {
        int lo = 0, hi = 0;
        if (!parse_canonical_int(values.substr(0, dots), lo) ||
            !parse_canonical_int(values.substr(dots + 2), hi)) {
            return fail("range bounds must be canonical integers");
        }
        if (hi < lo) return fail("empty range (max < min)");
        for (int v = lo; v <= hi; ++v) axis.values.push_back(v);
        return axis;
    }
    std::size_t start = 0;
    while (start <= values.size()) {
        const std::size_t comma = values.find(',', start);
        const std::string tok =
            values.substr(start, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - start);
        int v = 0;
        if (!parse_canonical_int(tok, v)) {
            return fail("value '" + tok + "' is not a canonical integer");
        }
        axis.values.push_back(v);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return axis;
}

// ---------------------------------------------------------------------
// The standard families. Each instantiate hook reproduces exactly the
// EngineOptions the hand-built registry entries used (the legacy names
// are aliases through these hooks, pinned by the witness-digest
// goldens), generalized over the schema's parameter ranges.

namespace {

EngineOptions wait_free_options(int max_depth) {
    EngineOptions o;
    o.max_depth = max_depth;
    return o;
}

/// The L_t options: 2 + 2 subdivision stages, radial guidance (exact
/// for n = 2; the engine downgrades it with a warning elsewhere), and
/// per-facet sharding on the minutes-scale n >= 3 builds.
EngineOptions lt_options(int n) {
    EngineOptions o;
    o.subdivision_stages = 4;
    o.guidance = core::LtGuidance::kRadial;
    if (n >= 3) o.shard_threads = 4;
    return o;
}

/// Options for the degenerate K(T) = Chr^depth subdivisions: everything
/// is identity-fixed, so candidate guidance would be wasted work.
EngineOptions uniform_options(std::size_t stages) {
    EngineOptions o;
    o.subdivision_stages = stages;
    o.guidance = core::LtGuidance::kNone;
    return o;
}

/// All subsets of {0..n} of size <= a, ordered by (size, bitmask) —
/// for a = 1 this is exactly the legacy lt-2-1-adv adversary
/// ({}, {0}, {1}, {2}).
std::vector<ProcessSet> bounded_slow_sets(int n, int a) {
    std::vector<std::uint32_t> masks;
    for (std::uint32_t m = 0; m < (1u << (n + 1)); ++m) {
        if (__builtin_popcount(m) <= a) masks.push_back(m);
    }
    std::sort(masks.begin(), masks.end(),
              [](std::uint32_t x, std::uint32_t y) {
                  const int px = __builtin_popcount(x);
                  const int py = __builtin_popcount(y);
                  return px != py ? px < py : x < y;
              });
    std::vector<ProcessSet> out;
    out.reserve(masks.size());
    for (std::uint32_t m : masks) out.push_back(ProcessSet::from_bits(m));
    return out;
}

std::vector<ScenarioFamily> build_families() {
    using Seg = NameSegment;
    std::vector<ScenarioFamily> out;

    // --- wf-consensus-<p>-<v>: binary+ consensus, wait-free route ---
    out.emplace_back(
        "wf-consensus",
        "consensus, wait-free (FLP: every searched depth exhausts)", "",
        std::vector<Seg>{Seg::literal("wf"), Seg::literal("consensus"),
                         Seg::param_at(0), Seg::param_at(1)},
        std::vector<FamilyParam>{
            {"p", 2, 3, "number of processes"},
            {"v", 2, 3, "number of input values"}},
        std::vector<FamilyModel>{}, nullptr,
        [](const FamilyInstance& i) { return i.params[0] >= 3; },
        [](const FamilyInstance& i) {
            return Scenario::wait_free(
                "",
                tasks::consensus_task(
                    static_cast<std::uint32_t>(i.params[0]),
                    static_cast<std::uint32_t>(i.params[1])),
                wait_free_options(3));
        });

    // --- wf-is-<n>: one-round immediate snapshot, wait-free route ---
    out.emplace_back(
        "wf-is",
        "one-round immediate snapshot, wait-free (solvable at depth 1)",
        "",
        std::vector<Seg>{Seg::literal("wf"), Seg::literal("is"),
                         Seg::param_at(0)},
        std::vector<FamilyParam>{
            {"n", 1, 2, "base dimension (n+1 processes)"}},
        std::vector<FamilyModel>{}, nullptr, nullptr,
        [](const FamilyInstance& i) {
            return Scenario::wait_free(
                "", tasks::immediate_snapshot_task(i.params[0]).task,
                wait_free_options(2));
        });

    // --- ksa-<p>-<k>-<v>-<model>: k-set agreement ---
    out.emplace_back(
        "ksa",
        "k-set agreement (deciders output at most k distinct inputs)",
        "k <= p; res argument r < p",
        std::vector<Seg>{Seg::literal("ksa"), Seg::param_at(0),
                         Seg::param_at(1), Seg::param_at(2), Seg::model()},
        std::vector<FamilyParam>{
            {"p", 2, 4, "number of processes"},
            {"k", 1, 3, "agreement bound (k = 1 is consensus)"},
            {"v", 2, 4, "number of input values"}},
        std::vector<FamilyModel>{
            {"wf", false, 0, 0, "wait-free (Corollary 7.1 search)"},
            {"res", true, 1, 3,
             "t-resilient Res_r — no affine geometry, so the general "
             "route reports the pair unsupported (the engine's honest "
             "frontier)"}},
        [](const FamilyInstance& i) -> std::string {
            if (i.params[1] > i.params[0]) {
                return "k=" + std::to_string(i.params[1]) +
                       " exceeds p=" + std::to_string(i.params[0]);
            }
            if (i.model_token == "res" && i.model_arg >= i.params[0]) {
                return "res argument " + std::to_string(i.model_arg) +
                       " must be < p=" + std::to_string(i.params[0]);
            }
            return "";
        },
        [](const FamilyInstance& i) {
            // The wait-free route genuinely searches (Chr^k at p >= 3
            // is past quick budgets); res cells are instant — the
            // general route reports them unsupported without building
            // anything.
            return i.model_token == "wf" && i.params[0] >= 3;
        },
        [](const FamilyInstance& i) {
            Scenario s = Scenario::wait_free(
                "",
                tasks::k_set_agreement_task(
                    static_cast<std::uint32_t>(i.params[0]),
                    static_cast<std::uint32_t>(i.params[1]),
                    static_cast<std::uint32_t>(i.params[2])),
                wait_free_options(1));
            if (i.model_token == "res") {
                s.model = std::make_shared<iis::TResilientModel>(
                    static_cast<std::uint32_t>(i.params[0]),
                    static_cast<std::uint32_t>(i.model_arg));
            }
            return s;
        });

    // --- lord-<n>-wf: the total-order task L_ord ---
    out.emplace_back(
        "lord",
        "total-order task L_ord, wait-free (consensus-hard: every "
        "searched depth exhausts)",
        "",
        std::vector<Seg>{Seg::literal("lord"), Seg::param_at(0),
                         Seg::model()},
        std::vector<FamilyParam>{
            {"n", 1, 2, "base dimension (n+1 processes)"}},
        std::vector<FamilyModel>{{"wf", false, 0, 0, "wait-free"}},
        nullptr,
        [](const FamilyInstance& i) { return i.params[0] >= 2; },
        [](const FamilyInstance& i) {
            return Scenario::wait_free(
                "", tasks::total_order_task(i.params[0]).task,
                wait_free_options(3));
        });

    // --- lt-<n>-<t>-<model>: the t-resilience task L_t ---
    out.emplace_back(
        "lt",
        "t-resilience task L_t (simplices clear of the (n-t-1)-skeleton "
        "of s)",
        "t <= n; res/adv arguments <= n",
        std::vector<Seg>{Seg::literal("lt"), Seg::param_at(0),
                         Seg::param_at(1), Seg::model()},
        std::vector<FamilyParam>{
            {"n", 1, 3, "base dimension (n+1 processes)"},
            {"t", 1, 3, "resilience index of the task"}},
        std::vector<FamilyModel>{
            {"wf", false, 0, 0, "wait-free (Corollary 7.1 search)"},
            {"res", true, 1, 3, "t-resilient Res_r (Example 2.2)"},
            {"adv", true, 1, 3,
             "adversary M_adv(|slow| <= a) (Example 2.4)"}},
        [](const FamilyInstance& i) -> std::string {
            const int n = i.params[0];
            if (i.params[1] > n) {
                return "t=" + std::to_string(i.params[1]) +
                       " exceeds n=" + std::to_string(n);
            }
            if ((i.model_token == "res" || i.model_token == "adv") &&
                i.model_arg > n) {
                return "model argument " + std::to_string(i.model_arg) +
                       " exceeds n=" + std::to_string(n);
            }
            return "";
        },
        [](const FamilyInstance& i) {
            // n = 3 builds are minutes-scale; the wait-free route on
            // n >= 2 searches Chr^3 of a full 2-simplex task, also far
            // past quick budgets.
            return i.params[0] >= 3 ||
                   (i.model_token == "wf" && i.params[0] >= 2);
        },
        [](const FamilyInstance& i) {
            const int n = i.params[0];
            const int t = i.params[1];
            if (i.model_token == "wf") {
                return Scenario::wait_free(
                    "", tasks::t_resilience_task(n, t).task,
                    wait_free_options(3));
            }
            std::shared_ptr<const iis::Model> model;
            if (i.model_token == "res") {
                model = std::make_shared<iis::TResilientModel>(
                    static_cast<std::uint32_t>(n + 1),
                    static_cast<std::uint32_t>(i.model_arg));
            } else {
                model = std::make_shared<iis::AdversaryModel>(
                    "M_adv(|slow|<=" + std::to_string(i.model_arg) + ")",
                    bounded_slow_sets(n, i.model_arg));
            }
            return Scenario::general(
                "", tasks::t_resilience_task(n, t), std::move(model),
                std::make_shared<LtStableRule>(n, t), lt_options(n));
        });

    // --- is-<n>-of<k>: immediate snapshot under obstruction freedom ---
    out.emplace_back(
        "is-of",
        "one-round immediate snapshot under OF_k (K(T) = Chr s, every "
        "obstruction-free run lands at round 1)",
        "",
        std::vector<Seg>{Seg::literal("is"), Seg::param_at(0),
                         Seg::prefixed("of", 1)},
        std::vector<FamilyParam>{
            {"n", 1, 2, "base dimension (n+1 processes)"},
            {"k", 1, 3, "obstruction-freedom bound (|fast| <= k)"}},
        std::vector<FamilyModel>{}, nullptr, nullptr,
        [](const FamilyInstance& i) {
            return Scenario::general(
                "", tasks::immediate_snapshot_task(i.params[0]),
                std::make_shared<iis::ObstructionFreeModel>(
                    static_cast<std::uint32_t>(i.params[1])),
                std::make_shared<UniformDepthRule>(1), uniform_options(2));
        });

    // --- approx-<n>-of<k>: approximate agreement under OF_k ---
    out.emplace_back(
        "approx-of",
        "2-round approximate agreement (L = Chr^2 s) under OF_k with "
        "uniform termination at depth 2",
        "",
        std::vector<Seg>{Seg::literal("approx"), Seg::param_at(0),
                         Seg::prefixed("of", 1)},
        std::vector<FamilyParam>{
            {"n", 1, 2, "base dimension (n+1 processes)"},
            {"k", 1, 3, "obstruction-freedom bound (|fast| <= k)"}},
        std::vector<FamilyModel>{}, nullptr, nullptr,
        [](const FamilyInstance& i) {
            return Scenario::general(
                "", tasks::t_resilience_task(i.params[0], i.params[0]),
                std::make_shared<iis::ObstructionFreeModel>(
                    static_cast<std::uint32_t>(i.params[1])),
                std::make_shared<UniformDepthRule>(2), uniform_options(3));
        });

    return out;
}

}  // namespace

const std::vector<ScenarioFamily>& standard_families() {
    static const std::vector<ScenarioFamily> families = build_families();
    return families;
}

}  // namespace gact::engine
