// Scenario families: parameterized generators over the paper's (T, M)
// model space.
//
// The paper's characterization is *generalized* — solvability of an
// arbitrary task T in an arbitrary sub-IIS model M — so the scenario
// layer must name points of a parameter grid, not a fixed list of
// demos. A ScenarioFamily declares
//
//   * a typed parameter schema: integer parameters with canonical
//     ranges plus an optional model axis (wf | res<r> | of<k> | adv<a>),
//   * a canonical-name codec: `lt-3-2-res2`-style names parse back to
//     parameters and re-encode bit-identically (the round trip is a
//     pinned property test), with out-of-range or malformed names
//     rejected with a diagnostic that cites the family grammar,
//   * an instantiate hook producing a ready-to-solve Scenario — the
//     right task builder, the right iis::Model, the right StableRule,
//     and the tuned EngineOptions the hand-built registry entries used.
//
// The 12 legacy registry names are aliases resolving *through* these
// families (scenario_registry.cpp), so every existing witness-digest
// golden stays pinned while any in-range parameter combination becomes
// a valid scenario name everywhere a name is accepted: the engine CLI,
// the solve server's wire protocol, the fuzzer, and the sweep driver
// (tools/gact_sweep.cpp) which expands Cartesian grids through
// Engine::solve_batch.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "util/json.h"

namespace gact::engine {

/// One integer parameter of a family schema.
struct FamilyParam {
    std::string name;  ///< the `<n>` placeholder in the grammar
    int min = 0;       ///< inclusive canonical range
    int max = 0;
    std::string doc;   ///< one-line meaning, e.g. "base dimension"
};

/// One variant of a family's model axis. `has_arg` models carry an
/// integer suffix in the name (`res2`, `of1`, `adv1`).
struct FamilyModel {
    std::string token;  ///< "wf", "res", "of", "adv"
    bool has_arg = false;
    int arg_min = 0;  ///< inclusive argument range when has_arg
    int arg_max = 0;
    std::string doc;
};

/// A parsed point of a family's parameter space.
struct FamilyInstance {
    std::string family;       ///< the family key
    std::vector<int> params;  ///< in schema order
    std::string model_token;  ///< empty when the family has no model axis
    int model_arg = 0;        ///< meaningful when the chosen model has_arg

    bool operator==(const FamilyInstance&) const = default;
};

/// One '-'-separated segment of a family's canonical-name shape.
/// Examples: lt names are {literal "lt", param 0, param 1, model};
/// is-of names are {literal "is", param 0, prefixed("of", 1)}.
struct NameSegment {
    enum class Kind { kLiteral, kParam, kPrefixedParam, kModel };
    Kind kind;
    std::string text;       ///< literal text, or the prefix ("of")
    std::size_t param = 0;  ///< index into the param schema

    static NameSegment literal(std::string t) {
        return {Kind::kLiteral, std::move(t), 0};
    }
    static NameSegment param_at(std::size_t i) {
        return {Kind::kParam, "", i};
    }
    static NameSegment prefixed(std::string prefix, std::size_t i) {
        return {Kind::kPrefixedParam, std::move(prefix), i};
    }
    static NameSegment model() { return {Kind::kModel, "", 0}; }
};

/// A parameterized scenario generator with a canonical-name codec.
class ScenarioFamily {
public:
    /// Cross-parameter validation ("" = ok, else diagnostic), heaviness
    /// classification, and the Scenario builder. Instances reaching
    /// `heavy`/`instantiate` are always schema- and validate-clean.
    using ValidateFn = std::function<std::string(const FamilyInstance&)>;
    using HeavyFn = std::function<bool(const FamilyInstance&)>;
    using InstantiateFn = std::function<Scenario(const FamilyInstance&)>;

    ScenarioFamily(std::string key, std::string description,
                   std::string constraints_doc,
                   std::vector<NameSegment> pattern,
                   std::vector<FamilyParam> params,
                   std::vector<FamilyModel> models, ValidateFn validate,
                   HeavyFn heavy, InstantiateFn instantiate);

    const std::string& key() const noexcept { return key_; }
    const std::string& description() const noexcept { return description_; }
    const std::vector<FamilyParam>& params() const noexcept {
        return params_;
    }
    const std::vector<FamilyModel>& models() const noexcept {
        return models_;
    }

    /// The name grammar, e.g. "lt-<n>-<t>-<wf|res<r>|adv<a>>".
    std::string grammar() const;
    /// grammar() plus parameter ranges and cross-constraints — the
    /// one-paragraph help CLIs print for unknown-scenario diagnostics.
    std::string grammar_help() const;

    /// Canonical name of an instance; inverse of parse() by construction.
    std::string encode(const FamilyInstance& inst) const;

    /// Parse a canonical name. nullopt with a diagnostic when the name
    /// is malformed, out of range, or fails cross-parameter validation.
    /// Accepts only canonical spellings (no leading zeros, no signs) so
    /// parse-then-encode is the identity on accepted names.
    std::optional<FamilyInstance> parse(const std::string& name,
                                        std::string* error = nullptr) const;

    /// Does the name target this family (its leading literal segments
    /// match)? Used to blame the right grammar in diagnostics.
    bool claims(const std::string& name) const;

    /// Range + cross-parameter check; "" when the instance is valid.
    std::string validate(const FamilyInstance& inst) const;

    /// Is this point minutes-scale (excluded from quick sets)?
    bool heavy(const FamilyInstance& inst) const { return heavy_(inst); }

    /// Build the Scenario for a valid instance. The caller stamps
    /// name/description/heavy (ScenarioRegistry does this uniformly).
    Scenario instantiate(const FamilyInstance& inst) const {
        return instantiate_(inst);
    }

    /// Generated one-line description of an instance, e.g.
    /// "t-resilience task L_t (n=2, t=1, model=res1)".
    std::string describe(const FamilyInstance& inst) const;

    /// Structured schema for the service's `list` reply: key, grammar,
    /// params with ranges, model variants, constraints.
    util::Json schema_json() const;

private:
    std::string key_;
    std::string description_;
    std::string constraints_doc_;
    std::vector<NameSegment> pattern_;
    std::vector<FamilyParam> params_;
    std::vector<FamilyModel> models_;
    ValidateFn validate_;
    HeavyFn heavy_;
    InstantiateFn instantiate_;
};

/// One axis of a sweep grid: either an integer parameter axis (explicit
/// value list) or the model axis (explicit model-token list, `name` ==
/// "model").
struct GridAxis {
    std::string name;
    std::vector<int> values;          ///< parameter axes
    std::vector<std::string> models;  ///< the model axis
};

/// A sweep grid: one axis per family parameter (axes omitted by the
/// caller default to the full canonical range) plus the model axis when
/// the family has one.
using ParamGrid = std::vector<GridAxis>;

/// Parse CLI axis syntax: "n=1..3" (inclusive range), "t=1,2" (explicit
/// list), or "model=wf,res1" (model-token list). Returns nullopt with a
/// diagnostic on malformed specs.
std::optional<GridAxis> parse_grid_axis(const std::string& text,
                                        std::string* error = nullptr);

/// Canonical decimal parse: digits only, no leading zero (so accepted
/// spellings re-encode identically). Exposed for grid/model parsing.
bool parse_canonical_int(const std::string& text, int& out);

/// The paper-standard families: wf-consensus, wf-is, ksa, lord, lt,
/// is-of, approx-of (one per hand-built registry group). Built once.
const std::vector<ScenarioFamily>& standard_families();

}  // namespace gact::engine
