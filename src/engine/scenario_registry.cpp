#include "engine/scenario_registry.h"

#include <algorithm>

#include "tasks/standard_tasks.h"
#include "util/require.h"

namespace gact::engine {

namespace {

EngineOptions wait_free_options(int max_depth) {
    EngineOptions o;
    o.max_depth = max_depth;
    return o;
}

/// The L_t flagship options: 2 + 2 subdivision stages, identity fixing,
/// radial guidance (exact for n = 2), compact families at prefix depth 1.
EngineOptions lt_options() {
    EngineOptions o;
    o.subdivision_stages = 4;
    o.guidance = core::LtGuidance::kRadial;
    return o;
}

/// Options for the degenerate K(T) = Chr^depth subdivisions: everything
/// is identity-fixed, so candidate guidance would be wasted work.
EngineOptions uniform_options(std::size_t stages) {
    EngineOptions o;
    o.subdivision_stages = stages;
    o.guidance = core::LtGuidance::kNone;
    return o;
}

ScenarioRegistry build_standard() {
    ScenarioRegistry r;

    // --- Wait-free scenarios (Corollary 7.1 route) ---
    r.add("consensus-2-wf",
          "binary consensus, 2 processes, wait-free — FLP: every depth "
          "exhausts",
          false, [] {
              return Scenario::wait_free("", tasks::consensus_task(2, 2),
                                         wait_free_options(3));
          });
    r.add("is-1-wf",
          "one-round immediate snapshot, 2 processes — solvable at depth 1",
          false, [] {
              return Scenario::wait_free(
                  "", tasks::immediate_snapshot_task(1).task,
                  wait_free_options(2));
          });
    r.add("is-2-wf",
          "one-round immediate snapshot, 3 processes — solvable at depth 1",
          false, [] {
              return Scenario::wait_free(
                  "", tasks::immediate_snapshot_task(2).task,
                  wait_free_options(2));
          });
    r.add("ksa-2p-k2-wf",
          "2-set agreement, 2 processes, 2 values — trivial at depth 0",
          false, [] {
              return Scenario::wait_free(
                  "", tasks::k_set_agreement_task(2, 2, 2),
                  wait_free_options(1));
          });
    r.add("lord-2p-wf",
          "total-order task, 2 processes — consensus-hard, every depth "
          "exhausts",
          false, [] {
              return Scenario::wait_free("",
                                         tasks::total_order_task(1).task,
                                         wait_free_options(3));
          });
    r.add("chr2-2p-wf",
          "L_t at t = n (all of Chr^2 s), 2 processes — solvable at depth "
          "2, the Section 7 ACT degeneracy",
          false, [] {
              return Scenario::wait_free("",
                                         tasks::t_resilience_task(1, 1).task,
                                         wait_free_options(3));
          });

    // --- General-model scenarios (Theorem 6.1 route) ---
    r.add("lt-2-1-res1",
          "the headline Proposition 9.2: L_1 solvable 1-resiliently by 3 "
          "processes",
          false, [] {
              return Scenario::general(
                  "", tasks::t_resilience_task(2, 1),
                  std::make_shared<iis::TResilientModel>(3, 1),
                  std::make_shared<LtStableRule>(2, 1), lt_options());
          });
    r.add("lt-2-1-adv",
          "L_1 under the adversary A = {slow sets of size <= 1} — the "
          "adversary presentation of Res_1 (Example 2.4)",
          false, [] {
              return Scenario::general(
                  "", tasks::t_resilience_task(2, 1),
                  std::make_shared<iis::AdversaryModel>(
                      "M_adv(|slow|<=1)",
                      std::vector<ProcessSet>{
                          ProcessSet::of({}), ProcessSet::of({0}),
                          ProcessSet::of({1}), ProcessSet::of({2})}),
                  std::make_shared<LtStableRule>(2, 1), lt_options());
          });
    r.add("is-2-of1",
          "immediate snapshot under OF_1: K(T) = Chr s, every "
          "obstruction-free run lands at round 1",
          false, [] {
              return Scenario::general(
                  "", tasks::immediate_snapshot_task(2),
                  std::make_shared<iis::ObstructionFreeModel>(1),
                  std::make_shared<UniformDepthRule>(1),
                  uniform_options(2));
          });
    r.add("approx-2-of2",
          "2-round approximate agreement (L = Chr^2 s) under OF_2: "
          "uniform termination at depth 2",
          false, [] {
              return Scenario::general(
                  "", tasks::t_resilience_task(2, 2),
                  std::make_shared<iis::ObstructionFreeModel>(2),
                  std::make_shared<UniformDepthRule>(2),
                  uniform_options(3));
          });
    r.add("ksa-3p-k2-res1",
          "2-set agreement, 3 processes, under Res_1 — outside the "
          "engine's routes (no affine geometry): reported unsupported",
          false, [] {
              Scenario s = Scenario::wait_free(
                  "", tasks::k_set_agreement_task(3, 2, 2),
                  wait_free_options(1));
              s.model = std::make_shared<iis::TResilientModel>(3, 1);
              return s;
          });

    // --- Heavy scenarios: runnable by name, excluded from quick sets ---
    r.add("lt-3-2-res2",
          "L_2 for 4 processes under Res_2 — the n = 3 pipeline frontier "
          "(minutes-scale subdivision build; sharded per facet)",
          true, [] {
              EngineOptions o;
              o.subdivision_stages = 4;
              // kRadial on an n = 3 base exercises the engine's guidance
              // downgrade (a warning in the report, not an abort): the
              // exact projection exists for n = 2 only.
              o.guidance = core::LtGuidance::kRadial;
              // Heavy scenario: shard the subdivision stages per facet
              // so one scenario no longer serializes on a single core.
              // Bit-identical to the 1-thread build.
              o.shard_threads = 4;
              return Scenario::general(
                  "", tasks::t_resilience_task(3, 2),
                  std::make_shared<iis::TResilientModel>(4, 2),
                  std::make_shared<LtStableRule>(3, 2), o);
          });

    return r;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::standard() {
    static const ScenarioRegistry registry = build_standard();
    return registry;
}

void ScenarioRegistry::add(std::string name, std::string description,
                           bool heavy, std::function<Scenario()> make) {
    require(static_cast<bool>(make), "ScenarioRegistry::add: null factory");
    for (const ScenarioSpec& spec : specs_) {
        require(spec.name != name,
                "ScenarioRegistry::add: duplicate scenario " + name);
    }
    specs_.push_back(ScenarioSpec{std::move(name), std::move(description),
                                  heavy, std::move(make)});
}

std::vector<std::string> ScenarioRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const ScenarioSpec& spec : specs_) out.push_back(spec.name);
    std::sort(out.begin(), out.end());
    return out;
}

std::optional<Scenario> ScenarioRegistry::find(const std::string& name) const {
    for (const ScenarioSpec& spec : specs_) {
        if (spec.name != name) continue;
        Scenario s = spec.make();
        s.name = spec.name;
        s.description = spec.description;
        s.heavy = spec.heavy;
        return s;
    }
    return std::nullopt;
}

std::vector<Scenario> ScenarioRegistry::quick() const {
    std::vector<Scenario> out;
    for (const ScenarioSpec& spec : specs_) {
        if (spec.heavy) continue;
        Scenario s = spec.make();
        s.name = spec.name;
        s.description = spec.description;
        s.heavy = spec.heavy;
        out.push_back(std::move(s));
    }
    return out;
}

}  // namespace gact::engine
