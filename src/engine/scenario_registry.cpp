#include "engine/scenario_registry.h"

#include <algorithm>

#include "util/require.h"

namespace gact::engine {

namespace {

ScenarioRegistry build_standard() {
    ScenarioRegistry r;
    for (const ScenarioFamily& f : standard_families()) r.add_family(f);

    // --- The 12 legacy names, as aliases through the families. Each
    // resolves to the family instance its canonical spelling parses to,
    // so the hand-written descriptions survive while the construction
    // itself lives in exactly one place (the family instantiate hooks);
    // the witness-digest goldens (tests/witness_digest_test.cpp) pin
    // that the refactor reproduced every build bit-identically. ---

    // Wait-free scenarios (Corollary 7.1 route).
    r.add_alias("consensus-2-wf",
                "binary consensus, 2 processes, wait-free — FLP: every "
                "depth exhausts",
                "wf-consensus-2-2");
    r.add_alias(
        "is-1-wf",
        "one-round immediate snapshot, 2 processes — solvable at depth 1",
        "wf-is-1");
    r.add_alias(
        "is-2-wf",
        "one-round immediate snapshot, 3 processes — solvable at depth 1",
        "wf-is-2");
    r.add_alias("ksa-2p-k2-wf",
                "2-set agreement, 2 processes, 2 values — trivial at "
                "depth 0",
                "ksa-2-2-2-wf");
    r.add_alias("lord-2p-wf",
                "total-order task, 2 processes — consensus-hard, every "
                "depth exhausts",
                "lord-1-wf");
    r.add_alias("chr2-2p-wf",
                "L_t at t = n (all of Chr^2 s), 2 processes — solvable "
                "at depth 2, the Section 7 ACT degeneracy",
                "lt-1-1-wf");

    // General-model scenarios (Theorem 6.1 route).
    r.add_alias("lt-2-1-res1",
                "the headline Proposition 9.2: L_1 solvable 1-resiliently "
                "by 3 processes",
                "lt-2-1-res1");
    r.add_alias("lt-2-1-adv",
                "L_1 under the adversary A = {slow sets of size <= 1} — "
                "the adversary presentation of Res_1 (Example 2.4)",
                "lt-2-1-adv1");
    r.add_alias("is-2-of1",
                "immediate snapshot under OF_1: K(T) = Chr s, every "
                "obstruction-free run lands at round 1",
                "is-2-of1");
    r.add_alias("approx-2-of2",
                "2-round approximate agreement (L = Chr^2 s) under OF_2: "
                "uniform termination at depth 2",
                "approx-2-of2");
    r.add_alias("ksa-3p-k2-res1",
                "2-set agreement, 3 processes, under Res_1 — outside the "
                "engine's routes (no affine geometry): reported "
                "unsupported",
                "ksa-3-2-2-res1");

    // Heavy scenarios: runnable by name, excluded from quick sets.
    r.add_alias("lt-3-2-res2",
                "L_2 for 4 processes under Res_2 — the n = 3 pipeline "
                "frontier (minutes-scale subdivision build; sharded per "
                "facet)",
                "lt-3-2-res2");

    // --- The ksa k-set-agreement heavy grid: a generated workload the
    // hand-named registry never had. Every cell routes a value task
    // through the general model path; the engine has no affine geometry
    // for it, so each honestly reports `unsupported` — the sweep table
    // shows the current frontier rather than erroring. Registered heavy
    // so quick sets (and their pinned golden tables) are unchanged. ---
    {
        const ScenarioFamily* ksa = r.family("ksa");
        require(ksa != nullptr, "standard registry: ksa family missing");
        for (int p : {3, 4}) {
            for (int k : {2, 3}) {
                FamilyInstance inst;
                inst.family = "ksa";
                inst.params = {p, k, 3};
                inst.model_token = "res";
                inst.model_arg = 1;
                require(ksa->validate(inst).empty(),
                        "standard registry: invalid ksa grid cell");
                r.add(ksa->encode(inst),
                      ksa->describe(inst) +
                          " — heavy sweep grid: general-model path, "
                          "reported unsupported (the engine's current "
                          "frontier)",
                      true, [fam = *ksa, inst] {
                          return fam.instantiate(inst);
                      });
            }
        }
    }

    return r;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::standard() {
    static const ScenarioRegistry registry = build_standard();
    return registry;
}

void ScenarioRegistry::add(std::string name, std::string description,
                           bool heavy, std::function<Scenario()> make) {
    require(static_cast<bool>(make), "ScenarioRegistry::add: null factory");
    require(index_.find(name) == index_.end(),
            "ScenarioRegistry::add: duplicate scenario " + name);
    index_.emplace(name, specs_.size());
    specs_.push_back(ScenarioSpec{std::move(name), std::move(description),
                                  heavy, std::move(make)});
}

void ScenarioRegistry::add_family(ScenarioFamily family) {
    for (const ScenarioFamily& f : families_) {
        require(f.key() != family.key(),
                "ScenarioRegistry::add_family: duplicate family " +
                    family.key());
    }
    families_.push_back(std::move(family));
}

void ScenarioRegistry::add_alias(std::string name, std::string description,
                                 const std::string& canonical) {
    for (const ScenarioFamily& f : families_) {
        if (!f.claims(canonical)) continue;
        std::string err;
        const std::optional<FamilyInstance> inst = f.parse(canonical, &err);
        require(inst.has_value(), "ScenarioRegistry::add_alias: " + err);
        add(std::move(name), std::move(description), f.heavy(*inst),
            [fam = f, i = *inst] { return fam.instantiate(i); });
        return;
    }
    require(false, "ScenarioRegistry::add_alias: no family claims '" +
                       canonical + "'");
}

const ScenarioFamily* ScenarioRegistry::family(
    const std::string& key) const {
    for (const ScenarioFamily& f : families_) {
        if (f.key() == key) return &f;
    }
    return nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const ScenarioSpec& spec : specs_) out.push_back(spec.name);
    std::sort(out.begin(), out.end());
    return out;
}

Scenario ScenarioRegistry::materialize(const ScenarioSpec& spec) const {
    Scenario s = spec.make();
    s.name = spec.name;
    s.description = spec.description;
    s.heavy = spec.heavy;
    return s;
}

Scenario ScenarioRegistry::materialize(const ScenarioFamily& family,
                                       const FamilyInstance& inst) const {
    Scenario s = family.instantiate(inst);
    s.name = family.encode(inst);
    s.description = family.describe(inst);
    s.heavy = family.heavy(inst);
    return s;
}

std::optional<Scenario> ScenarioRegistry::find(const std::string& name,
                                               std::string* error) const {
    const auto it = index_.find(name);
    if (it != index_.end()) return materialize(specs_[it->second]);
    for (const ScenarioFamily& f : families_) {
        if (!f.claims(name)) continue;
        std::string perr;
        const std::optional<FamilyInstance> inst = f.parse(name, &perr);
        if (!inst.has_value()) {
            if (error != nullptr) *error = std::move(perr);
            return std::nullopt;
        }
        return materialize(f, *inst);
    }
    if (error != nullptr) {
        std::string known;
        for (const std::string& n : names()) {
            if (!known.empty()) known += ", ";
            known += n;
        }
        // No "unknown scenario 'x'" prefix here: every caller adds its
        // own, so the text composes without stuttering.
        *error = "scenario families (any in-range name works):\n" +
                 grammar_help() + "registered names: " + known;
    }
    return std::nullopt;
}

std::vector<Scenario> ScenarioRegistry::quick() const {
    std::vector<Scenario> out;
    for (const ScenarioSpec& spec : specs_) {
        if (spec.heavy) continue;
        out.push_back(materialize(spec));
    }
    return out;
}

std::string ScenarioRegistry::grammar_help() const {
    std::string out;
    for (const ScenarioFamily& f : families_) {
        // grammar_help is "grammar — description\n      ranges";
        // re-indent the whole block two spaces for CLI output.
        std::string block = f.grammar_help();
        out += "  " + block + "\n";
    }
    return out;
}

std::vector<Scenario> ScenarioRegistry::expand(
    const std::string& family_key, const ParamGrid& grid,
    std::string* error, std::vector<std::string>* skipped) const {
    const auto fail = [&](std::string what) -> std::vector<Scenario> {
        if (error != nullptr) *error = std::move(what);
        return {};
    };
    const ScenarioFamily* fam = family(family_key);
    if (fam == nullptr) {
        std::string known;
        for (const ScenarioFamily& f : families_) {
            if (!known.empty()) known += ", ";
            known += f.key();
        }
        return fail("unknown family '" + family_key +
                    "' (families: " + known + ")");
    }

    // Resolve one value list per parameter axis (schema order), then
    // the model axis. Unknown axis names and out-of-schema values are
    // hard errors — a typoed sweep must not quietly shrink.
    std::vector<bool> used(grid.size(), false);
    std::vector<std::vector<int>> axes;
    for (std::size_t pi = 0; pi < fam->params().size(); ++pi) {
        const FamilyParam& p = fam->params()[pi];
        std::vector<int> values;
        for (std::size_t gi = 0; gi < grid.size(); ++gi) {
            if (grid[gi].name != p.name) continue;
            used[gi] = true;
            values = grid[gi].values;
            if (values.empty()) {
                return fail("axis '" + p.name + "' has no values");
            }
        }
        if (values.empty()) {  // omitted: full canonical range
            for (int v = p.min; v <= p.max; ++v) values.push_back(v);
        }
        for (int v : values) {
            if (v < p.min || v > p.max) {
                return fail("axis " + p.name + "=" + std::to_string(v) +
                            " outside [" + std::to_string(p.min) + ".." +
                            std::to_string(p.max) + "] for family " +
                            family_key);
            }
        }
        axes.push_back(std::move(values));
    }
    std::vector<std::pair<std::string, int>> model_values;
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
        if (grid[gi].name != "model") continue;
        used[gi] = true;
        if (fam->models().empty()) {
            return fail("family " + family_key + " has no model axis");
        }
        for (const std::string& text : grid[gi].models) {
            const FamilyModel* match = nullptr;
            for (const FamilyModel& m : fam->models()) {
                if (text.rfind(m.token, 0) != 0) continue;
                if (match == nullptr ||
                    m.token.size() > match->token.size()) {
                    match = &m;
                }
            }
            int arg = 0;
            if (match != nullptr && match->has_arg &&
                !parse_canonical_int(text.substr(match->token.size()),
                                     arg)) {
                match = nullptr;
            }
            if (match != nullptr && !match->has_arg &&
                text != match->token) {
                match = nullptr;
            }
            if (match == nullptr) {
                return fail("model value '" + text +
                            "' does not match family " + family_key +
                            " (grammar " + fam->grammar() + ")");
            }
            model_values.emplace_back(match->token, arg);
        }
        if (model_values.empty()) {
            return fail("model axis has no values");
        }
    }
    if (!fam->models().empty() && model_values.empty()) {
        return fail("family " + family_key +
                    " needs an explicit model axis (e.g. model=wf)");
    }
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
        if (!used[gi]) {
            return fail("axis '" + grid[gi].name +
                        "' names no parameter of family " + family_key);
        }
    }

    // Cartesian product: schema order, last axis varying fastest (the
    // model axis last). Cells failing cross-parameter validation are
    // reported via `skipped`, never silently dropped.
    std::vector<Scenario> out;
    std::vector<std::size_t> odo(axes.size(), 0);
    const std::size_t model_count =
        model_values.empty() ? 1 : model_values.size();
    while (true) {
        for (std::size_t mi = 0; mi < model_count; ++mi) {
            FamilyInstance inst;
            inst.family = fam->key();
            for (std::size_t pi = 0; pi < axes.size(); ++pi) {
                inst.params.push_back(axes[pi][odo[pi]]);
            }
            if (!model_values.empty()) {
                inst.model_token = model_values[mi].first;
                inst.model_arg = model_values[mi].second;
            }
            if (!fam->validate(inst).empty()) {
                if (skipped != nullptr) {
                    skipped->push_back(fam->encode(inst));
                }
                continue;
            }
            out.push_back(materialize(*fam, inst));
        }
        // Advance the odometer (last parameter axis fastest).
        std::size_t pi = axes.size();
        while (pi > 0) {
            --pi;
            if (++odo[pi] < axes[pi].size()) break;
            odo[pi] = 0;
            if (pi == 0) return out;
        }
        if (axes.empty()) return out;
    }
}

std::vector<Scenario> ScenarioRegistry::quick_grid() const {
    // Cheap parameter points of every family — the standard sweep the
    // CLI preset, bench_engine_batch, and the CI smoke share. Each cell
    // is at most seconds-scale; heavy points (lt n >= 3, wait-free lt
    // n >= 2, ksa/consensus/lord at p >= 3) are deliberately outside.
    const auto cells = [this](const char* family, const ParamGrid& grid) {
        std::string error;
        std::vector<Scenario> out = expand(family, grid, &error);
        require(error.empty(),
                std::string("quick_grid: ") + family + ": " + error);
        return out;
    };
    std::vector<Scenario> out;
    const auto append = [&out](std::vector<Scenario> v) {
        for (Scenario& s : v) out.push_back(std::move(s));
    };
    append(cells("wf-consensus", {{"p", {2}, {}}, {"v", {2, 3}, {}}}));
    append(cells("wf-is", {{"n", {1, 2}, {}}}));
    append(cells("ksa", {{"p", {2}, {}},
                         {"k", {1, 2}, {}},
                         {"v", {2}, {}},
                         {"model", {}, {"wf"}}}));
    append(cells("lord", {{"n", {1}, {}}, {"model", {}, {"wf"}}}));
    append(cells("lt", {{"n", {1}, {}},
                        {"t", {1}, {}},
                        {"model", {}, {"wf", "res1", "adv1"}}}));
    append(cells("lt", {{"n", {2}, {}},
                        {"t", {1, 2}, {}},
                        {"model", {}, {"res1", "adv1"}}}));
    append(cells("is-of", {{"n", {1, 2}, {}}, {"k", {1, 2}, {}}}));
    append(cells("approx-of", {{"n", {1, 2}, {}}, {"k", {1, 2}, {}}}));
    return out;
}

}  // namespace gact::engine
