// The registry of named standard scenarios — the single source the
// examples, benches, and the engine CLI consume.
//
// Each entry is a lazy factory: listing the registry costs nothing, and a
// scenario's complexes (some are minutes-scale builds, e.g. L_t at n = 3)
// are only materialized when the scenario is actually requested. The
// non-heavy ("quick") set spans every model family of the paper's
// examples: wait-free, Res_t, OF_k, and an adversary model.
#pragma once

#include <functional>
#include <optional>

#include "engine/scenario.h"

namespace gact::engine {

/// A registered scenario: metadata plus the factory that builds it.
struct ScenarioSpec {
    std::string name;
    std::string description;
    bool heavy = false;
    std::function<Scenario()> make;
};

class ScenarioRegistry {
public:
    /// The library's standard scenarios (built once, immutable).
    static const ScenarioRegistry& standard();

    /// All specs, cheap to enumerate (nothing materialized).
    const std::vector<ScenarioSpec>& specs() const noexcept {
        return specs_;
    }

    /// All registered names, sorted (nothing materialized) — the
    /// service's `list` reply and every "unknown scenario" diagnostic.
    std::vector<std::string> names() const;

    /// Materialize the named scenario; nullopt if unknown.
    std::optional<Scenario> find(const std::string& name) const;

    /// Materialize every non-heavy scenario, in registration order.
    std::vector<Scenario> quick() const;

    /// Register a scenario. The factory's name/description/heavy fields
    /// are overwritten with the spec's, so factories only build content.
    void add(std::string name, std::string description, bool heavy,
             std::function<Scenario()> make);

private:
    std::vector<ScenarioSpec> specs_;
};

}  // namespace gact::engine
