// The registry of named scenarios — the single source the examples,
// benches, CLIs, and the solve service consume.
//
// Names resolve in two tiers:
//
//  * registered specs — lazy factories looked up in O(1). The 12 legacy
//    hand-built names live here as *aliases*: their factories route
//    through the scenario families (engine/scenario_family.h), so
//    `is-1-wf` and its canonical spelling `wf-is-1` build the identical
//    Scenario and the witness-digest goldens stay pinned. The heavy ksa
//    k-set-agreement grid is registered here too.
//  * family canonical names — any in-range point of a family's
//    parameter space (`lt-3-1-res1`, `ksa-3-2-2-wf`, ...) materializes
//    on demand through the family codec, no registration needed.
//
// Listing the registry costs nothing; a scenario's complexes (some are
// minutes-scale builds, e.g. L_t at n = 3) are only materialized when
// the scenario is actually requested. ScenarioRegistry::expand turns a
// family plus a value grid into the Cartesian product of scenarios —
// the sweep driver (tools/gact_sweep.cpp) feeds that straight into
// Engine::solve_batch.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "engine/scenario.h"
#include "engine/scenario_family.h"

namespace gact::engine {

/// A registered scenario: metadata plus the factory that builds it.
struct ScenarioSpec {
    std::string name;
    std::string description;
    bool heavy = false;
    std::function<Scenario()> make;
};

class ScenarioRegistry {
public:
    /// The library's standard scenarios and families (built once,
    /// immutable).
    static const ScenarioRegistry& standard();

    /// All registered specs, cheap to enumerate (nothing materialized).
    const std::vector<ScenarioSpec>& specs() const noexcept {
        return specs_;
    }

    /// All registered names, sorted (nothing materialized) — the
    /// service's `list` reply and every "unknown scenario" diagnostic.
    std::vector<std::string> names() const;

    /// The scenario families whose canonical names this registry
    /// resolves (engine/scenario_family.h).
    const std::vector<ScenarioFamily>& families() const noexcept {
        return families_;
    }

    /// The family with the given key, or nullptr.
    const ScenarioFamily* family(const std::string& key) const;

    /// Materialize the named scenario: registered specs first, then
    /// family canonical names. nullopt if unknown; when `error` is
    /// non-null it receives a diagnostic that cites the family grammar
    /// (for near-miss names) or the full grammar summary plus the
    /// registered names.
    std::optional<Scenario> find(const std::string& name,
                                 std::string* error = nullptr) const;

    /// Materialize every non-heavy registered scenario, in registration
    /// order.
    std::vector<Scenario> quick() const;

    /// Expand a family over a value grid: the Cartesian product of the
    /// axes, in schema order with the last axis varying fastest. Axes
    /// omitted from the grid default to the parameter's full canonical
    /// range; the model axis (when the family has one) must be given
    /// explicitly. Axis values outside the schema are an error; cells
    /// failing cross-parameter validation are skipped (appended to
    /// `skipped` when non-null) so rectangular grids over triangular
    /// spaces stay expressible. Returns an empty vector with `error`
    /// set on bad input.
    std::vector<Scenario> expand(const std::string& family_key,
                                 const ParamGrid& grid, std::string* error,
                                 std::vector<std::string>* skipped =
                                     nullptr) const;

    /// The standard ~20-cell quick sweep grid: every family sampled at
    /// cheap parameter points (what `gact_sweep --preset quick`,
    /// bench_engine_batch, and the CI sweep smoke run).
    std::vector<Scenario> quick_grid() const;

    /// Multi-line summary of every family grammar with ranges — what
    /// CLIs print under "unknown scenario".
    std::string grammar_help() const;

    /// Register a scenario. The factory's name/description/heavy fields
    /// are overwritten with the spec's, so factories only build
    /// content. Duplicate names are rejected (O(1) index lookup).
    void add(std::string name, std::string description, bool heavy,
             std::function<Scenario()> make);

    /// Register a family for canonical-name resolution and expand().
    void add_family(ScenarioFamily family);

    /// Register a legacy alias: `name` resolves through the family
    /// instance that `canonical` parses to, keeping the legacy name and
    /// description on the materialized Scenario.
    void add_alias(std::string name, std::string description,
                   const std::string& canonical);

private:
    Scenario materialize(const ScenarioSpec& spec) const;
    Scenario materialize(const ScenarioFamily& family,
                         const FamilyInstance& inst) const;

    std::vector<ScenarioSpec> specs_;
    std::unordered_map<std::string, std::size_t> index_;
    std::vector<ScenarioFamily> families_;
};

}  // namespace gact::engine
