#include "engine/stable_rule.h"

#include "core/lt_pipeline.h"

namespace gact::engine {

bool LtStableRule::stable(const core::SubdividedComplex& cx,
                          const topo::Simplex& s) const {
    return core::lt_stable_rule(n_, t_, cx, s);
}

std::string LtStableRule::name() const {
    return "lt-rule(n=" + std::to_string(n_) + ",t=" + std::to_string(t_) +
           ")";
}

bool UniformDepthRule::stable(const core::SubdividedComplex& cx,
                              const topo::Simplex&) const {
    return cx.depth() >= depth_;
}

std::string UniformDepthRule::name() const {
    return "uniform-depth(" + std::to_string(depth_) + ")";
}

}  // namespace gact::engine
