// Stabilization strategies for terminating subdivisions (Section 6.1).
//
// The GACT "<=" direction builds a terminating subdivision T whose stable
// complex K(T) carries the witness map. Which simplices terminate at each
// stage is the one degree of freedom of the construction: the L_t pipeline
// terminates simplices clear of the forbidden skeleton (Section 9.2),
// while the uniform rule terminates everything from a fixed depth on,
// reproducing the plain Chr^d subdivisions. A StableRule packages that
// choice so the engine's general route works for any of them — the L_t
// rule (core/lt_pipeline.h's lt_stable_rule) becomes one instance of the
// strategy rather than the hard-wired pipeline it used to be.
#pragma once

#include <memory>
#include <string>

#include "core/terminating_subdivision.h"

namespace gact::engine {

/// Strategy: which simplices of the current stage complex terminate.
class StableRule {
public:
    virtual ~StableRule() = default;

    /// Should `s` (a simplex of the stage complex `cx`) be marked stable?
    /// Must select a set closed under faces together with the simplices
    /// already stable (TerminatingSubdivision::advance's contract).
    virtual bool stable(const core::SubdividedComplex& cx,
                       const topo::Simplex& s) const = 0;

    /// Human-readable name for reports.
    virtual std::string name() const = 0;
};

/// The L_t pipeline's rule (Section 9.2): from depth 2 on, a simplex is
/// stable when every vertex carrier has dimension >= n - t. Delegates to
/// core::lt_stable_rule, which this class wraps as a strategy instance.
class LtStableRule final : public StableRule {
public:
    LtStableRule(int n, int t) : n_(n), t_(t) {}
    bool stable(const core::SubdividedComplex& cx,
                const topo::Simplex& s) const override;
    std::string name() const override;

private:
    int n_;
    int t_;
};

/// Terminate every simplex from a fixed depth on: K(T) = Chr^depth of the
/// base. The degenerate terminating subdivision behind plain-subdivision
/// scenarios (immediate snapshot, approximate agreement): every run of
/// every model lands, so admissibility always holds.
class UniformDepthRule final : public StableRule {
public:
    explicit UniformDepthRule(std::size_t depth) : depth_(depth) {}
    bool stable(const core::SubdividedComplex& cx,
                const topo::Simplex& s) const override;
    std::string name() const override;

private:
    std::size_t depth_;
};

}  // namespace gact::engine
