// Shared wall-clock helper for the engine's per-stage timings.
#pragma once

#include <chrono>

namespace gact::engine {

using StageClockPoint = std::chrono::steady_clock::time_point;

inline StageClockPoint stage_clock_now() {
    return std::chrono::steady_clock::now();
}

inline double millis_since(StageClockPoint start) {
    return std::chrono::duration<double, std::milli>(stage_clock_now() -
                                                     start)
        .count();
}

}  // namespace gact::engine
