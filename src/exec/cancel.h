// Hierarchical cancellation with deadlines: ONE stop type for every
// layer that used to roll its own — the portfolio race's raw
// atomic<bool>, EngineOptions time budgets, and the solve server's
// queue-wait deadlines all flow through a CancelToken now.
//
// A token is a cheap shared handle (copying shares the underlying
// state). Tokens form a tree: a child created with child_of() observes
// its parent's cancellation and deadline but cancels independently —
// cancelling the portfolio race must not cancel the whole solve, while
// the solve's deadline must stop the race. cancelled() is safe to call
// from any thread at any rate: it is one relaxed atomic load per chain
// link, plus one steady_clock read when (and only when) a deadline is
// armed — and an expired deadline is cached into the flag, so the
// clock is consulted at most until the first observation of expiry.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace gact::exec {

/// @brief Shared, hierarchical cancel + deadline flag.
///
/// Memory ordering is relaxed throughout on purpose: the flag is
/// advisory — an observer seeing it late merely runs one more unit of
/// work, the same unit-level uncertainty self-scheduling has anyway —
/// and no data flows through it (results are published by joins and
/// mutexes, exactly as in util/parallel.h).
class CancelToken {
public:
    /// A fresh root token: not cancelled, no deadline, no parent.
    CancelToken() : state_(std::make_shared<State>()) {}

    /// A child observing `parent`: parent cancellation and deadlines
    /// propagate down; cancelling the child does not touch the parent.
    static CancelToken child_of(const CancelToken& parent) {
        CancelToken child;
        child.state_->parent = parent.state_;
        return child;
    }

    /// Request cancellation of this token (and so of its descendants).
    void cancel() noexcept {
        state_->flag.store(true, std::memory_order_relaxed);
    }

    /// Arm (or tighten) a deadline: cancelled() returns true once the
    /// steady clock passes it. A later deadline never loosens an
    /// earlier one.
    void set_deadline(std::chrono::steady_clock::time_point when) noexcept {
        const std::int64_t ns =
            when.time_since_epoch() / std::chrono::nanoseconds(1);
        std::int64_t prev =
            state_->deadline_ns.load(std::memory_order_relaxed);
        while (prev == 0 || ns < prev) {
            if (state_->deadline_ns.compare_exchange_weak(
                    prev, ns, std::memory_order_relaxed)) {
                return;
            }
        }
    }

    /// Convenience: deadline `budget_ms` milliseconds from now.
    void set_deadline_after_ms(std::size_t budget_ms) noexcept {
        set_deadline(std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(budget_ms));
    }

    /// Has this token — or any ancestor — been cancelled or passed its
    /// deadline?
    bool cancelled() const noexcept {
        std::int64_t now_ns = -1;  // fetched lazily, at most once
        for (const State* s = state_.get(); s != nullptr;
             s = s->parent.get()) {
            if (s->flag.load(std::memory_order_relaxed)) return true;
            const std::int64_t deadline =
                s->deadline_ns.load(std::memory_order_relaxed);
            if (deadline == 0) continue;
            if (now_ns < 0) {
                now_ns = std::chrono::steady_clock::now()
                             .time_since_epoch() /
                         std::chrono::nanoseconds(1);
            }
            if (now_ns >= deadline) {
                // Cache expiry: later calls skip the clock entirely.
                s->flag.store(true, std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    }

private:
    struct State {
        // mutable: cancelled() caches deadline expiry into the flag
        // through the const chain walk.
        mutable std::atomic<bool> flag{false};
        std::atomic<std::int64_t> deadline_ns{0};  // 0 = no deadline
        std::shared_ptr<State> parent;
    };
    std::shared_ptr<State> state_;
};

}  // namespace gact::exec
