// Observability counters of one exec::Scheduler: how much work ran,
// how it was acquired (own deque, overflow queue, steal, helping
// waiter), how deep the queues are right now, and a log2 latency
// histogram of task run times. A snapshot, not a live view: counters
// are copied under the scheduler lock, so the fields are mutually
// consistent at the moment of the stats() call.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace gact::exec {

/// @brief Lifetime counters of a Scheduler, snapshot by
/// Scheduler::stats(). Served in the solve server's `stats` reply and
/// printed by `gact_sweep --stats`.
struct ExecStats {
    /// Resident worker threads of the pool.
    std::size_t workers = 0;
    /// Tasks run to completion — by workers and helping waiters alike
    /// (the three source counters below partition the non-own-deque
    /// part of this total).
    std::size_t tasks_executed = 0;
    /// Tasks a worker took from ANOTHER worker's deque (the imbalance
    /// signal: zero means every worker only ever drained its own forks).
    std::size_t tasks_stolen = 0;
    /// Tasks taken from the shared overflow queue (external
    /// submissions: non-worker threads and detached submit()).
    std::size_t tasks_overflow = 0;
    /// Tasks a TaskGroup::wait() caller ran inline while waiting for
    /// its own group (the deadlock-freedom mechanism; see task_group.h).
    std::size_t tasks_helped = 0;
    /// Queued-but-not-started tasks at snapshot time, across every
    /// deque and the overflow queue.
    std::size_t queue_depth = 0;

    /// Per-task wall-time histogram: bucket b counts tasks that ran
    /// for [2^b, 2^(b+1)) microseconds (bucket 0 also holds sub-1us
    /// tasks; the last bucket is open-ended, ~8.4s and up).
    static constexpr std::size_t kLatencyBuckets = 24;
    std::array<std::size_t, kLatencyBuckets> latency_log2_us{};

    /// Bucket index for a task that ran `micros` microseconds.
    static std::size_t latency_bucket(std::uint64_t micros) {
        std::size_t b = 0;
        while (micros > 1 && b + 1 < kLatencyBuckets) {
            micros >>= 1;
            ++b;
        }
        return b;
    }

    /// Total histogram mass (== tasks_executed unless tasks are mid
    /// flight, since both are bumped together under the lock).
    std::size_t latency_total() const {
        std::size_t total = 0;
        for (std::size_t count : latency_log2_us) total += count;
        return total;
    }
};

}  // namespace gact::exec
