// The library's parallel-for shape — N independent work units pulled
// off an atomic counter by a bounded set of loop tasks — expressed as
// ONE TaskGroup fork/join on the resident scheduler, instead of a
// fresh std::thread spawn-and-join per call (the historical
// util/parallel.h cost this header exists to remove; that header is
// now a thin alias of this one).
//
// Semantics are pinned by tests/parallel_test.cpp and byte-compatible
// with the old spawn path:
//  * max_parallelism <= 1 (or n < 2): the loop runs INLINE, on the
//    calling thread, untouched by the scheduler.
//  * otherwise min(max_parallelism, n) loop tasks self-schedule over a
//    relaxed atomic index — long units overlap short ones — and at
//    most `max_parallelism` units ever run concurrently, however many
//    workers the pool has.
//  * exceptions: each loop task records at most ONE exception — its
//    first — and raises an advisory stop flag; claimed units may
//    finish, unclaimed units never start, and after the join the
//    LOWEST-slot exception is rethrown as the one representative
//    failure.
//  * determinism: the scheduler orders nothing — callers write into
//    preallocated per-index slots and merge in index order, exactly as
//    before.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <vector>

#include "exec/task_group.h"

namespace gact::exec {

/// Run `fn(i)` for every i in [0, n) on `scheduler`, at most
/// `max_parallelism` units in flight. `fn` must be safe to call
/// concurrently on distinct indices. Everything `fn` wrote is
/// published to the caller when this returns (the group join
/// synchronizes, as the thread join used to).
template <typename Fn>
void for_index(Scheduler& scheduler, std::size_t n,
               unsigned max_parallelism, Fn&& fn) {
    if (max_parallelism <= 1 || n < 2) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    const unsigned slots = static_cast<unsigned>(
        std::min<std::size_t>(max_parallelism, n));
    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    std::vector<std::exception_ptr> errors(slots);
    TaskGroup group(scheduler);
    for (unsigned w = 0; w < slots; ++w) {
        group.run([&errors, &next, &stop, &fn, n, w] {
            try {
                while (!stop.load(std::memory_order_relaxed)) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= n) break;
                    fn(i);
                }
            } catch (...) {
                // One slot per loop task: a task that threw stops
                // pulling units, so this assignment happens at most
                // once per slot.
                errors[w] = std::current_exception();
                stop.store(true, std::memory_order_relaxed);
            }
        });
    }
    group.wait();  // loop tasks never throw; nothing to catch here
    for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
    }
}

}  // namespace gact::exec
