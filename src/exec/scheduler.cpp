#include "exec/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "exec/task_group.h"

namespace gact::exec {

namespace {

// Which pool (if any) the current thread is a worker of, and its index
// there. Lets enqueue() route forks to the forker's own deque and keeps
// "is this thread a worker?" a pointer compare.
thread_local const Scheduler* tls_scheduler = nullptr;
thread_local unsigned tls_worker = 0;

unsigned default_worker_count() {
    if (const char* env = std::getenv("GACT_EXEC_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1 && n <= 1024) return static_cast<unsigned>(n);
    }
    // Floor of 4: parallel_for_index callers may rely on a few units
    // genuinely overlapping (tests/parallel_test.cpp rendezvouses 4
    // workers), and small CI machines report 2.
    return std::max(4u, std::thread::hardware_concurrency());
}

std::uint64_t micros_between(std::chrono::steady_clock::time_point a,
                             std::chrono::steady_clock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a)
            .count());
}

}  // namespace

Scheduler::Scheduler(unsigned workers) {
    const unsigned n = std::max(1u, workers);
    deques_.resize(n);
    threads_.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
        threads_.emplace_back([this, w] { worker_loop(w); });
    }
}

Scheduler::~Scheduler() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

Scheduler& Scheduler::shared() {
    static Scheduler instance(default_worker_count());
    return instance;
}

void Scheduler::submit(std::function<void()> fn) {
    // run_item drops a group-less task's exception — the detached
    // contract in the header.
    enqueue(TaskItem{std::move(fn), nullptr, 0});
}

void Scheduler::enqueue(TaskItem item) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (tls_scheduler == this) {
            deques_[tls_worker].push_back(std::move(item));
        } else {
            overflow_.push_back(std::move(item));
        }
    }
    cv_.notify_one();
}

void Scheduler::run_item(TaskItem& item) {
    const auto start = std::chrono::steady_clock::now();
    std::exception_ptr error;
    try {
        item.fn();
    } catch (...) {
        error = std::current_exception();
    }
    const std::uint64_t micros =
        micros_between(start, std::chrono::steady_clock::now());
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.tasks_executed;
        ++stats_.latency_log2_us[ExecStats::latency_bucket(micros)];
    }
    // Retire with the group only AFTER the counters landed: the waiter
    // may return from wait() the instant the last task retires, and a
    // stats() snapshot taken then must already include it. Detached
    // tasks (no group) drop their exception — the submit() contract.
    if (item.group != nullptr) {
        item.group->finished(item.index, std::move(error));
    }
}

void Scheduler::worker_loop(unsigned self) {
    tls_scheduler = this;
    tls_worker = self;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        TaskItem item;
        bool found = false;
        if (!deques_[self].empty()) {
            // Own deque, newest-first: the cache-hot end, and the end
            // thieves do not touch.
            item = std::move(deques_[self].back());
            deques_[self].pop_back();
            found = true;
        } else if (!overflow_.empty()) {
            item = std::move(overflow_.front());
            overflow_.pop_front();
            ++stats_.tasks_overflow;
            found = true;
        } else {
            // Steal the OLDEST task of the first non-empty peer deque:
            // oldest is the conventional thief's end (the fork most
            // likely to fan out further), and round-robin from self+1
            // spreads thieves across victims.
            const std::size_t n = deques_.size();
            for (std::size_t k = 1; k < n && !found; ++k) {
                std::deque<TaskItem>& victim = deques_[(self + k) % n];
                if (victim.empty()) continue;
                item = std::move(victim.front());
                victim.pop_front();
                ++stats_.tasks_stolen;
                found = true;
            }
        }
        if (found) {
            lock.unlock();
            run_item(item);
            lock.lock();
            continue;
        }
        if (stopping_) return;
        // Every enqueue notifies under the mutex, so a plain wait would
        // do; the timeout is a cheap backstop against reasoning gaps.
        cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
}

bool Scheduler::help_one(TaskGroup* group) {
    const auto extract = [group](std::deque<TaskItem>& queue,
                                 TaskItem& out) {
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->group != group) continue;
            out = std::move(*it);
            queue.erase(it);
            return true;
        }
        return false;
    };
    TaskItem item;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        bool found = extract(overflow_, item);
        for (std::size_t w = 0; w < deques_.size() && !found; ++w) {
            found = extract(deques_[w], item);
        }
        if (!found) return false;
        ++stats_.tasks_helped;
    }
    run_item(item);
    return true;
}

ExecStats Scheduler::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    ExecStats out = stats_;
    out.workers = threads_.size();
    out.queue_depth = overflow_.size();
    for (const std::deque<TaskItem>& d : deques_) {
        out.queue_depth += d.size();
    }
    return out;
}

}  // namespace gact::exec
