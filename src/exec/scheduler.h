// The resident work-stealing scheduler: ONE execution substrate for
// every parallel layer of the library. parallel_for_index loop tasks,
// Engine::solve_batch shards, terminating-subdivision facet scans,
// fuzzer iteration batches, the chromatic-CSP portfolio race, and the
// solve server's request workers all run here as tasks, instead of
// each layer spawning and joining its own std::threads per call.
//
// Shape: a fixed pool of worker threads, one deque per worker plus a
// shared overflow queue. A task forked FROM a worker thread lands on
// that worker's own deque (the owner drains it newest-first); a task
// submitted from outside the pool lands on the overflow queue. An idle
// worker takes from its own deque first, then the overflow queue, then
// STEALS the oldest task off another worker's deque — so an imbalanced
// fork (one long task, many short) spreads across the pool instead of
// serializing behind the forker. All queues hang off one mutex: tasks
// here are meaty (whole solves, facet scans, CSP searches), so queue
// traffic is not the hot path, and the coarse lock keeps the
// concurrency story simple enough to be obviously TSan-clean.
//
// Determinism contract: the scheduler orders nothing. Callers that
// need reproducible results write into preallocated per-index slots
// and merge in index order (exec/for_index.h is that pattern, once) —
// which is why every digest golden stays bit-identical across worker
// counts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/exec_stats.h"

namespace gact::exec {

class TaskGroup;

/// @brief A resident pool of worker threads with per-worker
/// work-stealing deques and a shared overflow queue.
///
/// Construct an explicit instance to own a pool (tests do), or use the
/// process-wide lazy singleton shared() — sized by hardware
/// concurrency with a floor of 4, overridable via GACT_EXEC_THREADS.
class Scheduler {
public:
    /// A pool of `workers` resident threads (floored at 1).
    explicit Scheduler(unsigned workers);
    /// Joins the workers. Queued tasks that never started are dropped:
    /// destroy a scheduler only after every TaskGroup on it has been
    /// waited and every detached submit() has completed.
    ~Scheduler();
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// The process-wide pool (created on first use, joined at exit).
    static Scheduler& shared();

    unsigned worker_count() const {
        return static_cast<unsigned>(threads_.size());
    }

    /// Fire-and-forget: run `fn` on the pool with no join handle. The
    /// task must not throw — escaped exceptions are swallowed (the
    /// solve server's request tasks build error replies themselves).
    /// For joinable work use a TaskGroup.
    void submit(std::function<void()> fn);

    /// A consistent snapshot of the pool's lifetime counters.
    ExecStats stats() const;

private:
    friend class TaskGroup;

    /// One queued unit: the caller's closure plus the group it joins
    /// (null for detached submit() tasks, whose escaped exceptions are
    /// swallowed) and its submission index within that group. The
    /// group tag is what lets a waiting TaskGroup find and help its
    /// own queued tasks.
    struct TaskItem {
        std::function<void()> fn;
        TaskGroup* group = nullptr;
        std::size_t index = 0;
    };

    /// Queue a task: calling worker's own deque, or overflow when the
    /// caller is not one of this pool's workers.
    void enqueue(TaskItem item);
    /// Extract and run ONE queued task of `group`, from any queue;
    /// false if none is queued (they may all be running already). The
    /// helping half of TaskGroup::wait().
    bool help_one(TaskGroup* group);

    void worker_loop(unsigned self);
    /// Run a dequeued task, account for it (latency histogram +
    /// tasks_executed, under the lock), and only THEN retire it with
    /// its group — so once TaskGroup::wait() returns, the stats
    /// snapshot already includes every task of that group. Must be
    /// called without mutex_ held.
    void run_item(TaskItem& item);

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::deque<TaskItem>> deques_;  // one per worker
    std::deque<TaskItem> overflow_;             // external submissions
    bool stopping_ = false;
    ExecStats stats_;  // counters only; workers/queue_depth set in stats()
    std::vector<std::thread> threads_;
};

}  // namespace gact::exec
