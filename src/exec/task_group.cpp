#include "exec/task_group.h"

#include <chrono>
#include <utility>

namespace gact::exec {

TaskGroup::TaskGroup(Scheduler& scheduler) : scheduler_(scheduler) {}

TaskGroup::~TaskGroup() {
    try {
        wait();
    } catch (...) {
        // The header documents this drop: a destructor cannot rethrow.
    }
}

void TaskGroup::run(std::function<void()> fn) {
    std::size_t index;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
        index = next_index_++;
    }
    // run_item calls finished(index, ...) after the task retires (and
    // after the scheduler's counters were bumped — see its contract).
    scheduler_.enqueue(Scheduler::TaskItem{std::move(fn), this, index});
}

void TaskGroup::finished(std::size_t index, std::exception_ptr error) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error != nullptr && index < error_index_) {
        error_index_ = index;
        error_ = std::move(error);
    }
    if (--pending_ == 0) done_cv_.notify_all();
}

void TaskGroup::wait() {
    for (;;) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (pending_ == 0) break;
        }
        if (scheduler_.help_one(this)) continue;
        // Nothing of ours is queued — everything outstanding is
        // already running on workers (or on other helpers). Sleep
        // until a task retires; finished() notifies under this mutex,
        // so no wakeup is missed, and the timeout is a backstop that
        // also re-polls for tasks a running group member may fork.
        std::unique_lock<std::mutex> lock(mutex_);
        if (pending_ == 0) break;
        done_cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
    std::exception_ptr error;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        error = std::exchange(error_, nullptr);
        error_index_ = kNoError;
        next_index_ = 0;
    }
    if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace gact::exec
