// Fork/join over a Scheduler, with the exception contract every caller
// of util/parallel.h already relies on: one representative failure,
// the LOWEST-submission-index exception rethrown at wait().
//
// Deadlock freedom (nested groups on a bounded pool): wait() does not
// just block — it HELPS, extracting queued tasks of its own group from
// the scheduler's queues and running them inline. So a worker that
// forks an inner group and waits on it makes progress on that group
// itself even when every other worker is busy; waits only ever point
// from a task to the group it created (a forest, no cycles), and leaf
// groups complete by the waiter's own hands if need be. This holds all
// the way down to a 1-worker pool — and even an external (non-worker)
// thread waiting on a group drains that group's overflow tasks itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>

#include "exec/scheduler.h"

namespace gact::exec {

/// @brief A join scope for tasks forked onto a Scheduler.
///
/// Not thread-safe to wait() concurrently from two threads; run() may
/// be called from the group's own tasks (nested forks join the same
/// group).
class TaskGroup {
public:
    explicit TaskGroup(Scheduler& scheduler = Scheduler::shared());
    /// Joins outstanding tasks; any task exception a missing wait()
    /// would have rethrown is dropped. Call wait() yourself.
    ~TaskGroup();
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Fork: queue `fn` on the scheduler as part of this group. Its
    /// submission index (0, 1, ...) is its rank in the representative-
    /// failure contract below.
    void run(std::function<void()> fn);

    /// Join: run own-group queued tasks inline while any task is
    /// outstanding, then — once all have finished — rethrow the
    /// exception of the lowest-submission-index task that threw, if
    /// any (deterministic given WHICH tasks threw; deliberately not
    /// "first thrown in time", which is meaningless wall-clock order).
    /// The group is reusable after wait() returns.
    void wait();

private:
    friend class Scheduler;
    /// Task epilogue: record a failure against `index`, retire the
    /// task, wake the waiter on the last one.
    void finished(std::size_t index, std::exception_ptr error);

    static constexpr std::size_t kNoError = static_cast<std::size_t>(-1);

    Scheduler& scheduler_;
    std::mutex mutex_;
    std::condition_variable done_cv_;
    std::size_t pending_ = 0;
    std::size_t next_index_ = 0;
    std::size_t error_index_ = kNoError;
    std::exception_ptr error_;
};

}  // namespace gact::exec
