#include "iis/affine_projection.h"

#include "iis/projection.h"
#include "util/require.h"

namespace gact::iis {

namespace {

/// The one-round update matrix restricted to `members` (row-stochastic):
/// row p, column q holds q's weight in p's Section 3.2 position update.
std::vector<std::vector<Rational>> round_matrix(
    const OrderedPartition& round, const std::vector<ProcessId>& members) {
    const std::size_t m = members.size();
    std::vector<std::size_t> index(kMaxProcesses, m);
    for (std::size_t i = 0; i < m; ++i) index[members[i]] = i;

    std::vector<std::vector<Rational>> a(m, std::vector<Rational>(m));
    for (std::size_t i = 0; i < m; ++i) {
        const ProcessId p = members[i];
        const ProcessSet snap = round.snapshot_of(p);
        const auto c = static_cast<std::int64_t>(snap.size());
        for (ProcessId q : snap.members()) {
            ensure(index[q] < m,
                   "round_matrix: snapshot leaves the member set");
            a[i][index[q]] = Rational(q == p ? 1 : 2, 2 * c - 1);
        }
    }
    return a;
}

std::vector<std::vector<Rational>> multiply(
    const std::vector<std::vector<Rational>>& x,
    const std::vector<std::vector<Rational>>& y) {
    const std::size_t m = x.size();
    std::vector<std::vector<Rational>> out(m, std::vector<Rational>(m));
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t k = 0; k < m; ++k) {
            if (x[i][k].is_zero()) continue;
            for (std::size_t j = 0; j < m; ++j) {
                out[i][j] += x[i][k] * y[k][j];
            }
        }
    }
    return out;
}

}  // namespace

std::vector<std::pair<ProcessId, Rational>> tail_stationary_distribution(
    const Run& run) {
    // The recurrent class of the cycle's composite matrix is fast(r).
    const std::vector<ProcessId> fast = run.fast().members();
    const std::size_t m = fast.size();

    // Composite one-cycle matrix over the fast processes (closed under
    // snapshots within the cycle, so the restriction is row-stochastic).
    std::vector<std::vector<Rational>> a(m, std::vector<Rational>(m));
    for (std::size_t i = 0; i < m; ++i) a[i][i] = Rational(1);
    for (const OrderedPartition& round : run.cycle()) {
        // Positions update x <- A_round x, so later rounds compose on the
        // left: A_cycle = A_c ... A_2 A_1.
        a = multiply(round_matrix(round.restrict_to(run.fast()), fast), a);
    }

    // Solve w^T A = w^T with sum(w) = 1: rows are (A^T - I) plus the
    // normalization; the aperiodic single-class chain makes the solution
    // unique, so m of the m+1 equations are independent.
    std::vector<std::vector<Rational>> system(
        m + 1, std::vector<Rational>(m));
    std::vector<Rational> rhs(m + 1);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            system[i][j] = a[j][i] - (i == j ? Rational(1) : Rational(0));
        }
        rhs[i] = Rational(0);
    }
    for (std::size_t j = 0; j < m; ++j) system[m][j] = Rational(1);
    rhs[m] = Rational(1);

    const auto w = topo::solve_linear_system(std::move(system), std::move(rhs));
    ensure(w.has_value(),
           "tail_stationary_distribution: stationary system not unique");
    std::vector<std::pair<ProcessId, Rational>> out;
    out.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
        ensure(!(*w)[i].is_negative(),
               "tail_stationary_distribution: negative stationary weight");
        out.emplace_back(fast[i], (*w)[i]);
    }
    return out;
}

topo::BaryPoint affine_projection(
    const Run& run,
    const std::vector<topo::VertexId>& input_vertex_of_process) {
    const auto weights = tail_stationary_distribution(run);
    // Positions at the start of the cycle (after the prefix).
    const auto table =
        view_positions(run, run.prefix().size(), input_vertex_of_process);
    std::vector<topo::BaryPoint> points;
    std::vector<Rational> coefficients;
    for (const auto& [p, w] : weights) {
        ensure(table[run.prefix().size()][p].has_value(),
               "affine_projection: fast process missing a position");
        points.push_back(*table[run.prefix().size()][p]);
        coefficients.push_back(w);
    }
    return topo::BaryPoint::combination(points, coefficients);
}

topo::BaryPoint affine_projection(const Run& run) {
    std::vector<topo::VertexId> inputs;
    for (ProcessId p = 0; p < run.num_processes(); ++p) {
        inputs.push_back(static_cast<topo::VertexId>(p));
    }
    return affine_projection(run, inputs);
}

}  // namespace gact::iis
