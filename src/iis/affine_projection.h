// The affine projection pi : R -> |s| (paper, Section 5), computed
// exactly for eventually-periodic runs.
//
// Every run's simplex chain sigma_0 ⊇ sigma_1 ⊇ ... converges to a single
// point pi(r) of |s|. For an eventually-periodic run the convergence is
// governed by a linear process: one tail round updates the position
// vector by a row-stochastic matrix A (process p's new position is the
// Section 3.2 affine combination of its snapshot's positions), and the
// composite matrix of one full cycle has a single aperiodic recurrent
// class — exactly fast(r), the closure of the minimal core under
// "sees within the cycle". Hence lim A^k = 1 w^T with w the stationary
// distribution on fast(r), and
//
//      pi(r) = sum over q in fast(r) of w_q * position_q(prefix end),
//
// an exact rational point. The paper identifies pi(r) with minimal(r)
// and observes that the canonical coloring of pi(r) is fast(r); the tests
// verify pi(r) = pi(minimal(r)), containment in every sigma_k, and that
// landing simplices of the L_t pipeline contain pi(r).
#pragma once

#include "iis/models.h"
#include "iis/run.h"
#include "topology/geometry.h"

namespace gact::iis {

/// The exact affine projection of a run, with processes starting at the
/// given base vertices (input_vertex_of_process[p] is p's corner; use
/// 0..n for the standard simplex).
topo::BaryPoint affine_projection(
    const Run& run, const std::vector<topo::VertexId>& input_vertex_of_process);

/// Convenience for the standard simplex: process p starts at vertex p.
topo::BaryPoint affine_projection(const Run& run);

/// The stationary weights w over fast(r) (by process id) used by the
/// projection; exposed for tests and diagnostics.
std::vector<std::pair<ProcessId, Rational>> tail_stationary_distribution(
    const Run& run);

/// A geometric model (paper, Section 5): the runs whose affine projection
/// lies in a region S of |s|, i.e. pi^{-1}(S). All the paper's example
/// models are geometric; this class also admits regions that are not
/// unions of fast-set cells.
class GeometricModel final : public Model {
public:
    GeometricModel(std::string name,
                   std::function<bool(const topo::BaryPoint&)> region)
        : name_(std::move(name)), region_(std::move(region)) {}

    bool contains(const Run& r) const override {
        return region_(affine_projection(r));
    }
    std::string name() const override { return name_; }

private:
    std::string name_;
    std::function<bool(const topo::BaryPoint&)> region_;
};

}  // namespace gact::iis
