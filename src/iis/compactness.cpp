#include "iis/compactness.h"

#include "util/require.h"

namespace gact::iis {

std::vector<Run> largest_agreeing_class(const std::vector<Run>& runs,
                                        std::size_t depth) {
    require(!runs.empty(), "largest_agreeing_class: empty family");
    std::vector<Run> best;
    for (const Run& candidate : runs) {
        std::vector<Run> cls;
        for (const Run& r : runs) {
            if (r.round(depth) == candidate.round(depth)) cls.push_back(r);
        }
        if (cls.size() > best.size()) best = cls;
    }
    return best;
}

DiagonalExtraction diagonal_extraction(const std::vector<Run>& runs,
                                       std::size_t max_depth) {
    require(!runs.empty(), "diagonal_extraction: empty family");
    std::vector<Run> current = runs;
    std::vector<std::size_t> sizes;
    for (std::size_t depth = 0; depth < max_depth; ++depth) {
        current = largest_agreeing_class(current, depth);
        sizes.push_back(current.size());
    }
    // The limit point of the extracted subsequence: any survivor serves
    // as the representative — every survivor is within 1/(1+max_depth)
    // of it, which is the convergence statement of the lemma.
    Run limit = current.front();
    return DiagonalExtraction(std::move(sizes), std::move(current),
                              std::move(limit));
}

}  // namespace gact::iis
