// The compactness construction of Lemma 5.1, as library code.
//
// From any (finitely represented) family of runs, extract a subsequence
// converging in the run metric by the paper's diagonal argument: group by
// agreeing prefixes of growing length, always keeping a largest class.
// Since each round has finitely many possible values, pigeonhole keeps
// the classes non-empty forever; pairwise distances inside the class at
// depth k are at most 1/(1+k).
#pragma once

#include <vector>

#include "iis/run.h"

namespace gact::iis {

/// One extraction step: the largest sub-family agreeing on round `depth`.
std::vector<Run> largest_agreeing_class(const std::vector<Run>& runs,
                                        std::size_t depth);

/// The diagonal argument, carried to `max_depth`: the trace of class
/// sizes, and the surviving class (whose pairwise distance is at most
/// 1/(1+max_depth) by construction).
struct DiagonalExtraction {
    std::vector<std::size_t> class_sizes;  // per depth 0..max_depth-1
    std::vector<Run> survivors;
    /// The limit run the survivors converge to: the common prefix,
    /// continued by the first survivor's tail.
    Run limit;

    DiagonalExtraction(std::vector<std::size_t> sizes, std::vector<Run> s,
                       Run l)
        : class_sizes(std::move(sizes)),
          survivors(std::move(s)),
          limit(std::move(l)) {}
};

DiagonalExtraction diagonal_extraction(const std::vector<Run>& runs,
                                       std::size_t max_depth);

}  // namespace gact::iis
