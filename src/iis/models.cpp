#include "iis/models.h"

#include "util/require.h"

namespace gact::iis {

TResilientModel::TResilientModel(std::uint32_t num_processes, std::uint32_t t)
    : num_processes_(num_processes), t_(t) {
    require(t < num_processes,
            "TResilientModel: t must be smaller than the process count");
}

bool TResilientModel::contains(const Run& r) const {
    require(r.num_processes() == num_processes_,
            "TResilientModel: process count mismatch");
    return r.fast().size() >= num_processes_ - t_;
}

std::string TResilientModel::name() const {
    return "Res_" + std::to_string(t_);
}

AdversaryModel::AdversaryModel(std::string name,
                               std::vector<ProcessSet> allowed_slow_sets)
    : name_(std::move(name)),
      allowed_slow_sets_(std::move(allowed_slow_sets)) {}

bool AdversaryModel::contains(const Run& r) const {
    const ProcessSet slow = r.slow();
    for (const ProcessSet& s : allowed_slow_sets_) {
        if (s == slow) return true;
    }
    return false;
}

}  // namespace gact::iis
