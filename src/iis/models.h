// Sub-IIS models (paper, Section 2.2).
//
// A model is any subset M of the runs of IIS. The paper's examples — the
// wait-free model WF, the t-resilient models Res_t, the k-obstruction-free
// models OF_k, and the adversary models M_adv(A) — are all determined by
// the fast set of a run, and so are decidable on this library's
// eventually-periodic runs. The "fast" companion M_fast of Section 4.5
// (minimal runs of M) is provided as a wrapper.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "iis/run.h"

namespace gact::iis {

/// A sub-IIS model: a (decidable) set of runs.
class Model {
public:
    virtual ~Model() = default;

    /// Is the run in the model?
    virtual bool contains(const Run& r) const = 0;

    /// Human-readable name for diagnostics and reports.
    virtual std::string name() const = 0;
};

/// Example 2.1: the wait-free model WF — all runs.
class WaitFreeModel final : public Model {
public:
    bool contains(const Run&) const override { return true; }
    std::string name() const override { return "WF"; }
};

/// Example 2.2: Res_t — runs with |fast(r)| >= n+1-t ("at most t slow").
class TResilientModel final : public Model {
public:
    TResilientModel(std::uint32_t num_processes, std::uint32_t t);
    bool contains(const Run& r) const override;
    std::string name() const override;

private:
    std::uint32_t num_processes_;
    std::uint32_t t_;
};

/// Example 2.3: OF_k — runs with |fast(r)| <= k.
class ObstructionFreeModel final : public Model {
public:
    explicit ObstructionFreeModel(std::uint32_t k) : k_(k) {}
    bool contains(const Run& r) const override {
        return r.fast().size() <= k_;
    }
    std::string name() const override {
        return "OF_" + std::to_string(k_);
    }

private:
    std::uint32_t k_;
};

/// Example 2.4: M_adv(A) — runs whose slow set belongs to the adversary A
/// (a set of subsets of {0, .., n}).
class AdversaryModel final : public Model {
public:
    AdversaryModel(std::string name, std::vector<ProcessSet> allowed_slow_sets);
    bool contains(const Run& r) const override;
    std::string name() const override { return name_; }

private:
    std::string name_;
    std::vector<ProcessSet> allowed_slow_sets_;
};

/// Section 4.5: M_fast = { minimal(r') : r' in M }. For fast-set-determined
/// models this equals { r in M : r is minimal }, which is how we decide it.
class MinimalRunsModel final : public Model {
public:
    explicit MinimalRunsModel(std::shared_ptr<const Model> base)
        : base_(std::move(base)) {}
    bool contains(const Run& r) const override {
        return r.is_minimal() && base_->contains(r);
    }
    std::string name() const override { return base_->name() + "_fast"; }

private:
    std::shared_ptr<const Model> base_;
};

/// The union of two models (a sub-IIS model is just a set of runs, so
/// models compose by set algebra; paper, Section 2.2).
class UnionModel final : public Model {
public:
    UnionModel(std::shared_ptr<const Model> a, std::shared_ptr<const Model> b)
        : a_(std::move(a)), b_(std::move(b)) {}
    bool contains(const Run& r) const override {
        return a_->contains(r) || b_->contains(r);
    }
    std::string name() const override {
        return a_->name() + " ∪ " + b_->name();
    }

private:
    std::shared_ptr<const Model> a_;
    std::shared_ptr<const Model> b_;
};

/// The intersection of two models.
class IntersectionModel final : public Model {
public:
    IntersectionModel(std::shared_ptr<const Model> a,
                      std::shared_ptr<const Model> b)
        : a_(std::move(a)), b_(std::move(b)) {}
    bool contains(const Run& r) const override {
        return a_->contains(r) && b_->contains(r);
    }
    std::string name() const override {
        return a_->name() + " ∩ " + b_->name();
    }

private:
    std::shared_ptr<const Model> a_;
    std::shared_ptr<const Model> b_;
};

/// A model given by an arbitrary predicate (for tests and experiments;
/// covers the paper's "not necessarily geometric" generality).
class PredicateModel final : public Model {
public:
    PredicateModel(std::string name, std::function<bool(const Run&)> pred)
        : name_(std::move(name)), pred_(std::move(pred)) {}
    bool contains(const Run& r) const override { return pred_(r); }
    std::string name() const override { return name_; }

private:
    std::string name_;
    std::function<bool(const Run&)> pred_;
};

}  // namespace gact::iis
