#include "iis/ordered_partition.h"

#include <ostream>

#include "topology/combinatorics.h"
#include "util/require.h"

namespace gact::iis {

OrderedPartition::OrderedPartition(std::vector<ProcessSet> blocks)
    : blocks_(std::move(blocks)) {
    for (const ProcessSet& b : blocks_) {
        require(!b.empty(), "OrderedPartition: empty block");
        require(!support_.intersects(b), "OrderedPartition: overlapping blocks");
        support_ = support_ | b;
    }
}

OrderedPartition OrderedPartition::concurrent(ProcessSet s) {
    require(!s.empty(), "OrderedPartition::concurrent: empty set");
    return OrderedPartition({s});
}

OrderedPartition OrderedPartition::sequential(
    const std::vector<ProcessId>& order) {
    std::vector<ProcessSet> blocks;
    blocks.reserve(order.size());
    for (ProcessId p : order) blocks.push_back(ProcessSet::single(p));
    return OrderedPartition(std::move(blocks));
}

std::size_t OrderedPartition::block_index(ProcessId p) const {
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].contains(p)) return i;
    }
    throw precondition_error("OrderedPartition: process not in support");
}

ProcessSet OrderedPartition::snapshot_of(ProcessId p) const {
    ProcessSet seen;
    for (const ProcessSet& b : blocks_) {
        seen = seen | b;
        if (b.contains(p)) return seen;
    }
    throw precondition_error("OrderedPartition: process not in support");
}

OrderedPartition OrderedPartition::restrict_to(ProcessSet keep) const {
    std::vector<ProcessSet> blocks;
    for (const ProcessSet& b : blocks_) {
        const ProcessSet kept = b & keep;
        if (!kept.empty()) blocks.push_back(kept);
    }
    return OrderedPartition(std::move(blocks));
}

std::string OrderedPartition::to_string() const {
    std::string out = "(";
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        if (i > 0) out += "|";
        out += blocks_[i].to_string();
    }
    out += ")";
    return out;
}

std::ostream& operator<<(std::ostream& os, const OrderedPartition& p) {
    return os << p.to_string();
}

std::vector<OrderedPartition> all_ordered_partitions(ProcessSet support) {
    require(!support.empty(), "all_ordered_partitions: empty support");
    const std::vector<ProcessId> members = support.members();
    std::vector<OrderedPartition> out;
    for (const topo::OrderedIndexPartition& part :
         topo::ordered_partitions(members.size())) {
        std::vector<ProcessSet> blocks;
        blocks.reserve(part.size());
        for (const std::vector<std::size_t>& block : part) {
            ProcessSet b;
            for (std::size_t i : block) b = b.with(members[i]);
            blocks.push_back(b);
        }
        out.emplace_back(std::move(blocks));
    }
    return out;
}

}  // namespace gact::iis
