// Ordered partitions of process sets: one round of immediate snapshot.
//
// Paper, Section 2.1: each round k of an IIS run is a set S_k of processes
// equipped with an ordered partition S_k = S^1_k ∪ ... ∪ S^{n_k}_k, the
// order in which groups of processes access the immediate-snapshot object.
// A process p in block j "sees" exactly the processes in blocks 1..j.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/process_set.h"

namespace gact::iis {

using gact::ProcessId;
using gact::ProcessSet;

/// One immediate-snapshot round: an ordered partition of a process set.
class OrderedPartition {
public:
    OrderedPartition() = default;

    /// From blocks in order; blocks must be non-empty and disjoint.
    explicit OrderedPartition(std::vector<ProcessSet> blocks);

    /// The one-block partition (fully concurrent round).
    static OrderedPartition concurrent(ProcessSet s);

    /// The singleton-block partition following the given process order.
    static OrderedPartition sequential(const std::vector<ProcessId>& order);

    const std::vector<ProcessSet>& blocks() const noexcept { return blocks_; }
    std::size_t num_blocks() const noexcept { return blocks_.size(); }
    bool empty() const noexcept { return blocks_.empty(); }

    /// The union of all blocks (the set S_k).
    ProcessSet support() const noexcept { return support_; }

    bool contains(ProcessId p) const noexcept { return support_.contains(p); }

    /// The index of p's block. Requires p in the support.
    std::size_t block_index(ProcessId p) const;

    /// The processes p sees in this round: union of blocks 1..block(p),
    /// including p itself.
    ProcessSet snapshot_of(ProcessId p) const;

    /// Restriction to `keep`: drop other processes, drop empty blocks.
    OrderedPartition restrict_to(ProcessSet keep) const;

    friend bool operator==(const OrderedPartition& a,
                           const OrderedPartition& b) noexcept = default;

    /// "({0,2}|{1})".
    std::string to_string() const;

private:
    std::vector<ProcessSet> blocks_;
    ProcessSet support_;
};

std::ostream& operator<<(std::ostream& os, const OrderedPartition& p);

/// All ordered partitions of `support` (ordered Bell(|support|) of them).
std::vector<OrderedPartition> all_ordered_partitions(ProcessSet support);

}  // namespace gact::iis
