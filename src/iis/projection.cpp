#include "iis/projection.h"

#include "util/require.h"

namespace gact::iis {

SubdivisionChain::SubdivisionChain(const topo::ChromaticComplex& base) {
    levels_.push_back(topo::SubdividedComplex::identity(base));
}

const topo::SubdividedComplex& SubdivisionChain::level(std::size_t k) {
    while (levels_.size() <= k) {
        levels_.push_back(levels_.back().chromatic_subdivision());
    }
    return levels_[k];
}

topo::VertexId view_vertex(SubdivisionChain& chain, const Run& run,
                           ProcessId p, std::size_t k,
                           const topo::Simplex& input_facet) {
    const topo::ChromaticComplex& base = chain.base();
    require(base.contains(input_facet),
            "view_vertex: input facet not in the base complex");
    if (k == 0) {
        return base.vertex_with_color(input_facet, p);
    }
    const OrderedPartition& round = run.round(k - 1);
    require(round.contains(p), "view_vertex: process not in this round");
    // The simplex of (k-1)-views p saw; p's own previous vertex is the
    // provenance vertex of the Chr pair.
    std::vector<topo::VertexId> seen;
    for (ProcessId q : round.snapshot_of(p).members()) {
        seen.push_back(view_vertex(chain, run, q, k - 1, input_facet));
    }
    const topo::VertexId own = view_vertex(chain, run, p, k - 1, input_facet);
    return chain.level(k).vertex_for(own, topo::Simplex(std::move(seen)));
}

topo::Simplex run_simplex(SubdivisionChain& chain, const Run& run,
                          std::size_t k, const topo::Simplex& input_facet) {
    const ProcessSet procs =
        k == 0 ? run.participants() : run.round(k - 1).support();
    std::vector<topo::VertexId> verts;
    for (ProcessId p : procs.members()) {
        verts.push_back(view_vertex(chain, run, p, k, input_facet));
    }
    const topo::Simplex out{std::move(verts)};
    ensure(chain.level(k).complex().contains(out),
           "run_simplex: views do not span a simplex of Chr^k");
    return out;
}

std::vector<std::vector<std::optional<topo::BaryPoint>>> view_positions(
    const Run& run, std::size_t k,
    const std::vector<topo::VertexId>& input_vertex_of_process) {
    const std::uint32_t n = run.num_processes();
    require(input_vertex_of_process.size() == n,
            "view_positions: one input vertex per process");
    std::vector<std::vector<std::optional<topo::BaryPoint>>> table(
        k + 1, std::vector<std::optional<topo::BaryPoint>>(n));
    for (ProcessId p = 0; p < n; ++p) {
        table[0][p] = topo::BaryPoint::vertex(input_vertex_of_process[p]);
    }
    for (std::size_t m = 1; m <= k; ++m) {
        const OrderedPartition& round = run.round(m - 1);
        for (ProcessId p : round.support().members()) {
            const ProcessSet snap = round.snapshot_of(p);
            const auto c = static_cast<std::int64_t>(snap.size());
            std::vector<topo::BaryPoint> pts;
            std::vector<Rational> weights;
            for (ProcessId q : snap.members()) {
                ensure(table[m - 1][q].has_value(),
                       "view_positions: snapshot of dropped process");
                pts.push_back(*table[m - 1][q]);
                weights.emplace_back(q == p ? 1 : 2, 2 * c - 1);
            }
            table[m][p] = topo::BaryPoint::combination(pts, weights);
        }
    }
    return table;
}

std::vector<topo::BaryPoint> run_simplex_positions(
    const Run& run, std::size_t k,
    const std::vector<topo::VertexId>& input_vertex_of_process) {
    const auto table = view_positions(run, k, input_vertex_of_process);
    const ProcessSet procs =
        k == 0 ? run.participants() : run.round(k - 1).support();
    std::vector<topo::BaryPoint> out;
    for (ProcessId p : procs.members()) out.push_back(*table[k][p]);
    return out;
}

Rational simplex_diameter(const topo::SubdividedComplex& level,
                          const topo::Simplex& s) {
    Rational best(0);
    const auto positions = level.positions_of(s);
    for (std::size_t i = 0; i < positions.size(); ++i) {
        for (std::size_t j = i + 1; j < positions.size(); ++j) {
            const Rational d = positions[i].l1_distance(positions[j]);
            if (d > best) best = d;
        }
    }
    return best;
}

}  // namespace gact::iis
