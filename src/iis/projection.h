// The run <-> subdivision correspondence and affine projection (paper,
// Section 5).
//
// A run of IIS corresponds to a sequence of simplices sigma_k in Chr^k s
// with |sigma_{k+1}| ⊆ |sigma_k|: the k-th views of the processes of round
// k are vertices of Chr^k s (the pair (previous own vertex, simplex of
// seen vertices) is exactly a Chr vertex (p, tau)), and sigma_k is the
// simplex they span. Every run converges to a point of |s| — the affine
// projection pi(r) — whose canonical coloring is fast(r).
#pragma once

#include <vector>

#include "iis/run.h"
#include "topology/subdivision.h"

namespace gact::iis {

/// A lazily-extended chain s = Chr^0 I, Chr^1 I, Chr^2 I, ...
class SubdivisionChain {
public:
    explicit SubdivisionChain(const topo::ChromaticComplex& base);

    /// The subdivision Chr^k I, building intermediate levels as needed.
    const topo::SubdividedComplex& level(std::size_t k);

    /// Number of levels built so far (>= 1; level 0 always exists).
    std::size_t built() const noexcept { return levels_.size(); }

    const topo::ChromaticComplex& base() const { return levels_[0].base(); }

private:
    std::vector<topo::SubdividedComplex> levels_;
};

/// The vertex of Chr^k(base) corresponding to view(p, k) in the run, when
/// all processes start on the facet `input_facet` of the base complex
/// (vertex of color p of that facet at k = 0). Requires p to be in round k
/// (1-indexed steps) or k == 0.
topo::VertexId view_vertex(SubdivisionChain& chain, const Run& run,
                           ProcessId p, std::size_t k,
                           const topo::Simplex& input_facet);

/// sigma_k: the simplex of Chr^k(base) spanned by the k-th views of the
/// processes of round k (all participants for k == 0).
topo::Simplex run_simplex(SubdivisionChain& chain, const Run& run,
                          std::size_t k, const topo::Simplex& input_facet);

/// The l1 diameter of the realization of a simplex of Chr^k(base).
Rational simplex_diameter(const topo::SubdividedComplex& level,
                          const topo::Simplex& s);

/// Exact positions in |s| of all views up to round `k`, computed directly
/// from the subdivision formula (Section 3.2) without materializing
/// Chr^k: pos(p, 0) is the base vertex colored p of `input_facet`, and
/// pos(p, m) = 1/(2c-1) pos(p, m-1) + 2/(2c-1) sum of the other seen
/// positions, with c the snapshot size. table[m][p] is empty once p has
/// dropped out.
std::vector<std::vector<std::optional<topo::BaryPoint>>> view_positions(
    const Run& run, std::size_t k,
    const std::vector<topo::VertexId>& input_vertex_of_process);

/// The positions spanning sigma_k: the k-th views of round k's processes
/// (participants for k = 0). These are the points whose containment in a
/// stable simplex realizes the landing condition of Theorem 6.1.
std::vector<topo::BaryPoint> run_simplex_positions(
    const Run& run, std::size_t k,
    const std::vector<topo::VertexId>& input_vertex_of_process);

}  // namespace gact::iis
