#include "iis/run.h"

#include <numeric>
#include <ostream>

#include "util/require.h"

namespace gact::iis {

namespace {

std::size_t lcm_size(std::size_t a, std::size_t b) {
    return a / std::gcd(a, b) * b;
}

}  // namespace

Run::Run(std::uint32_t num_processes, std::vector<OrderedPartition> prefix,
         std::vector<OrderedPartition> cycle)
    : num_processes_(num_processes),
      prefix_(std::move(prefix)),
      cycle_(std::move(cycle)) {
    require(num_processes_ >= 1 && num_processes_ <= kMaxProcesses,
            "Run: process count out of range");
    require(!cycle_.empty(), "Run: cycle must be non-empty");
    const ProcessSet full = ProcessSet::full(num_processes_);
    ProcessSet prev = full;
    for (const OrderedPartition& p : prefix_) {
        require(!p.empty(), "Run: empty round");
        require(prev.contains_all(p.support()),
                "Run: supports must be decreasing");
        require(full.contains_all(p.support()), "Run: unknown process");
        prev = p.support();
    }
    const ProcessSet tail_support = cycle_[0].support();
    require(prev.contains_all(tail_support),
            "Run: supports must be decreasing into the cycle");
    for (const OrderedPartition& p : cycle_) {
        require(p.support() == tail_support,
                "Run: all cycle rounds must share one support");
        require(full.contains_all(p.support()), "Run: unknown process");
    }
}

Run Run::forever(std::uint32_t num_processes, OrderedPartition round) {
    return Run(num_processes, {}, {std::move(round)});
}

const OrderedPartition& Run::round(std::size_t k) const {
    if (k < prefix_.size()) return prefix_[k];
    return cycle_[(k - prefix_.size()) % cycle_.size()];
}

std::size_t Run::decision_horizon(const Run& other) const {
    return std::max(prefix_.size(), other.prefix_.size()) +
           lcm_size(cycle_.size(), other.cycle_.size());
}

bool operator==(const Run& a, const Run& b) {
    if (a.num_processes_ != b.num_processes_) return false;
    const std::size_t h = a.decision_horizon(b);
    for (std::size_t k = 0; k < h; ++k) {
        if (!(a.round(k) == b.round(k))) return false;
    }
    return true;
}

bool Run::is_extension_of(const Run& smaller) const {
    if (num_processes_ != smaller.num_processes_) return false;
    const std::size_t h = decision_horizon(smaller);
    for (std::size_t k = 0; k < h; ++k) {
        const OrderedPartition& small_round = smaller.round(k);
        const OrderedPartition& big_round = round(k);
        // (i) S_k ⊆ S'_k.
        if (!big_round.support().contains_all(small_round.support())) {
            return false;
        }
        // (ii) views of smaller's participants preserved: each such
        // process present in this round must have an identical snapshot.
        for (ProcessId p : small_round.support().members()) {
            if (!(small_round.snapshot_of(p) == big_round.snapshot_of(p))) {
                return false;
            }
        }
    }
    return true;
}

Run Run::minimal() const {
    // Step 1: the tail core. For each process in the cycle support compute
    // the closure of {i} under "sees within some cycle round"; the closures
    // are totally ordered by inclusion (processes in one round have
    // comparable snapshots), and the smallest is the tail of the minimal
    // run.
    const ProcessSet tail_support = infinite_participants();
    const auto cycle_closure = [&](ProcessId seed) {
        ProcessSet k = ProcessSet::single(seed);
        bool changed = true;
        while (changed) {
            changed = false;
            for (const OrderedPartition& p : cycle_) {
                for (ProcessId q : k.members()) {
                    if (!p.contains(q)) continue;
                    const ProcessSet snap = p.snapshot_of(q);
                    if (!k.contains_all(snap)) {
                        k = k | snap;
                        changed = true;
                    }
                }
            }
        }
        return k;
    };

    ProcessSet core = cycle_closure(tail_support.min());
    for (ProcessId i : tail_support.members()) {
        const ProcessSet k = cycle_closure(i);
        if (core.contains_all(k)) {
            core = k;
        } else {
            ensure(k.contains_all(core),
                   "Run::minimal: closures are not totally ordered");
        }
    }

    // Step 2: backward closure through the prefix. needed(j) is the least
    // set containing the core, needed(j+1), and closed under same-round
    // snapshots: every kept process's round-j snapshot must be kept so its
    // views are preserved.
    const auto close_in_round = [&](const OrderedPartition& p, ProcessSet s) {
        bool changed = true;
        while (changed) {
            changed = false;
            for (ProcessId q : s.members()) {
                if (!p.contains(q)) continue;
                const ProcessSet snap = p.snapshot_of(q);
                if (!s.contains_all(snap)) {
                    s = s | snap;
                    changed = true;
                }
            }
        }
        return s;
    };

    std::vector<ProcessSet> needed(prefix_.size());
    ProcessSet future = core;
    for (std::size_t j = prefix_.size(); j-- > 0;) {
        needed[j] = close_in_round(prefix_[j], future | core);
        future = needed[j];
    }

    // Step 3: assemble the restricted run, dropping prefix rounds that
    // collapse to the tail behaviour is unnecessary — restriction keeps the
    // round structure, which is what the definitions compare.
    std::vector<OrderedPartition> prefix;
    prefix.reserve(prefix_.size());
    for (std::size_t j = 0; j < prefix_.size(); ++j) {
        prefix.push_back(prefix_[j].restrict_to(needed[j]));
    }
    std::vector<OrderedPartition> cycle;
    cycle.reserve(cycle_.size());
    for (const OrderedPartition& p : cycle_) {
        cycle.push_back(p.restrict_to(core));
    }
    return Run(num_processes_, std::move(prefix), std::move(cycle));
}

Rational Run::distance_to(const Run& other) const {
    if (*this == other) return Rational(0);
    const std::size_t h = decision_horizon(other);
    std::size_t agree = 0;
    while (agree < h && round(agree) == other.round(agree)) ++agree;
    return Rational(1, static_cast<std::int64_t>(1 + agree));
}

bool Run::takes_step(ProcessId p, std::size_t k) const {
    require(k >= 1, "Run::takes_step: steps are 1-indexed");
    return round(k - 1).contains(p);
}

std::vector<std::vector<std::optional<ViewId>>> Run::view_table(
    std::size_t k, ViewArena& arena,
    const std::vector<std::optional<topo::VertexId>>* inputs) const {
    std::vector<std::vector<std::optional<ViewId>>> table(
        k + 1, std::vector<std::optional<ViewId>>(num_processes_));
    for (ProcessId p = 0; p < num_processes_; ++p) {
        std::optional<topo::VertexId> input;
        if (inputs != nullptr) {
            require(p < inputs->size(),
                    "Run::view_table: inputs vector too short");
            input = (*inputs)[p];
        }
        table[0][p] = arena.make_initial(p, input);
    }
    for (std::size_t j = 1; j <= k; ++j) {
        const OrderedPartition& r = round(j - 1);
        for (ProcessId p : r.support().members()) {
            std::vector<ViewId> seen;
            for (ProcessId q : r.snapshot_of(p).members()) {
                ensure(table[j - 1][q].has_value(),
                       "Run::view_table: snapshot of a dropped process");
                seen.push_back(*table[j - 1][q]);
            }
            table[j][p] = arena.make_view(p, std::move(seen));
        }
    }
    return table;
}

ViewId Run::view(ProcessId p, std::size_t k, ViewArena& arena,
                 const std::vector<std::optional<topo::VertexId>>* inputs)
    const {
    require(p < num_processes_, "Run::view: unknown process");
    const auto table = view_table(k, arena, inputs);
    require(table[k][p].has_value(), "Run::view: process not in this round");
    return *table[k][p];
}

std::string Run::to_string() const {
    std::string out;
    for (const OrderedPartition& p : prefix_) out += p.to_string();
    out += "(";
    for (const OrderedPartition& p : cycle_) out += p.to_string();
    out += ")^w";
    return out;
}

std::ostream& operator<<(std::ostream& os, const Run& r) {
    return os << r.to_string();
}

}  // namespace gact::iis
