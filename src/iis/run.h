// IIS runs (paper, Section 2.1), represented finitely.
//
// A run is an infinite sequence of ordered partitions S_1 ⊇ S_2 ⊇ ... .
// This library represents the eventually-periodic runs: a finite prefix of
// rounds followed by a cycle repeated forever. All models studied in the
// paper (wait-free, t-resilient, k-obstruction-free, adversaries) are
// determined by the fast set, which is computable exactly from this
// representation; arbitrary runs are approximated by the compact families
// M_{D,K} of DESIGN.md, mirroring the paper's own compactness device.
//
// Key notions implemented here:
//  * participating / infinitely participating processes,
//  * the extension partial order r <= r' (Section 2.1) — decided via
//    round-by-round snapshot equality of r's participants, the witness the
//    paper's view-equality condition reduces to for runs built from
//    schedules,
//  * minimal(r): the smallest run r0 <= r, computed by a backward closure
//    over the rounds (see minimal() below),
//  * fast(r) = ∞-part(minimal(r)) and slow(r) = complement,
//  * views (hash-consed) and the run metric d(r, r') = 1/(1+k).
#pragma once

#include <optional>

#include "iis/ordered_partition.h"
#include "iis/view.h"
#include "util/rational.h"

namespace gact::iis {

/// An eventually-periodic IIS run on processes {0, .., num_processes-1}.
class Run {
public:
    /// prefix rounds 1..|prefix|, then `cycle` repeated forever.
    /// Requirements: cycle non-empty; supports weakly decreasing along
    /// prefix + one unrolling of cycle; all cycle rounds have the same
    /// support (forced by decrease + periodicity).
    Run(std::uint32_t num_processes, std::vector<OrderedPartition> prefix,
        std::vector<OrderedPartition> cycle);

    /// The run in which `support` runs forever with the given partition.
    static Run forever(std::uint32_t num_processes, OrderedPartition round);

    std::uint32_t num_processes() const noexcept { return num_processes_; }
    const std::vector<OrderedPartition>& prefix() const noexcept {
        return prefix_;
    }
    const std::vector<OrderedPartition>& cycle() const noexcept {
        return cycle_;
    }

    /// Round k of the run, 0-indexed (round 0 is the paper's S_1).
    const OrderedPartition& round(std::size_t k) const;

    /// part(r): processes taking at least one step (support of round 0).
    ProcessSet participants() const { return round(0).support(); }

    /// ∞-part(r): processes in every round (the cycle support).
    ProcessSet infinite_participants() const { return cycle_[0].support(); }

    /// A horizon H such that two runs agreeing on rounds 0..H-1 agree
    /// everywhere (by eventual periodicity), for this run against `other`.
    std::size_t decision_horizon(const Run& other) const;

    /// Exact equality as infinite sequences.
    friend bool operator==(const Run& a, const Run& b);

    /// The extension order r <= r' of Section 2.1 (see header comment).
    bool is_extension_of(const Run& smaller) const;

    /// minimal(r): the smallest r0 <= r.
    Run minimal() const;

    bool is_minimal() const { return minimal() == *this; }

    /// fast(r) = ∞-part(minimal(r)).
    ProcessSet fast() const { return minimal().infinite_participants(); }

    /// slow(r): complement of fast(r) within {0, .., num_processes-1}.
    ProcessSet slow() const {
        return ProcessSet::full(num_processes_) - fast();
    }

    /// The metric of Section 5: d(r, r') = 1/(1+k) with k the number of
    /// leading rounds on which the runs agree (0 when they differ at once).
    Rational distance_to(const Run& other) const;

    /// The view of process p after round k (1-indexed depth: view(p, 0) is
    /// the initial view). Requires k == 0 or p in round k-1's support.
    /// `inputs`, if given, maps each participating process to its input
    /// vertex (Section 4.3); otherwise views carry ids only.
    ViewId view(ProcessId p, std::size_t k, ViewArena& arena,
                const std::vector<std::optional<topo::VertexId>>* inputs =
                    nullptr) const;

    /// Views of every process after rounds 0..k: table[j][p] is the view
    /// of p after j rounds, or nullopt if p dropped out by round j.
    /// Computed bottom-up in O(k * n) arena operations.
    std::vector<std::vector<std::optional<ViewId>>> view_table(
        std::size_t k, ViewArena& arena,
        const std::vector<std::optional<topo::VertexId>>* inputs =
            nullptr) const;

    /// Does p take a k-th step (1-indexed: step k means p in round k-1)?
    bool takes_step(ProcessId p, std::size_t k) const;

    std::string to_string() const;

private:
    std::uint32_t num_processes_;
    std::vector<OrderedPartition> prefix_;
    std::vector<OrderedPartition> cycle_;
};

std::ostream& operator<<(std::ostream& os, const Run& r);

}  // namespace gact::iis
