#include "iis/run_enumeration.h"

#include "util/require.h"

namespace gact::iis {

namespace {

void extend(std::uint32_t num_processes, std::vector<OrderedPartition>& prefix,
            ProcessSet current_support, std::uint32_t remaining_depth,
            std::vector<Run>& out) {
    if (remaining_depth == 0) {
        // Close with any fixed tail on any non-empty subset of the current
        // support.
        for (const ProcessSet f : nonempty_subsets(current_support)) {
            for (const OrderedPartition& tail : all_ordered_partitions(f)) {
                out.emplace_back(num_processes, prefix,
                                 std::vector<OrderedPartition>{tail});
            }
        }
        return;
    }
    for (const ProcessSet s : nonempty_subsets(current_support)) {
        for (const OrderedPartition& round : all_ordered_partitions(s)) {
            prefix.push_back(round);
            extend(num_processes, prefix, s, remaining_depth - 1, out);
            prefix.pop_back();
        }
    }
}

}  // namespace

std::vector<Run> enumerate_stabilized_runs(std::uint32_t num_processes,
                                           std::uint32_t prefix_depth) {
    require(num_processes >= 1 && num_processes <= 5,
            "enumerate_stabilized_runs: enumeration limited to <= 5 processes");
    std::vector<Run> out;
    std::vector<OrderedPartition> prefix;
    extend(num_processes, prefix, ProcessSet::full(num_processes),
           prefix_depth, out);
    return out;
}

std::vector<Run> enumerate_full_participation_runs(
    std::uint32_t num_processes, std::uint32_t prefix_depth) {
    std::vector<Run> all = enumerate_stabilized_runs(num_processes,
                                                     prefix_depth);
    std::vector<Run> out;
    for (Run& r : all) {
        if (r.participants() == ProcessSet::full(num_processes)) {
            out.push_back(std::move(r));
        }
    }
    return out;
}

std::vector<Run> filter_by_model(const std::vector<Run>& runs,
                                 const Model& model) {
    std::vector<Run> out;
    for (const Run& r : runs) {
        if (model.contains(r)) out.push_back(r);
    }
    return out;
}

Run random_stabilized_run(std::mt19937& rng, std::uint32_t num_processes,
                          std::uint32_t max_prefix_depth) {
    const auto pick_subset = [&](ProcessSet support) {
        const std::vector<ProcessSet> subsets = nonempty_subsets(support);
        std::uniform_int_distribution<std::size_t> dist(0, subsets.size() - 1);
        return subsets[dist(rng)];
    };
    const auto pick_partition = [&](ProcessSet support) {
        const std::vector<OrderedPartition> parts =
            all_ordered_partitions(support);
        std::uniform_int_distribution<std::size_t> dist(0, parts.size() - 1);
        return parts[dist(rng)];
    };

    std::uniform_int_distribution<std::uint32_t> depth_dist(0,
                                                            max_prefix_depth);
    const std::uint32_t depth = depth_dist(rng);
    std::vector<OrderedPartition> prefix;
    ProcessSet support = ProcessSet::full(num_processes);
    for (std::uint32_t i = 0; i < depth; ++i) {
        support = pick_subset(support);
        prefix.push_back(pick_partition(support));
    }
    const ProcessSet tail_support = pick_subset(support);
    return Run(num_processes, std::move(prefix),
               {pick_partition(tail_support)});
}

Run random_run_in_model(std::mt19937& rng, const Model& model,
                        std::uint32_t num_processes,
                        std::uint32_t max_prefix_depth,
                        std::uint32_t max_attempts) {
    for (std::uint32_t i = 0; i < max_attempts; ++i) {
        Run r = random_stabilized_run(rng, num_processes, max_prefix_depth);
        if (model.contains(r)) return r;
    }
    throw precondition_error("random_run_in_model: no run found for model " +
                             model.name());
}

}  // namespace gact::iis
