// Enumeration and sampling of runs: the compact families M_{D,K}.
//
// The sub-IIS models of the paper are sets of infinite runs; this library
// verifies protocols against the compact approximations M_{D} — all runs
// with an arbitrary schedule for D rounds that then stabilize to a fixed
// round repeated forever. This mirrors the paper's device of approximating
// a non-compact model by a sequence of compact models (Section 1, GACT
// discussion): M_0 ⊆ M_1 ⊆ ... and every eventually-period-1 run of the
// model appears in some M_D.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "iis/models.h"
#include "iis/run.h"

namespace gact::iis {

/// All runs with `prefix_depth` arbitrary rounds (decreasing supports,
/// any first-round support) followed by one fixed partition repeated
/// forever. Grows quickly: use prefix_depth <= 2 for 3 processes.
std::vector<Run> enumerate_stabilized_runs(std::uint32_t num_processes,
                                           std::uint32_t prefix_depth);

/// As above but restricted to runs where every process participates
/// (S_1 = {0, .., n}), the original IIS convention of [BG97].
std::vector<Run> enumerate_full_participation_runs(std::uint32_t num_processes,
                                                   std::uint32_t prefix_depth);

/// The subset of `runs` belonging to `model`.
std::vector<Run> filter_by_model(const std::vector<Run>& runs,
                                 const Model& model);

/// A uniformly random stabilized run: a random decreasing prefix of depth
/// <= max_prefix_depth followed by a random fixed tail partition.
Run random_stabilized_run(std::mt19937& rng, std::uint32_t num_processes,
                          std::uint32_t max_prefix_depth);

/// A random run from the model (rejection sampling; throws after
/// `max_attempts` failures).
Run random_run_in_model(std::mt19937& rng, const Model& model,
                        std::uint32_t num_processes,
                        std::uint32_t max_prefix_depth,
                        std::uint32_t max_attempts = 10000);

}  // namespace gact::iis
