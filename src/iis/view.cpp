#include "iis/view.h"

#include <algorithm>

#include "util/require.h"

namespace gact::iis {

ViewId ViewArena::intern(ViewNode n) {
    const auto it = index_.find(n);
    if (it != index_.end()) return it->second;
    const ViewId id = static_cast<ViewId>(nodes_.size());
    index_.emplace(n, id);
    nodes_.push_back(std::move(n));
    processes_cache_.emplace_back();
    return id;
}

ViewId ViewArena::make_initial(ProcessId owner,
                               std::optional<topo::VertexId> input) {
    ViewNode n;
    n.owner = owner;
    n.depth = 0;
    n.input = input;
    return intern(std::move(n));
}

ViewId ViewArena::make_view(ProcessId owner, std::vector<ViewId> seen) {
    require(!seen.empty(), "ViewArena::make_view: no views seen");
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    int child_depth = -1;
    bool owner_present = false;
    for (ViewId s : seen) {
        const ViewNode& child = node(s);
        if (child_depth < 0) child_depth = child.depth;
        require(child.depth == child_depth,
                "ViewArena::make_view: mixed child depths");
        if (child.owner == owner) owner_present = true;
    }
    require(owner_present,
            "ViewArena::make_view: a process always sees its own view");
    ViewNode n;
    n.owner = owner;
    n.depth = child_depth + 1;
    n.seen = std::move(seen);
    return intern(std::move(n));
}

const ViewNode& ViewArena::node(ViewId id) const {
    require(id < nodes_.size(), "ViewArena: unknown view id");
    return nodes_[id];
}

ProcessSet ViewArena::processes_in(ViewId id) const {
    require(id < nodes_.size(), "ViewArena: unknown view id");
    if (processes_cache_[id]) return *processes_cache_[id];
    const ViewNode& n = nodes_[id];
    ProcessSet out = ProcessSet::single(n.owner);
    for (ViewId s : n.seen) out = out | processes_in(s);
    processes_cache_[id] = out;
    return out;
}

std::string ViewArena::to_string(ViewId id) const {
    const ViewNode& n = node(id);
    std::string out = "p" + std::to_string(n.owner) + "@" +
                      std::to_string(n.depth);
    if (n.depth == 0) {
        if (n.input) out += "<in:" + std::to_string(*n.input) + ">";
        return out;
    }
    out += "{";
    for (std::size_t i = 0; i < n.seen.size(); ++i) {
        if (i > 0) out += ",";
        out += to_string(n.seen[i]);
    }
    out += "}";
    return out;
}

}  // namespace gact::iis
