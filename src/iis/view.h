// Hash-consed recursive views (paper, Sections 2.1 and 4.3).
//
// The k-th view of a process is defined recursively:
//   view(p, 0)  = {(p, input vertex of p)}          (Section 4.3)
//   view(p, k)  = { view(q, k-1) | q seen by p in round k }.
//
// Views are heavily shared DAGs (two processes in the same concurrency
// class have views that differ only in the owner), so the arena interns
// nodes: structurally equal views get the same ViewId, making view
// equality O(1) and memory linear in the number of distinct views. Nodes
// carry their owner process: the vertex of Chr^k corresponding to a view
// is the pair (owner's previous vertex, simplex of seen views), and the
// paper's protocol map is indexed by per-process views.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/simplex.h"
#include "util/hash.h"
#include "util/process_set.h"

namespace gact::iis {

/// Index of an interned view inside its arena.
using ViewId = std::uint32_t;

/// One view node. depth 0: `seen` is empty and `input` may carry the
/// process's input vertex (in some input complex); depth k > 0: `seen`
/// lists the (k-1)-views of the processes observed, sorted by id.
struct ViewNode {
    ProcessId owner = 0;
    int depth = 0;
    std::optional<topo::VertexId> input;  // only meaningful at depth 0
    std::vector<ViewId> seen;             // sorted, deduplicated

    friend bool operator==(const ViewNode& a, const ViewNode& b) noexcept =
        default;
};

/// Interning arena for views.
class ViewArena {
public:
    ViewArena() = default;

    // The arena hands out ids into its private store; it is move-only to
    // keep ids stable.
    ViewArena(const ViewArena&) = delete;
    ViewArena& operator=(const ViewArena&) = delete;
    ViewArena(ViewArena&&) = default;
    ViewArena& operator=(ViewArena&&) = default;

    /// Intern a depth-0 view.
    ViewId make_initial(ProcessId owner,
                        std::optional<topo::VertexId> input = std::nullopt);

    /// Intern a depth-(k) view from the (k-1)-views seen. `seen` must be
    /// non-empty and contain a view owned by `owner` at equal depth.
    ViewId make_view(ProcessId owner, std::vector<ViewId> seen);

    const ViewNode& node(ViewId id) const;

    std::size_t size() const noexcept { return nodes_.size(); }

    /// The set of processes appearing anywhere inside the view (the
    /// transitive "has seen" set; always contains the owner).
    ProcessSet processes_in(ViewId id) const;

    /// Structural equality is id equality; this renders a debug string.
    std::string to_string(ViewId id) const;

private:
    struct NodeHash {
        std::size_t operator()(const ViewNode& n) const noexcept {
            std::size_t seed = std::hash<ProcessId>{}(n.owner);
            hash_combine(seed, static_cast<std::size_t>(n.depth));
            hash_combine(seed, n.input ? 1 + static_cast<std::size_t>(*n.input)
                                       : 0);
            hash_combine(seed, hash_range(n.seen));
            return seed;
        }
    };

    std::vector<ViewNode> nodes_;
    std::unordered_map<ViewNode, ViewId, NodeHash> index_;
    mutable std::vector<std::optional<ProcessSet>> processes_cache_;

    ViewId intern(ViewNode n);
};

}  // namespace gact::iis
