#include "protocol/commit_adopt.h"

#include <algorithm>

#include "util/require.h"

namespace gact::protocol {

namespace {

/// The seen child owned by the view's owner (its own previous view).
ViewId own_child(const ViewArena& arena, ViewId view) {
    const iis::ViewNode& node = arena.node(view);
    require(node.depth >= 1, "own_child: depth-0 view");
    for (ViewId s : node.seen) {
        if (arena.node(s).owner == node.owner) return s;
    }
    throw invariant_error("own_child: a view always contains its own past");
}

}  // namespace

ViewId CommitAdoptEvaluator::own_view_at(ViewId view, int depth) const {
    require(depth >= 0, "own_view_at: negative depth");
    while (arena_->node(view).depth > depth) {
        view = own_child(*arena_, view);
    }
    require(arena_->node(view).depth == depth,
            "own_view_at: requested depth above the view's depth");
    return view;
}

Order CommitAdoptEvaluator::estimate(ViewId view) const {
    const iis::ViewNode& node = arena_->node(view);
    require(node.depth % 2 == 0, "estimate: depth must be even");
    if (node.depth == 0) return {node.owner};
    return decision(view).value;
}

Order CommitAdoptEvaluator::proposal(ViewId view) const {
    Order order = estimate(view);
    const gact::ProcessSet seen = arena_->processes_in(view);
    for (gact::ProcessId p : seen.members()) {
        if (std::find(order.begin(), order.end(), p) == order.end()) {
            order.push_back(p);
        }
    }
    return order;
}

CaPhase1 CommitAdoptEvaluator::phase1(ViewId odd_view) const {
    const iis::ViewNode& node = arena_->node(odd_view);
    require(node.depth % 2 == 1, "phase1: depth must be odd");
    // Proposals of the processes seen in the odd round.
    std::vector<std::pair<gact::ProcessId, Order>> proposals;
    for (ViewId u : node.seen) {
        proposals.emplace_back(arena_->node(u).owner, proposal(u));
    }
    CaPhase1 out;
    out.all_agree = true;
    for (const auto& [owner, prop] : proposals) {
        if (!(prop == proposals.front().second)) out.all_agree = false;
    }
    if (out.all_agree) {
        out.value = proposals.front().second;
    } else {
        // Deterministic fallback: the proposal of the smallest owner seen.
        const auto min_it = std::min_element(
            proposals.begin(), proposals.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        out.value = min_it->second;
    }
    return out;
}

CaDecision CommitAdoptEvaluator::decision(ViewId view) const {
    const iis::ViewNode& node = arena_->node(view);
    require(node.depth >= 2 && node.depth % 2 == 0,
            "decision: needs an even depth >= 2");
    std::vector<CaPhase1> seen_phase1;
    for (ViewId w : node.seen) seen_phase1.push_back(phase1(w));

    CaDecision out;
    bool any_true = false;
    bool all_true = true;
    Order committed;
    for (const CaPhase1& ph : seen_phase1) {
        if (ph.all_agree) {
            if (any_true) {
                ensure(ph.value == committed,
                       "commit-adopt: two distinct agreed values in one "
                       "instance");
            }
            any_true = true;
            committed = ph.value;
        } else {
            all_true = false;
        }
    }
    if (any_true) {
        out.commit = all_true;
        out.value = committed;
    } else {
        out.commit = false;
        out.value = phase1(own_child(*arena_, view)).value;
    }
    return out;
}

std::optional<std::pair<std::size_t, Order>> CommitAdoptEvaluator::first_commit(
    ViewId view) const {
    const int depth = arena_->node(view).depth;
    for (int d = 2; d <= depth; d += 2) {
        const CaDecision dec = decision(own_view_at(view, d));
        if (dec.commit) {
            return std::make_pair(static_cast<std::size_t>(d) / 2, dec.value);
        }
    }
    return std::nullopt;
}

std::optional<topo::VertexId> TotalOrderProtocol::output(
    ViewId view, const ViewArena& arena) const {
    const auto commit = evaluator_.first_commit(view);
    if (!commit.has_value()) return std::nullopt;
    const Order& pi = commit->second;
    const gact::ProcessId owner = arena.node(view).owner;
    ensure(std::find(pi.begin(), pi.end(), owner) != pi.end(),
           "total order: committed a permutation without self");
    const topo::Simplex sigma = tasks::sigma_alpha(lord_->subdivision, pi);
    return lord_->subdivision.complex().vertex_with_color(sigma, owner);
}

}  // namespace gact::protocol
