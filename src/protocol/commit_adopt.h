// Commit-adopt in IIS, and the total-order solver of Section 4.5.
//
// Commit-adopt [Gafni, PODC'98] over two immediate-snapshot rounds:
//  round 2m-1: write your proposal, snapshot; if all proposals seen are
//              equal to v, your phase-1 value is (true, v), else
//              (false, w) for a deterministic seen proposal w;
//  round 2m:   write your phase-1 value, snapshot; if all phase-1 values
//              seen are (true, v): COMMIT v; else if some (true, v) seen:
//              ADOPT v; else keep your own phase-1 value.
// Properties (verified exhaustively in tests): two commits of the same
// instance agree, and a commit forces every other process of the instance
// to adopt the committed value.
//
// The L_ord solver (Section 4.5: "we can easily solve L_ord in OF_fast
// using commit-adopt"): proposals are total orders (permutations of the
// processes seen so far); a process repeats commit-adopt instances,
// extending its estimate with newly seen processes appended in id order;
// on commit of a permutation pi it outputs the vertex of sigma_pi colored
// by itself. Commits are prefix-consistent across instances, and the
// sigma_alpha flag characterization makes prefix-consistent outputs lie
// in a common simplex. In a minimal run with |fast(r)| = 1 the fast
// process eventually runs solo and its instance commits — but in a
// non-minimal OF_1 run, processes running forever behind a fast leader
// never commit, which is the paper's point in Section 4.5.
#pragma once

#include "iis/run.h"
#include "protocol/protocol.h"
#include "tasks/standard_tasks.h"

namespace gact::protocol {

/// A commit-adopt proposal/estimate: an ordered list of process ids.
using Order = std::vector<gact::ProcessId>;

/// The phase-1 value of the commit-adopt round pair.
struct CaPhase1 {
    bool all_agree = false;
    Order value;
};

/// The result of one commit-adopt instance for one process.
struct CaDecision {
    bool commit = false;
    Order value;
};

/// The full-information commit-adopt evaluation: given a view of even
/// depth 2m (owner p), the state of p after m commit-adopt instances.
/// Implemented recursively over the view DAG — everything a process needs
/// is contained in its view.
class CommitAdoptEvaluator {
public:
    explicit CommitAdoptEvaluator(const ViewArena& arena) : arena_(&arena) {}

    /// p's estimate after the instances contained in `view` (depth must
    /// be even; depth 0 gives the singleton [owner]).
    Order estimate(ViewId view) const;

    /// p's proposal for the next instance: estimate extended by the
    /// processes seen so far but absent, appended in increasing id order.
    Order proposal(ViewId view) const;

    /// The instance decision at an even-depth view (depth >= 2).
    CaDecision decision(ViewId view) const;

    /// The first instance (1-indexed) at which the owner of `view`
    /// committed, scanning the owner's own view chain; nullopt if none.
    std::optional<std::pair<std::size_t, Order>> first_commit(
        ViewId view) const;

    /// The owner's own sub-view at a given depth <= depth(view).
    ViewId own_view_at(ViewId view, int depth) const;

private:
    CaPhase1 phase1(ViewId odd_view) const;

    const ViewArena* arena_;
};

/// The Section 4.5 protocol for L_ord: decide on first commit.
class TotalOrderProtocol final : public Protocol {
public:
    TotalOrderProtocol(const tasks::AffineTask& lord, const ViewArena& arena)
        : lord_(&lord), evaluator_(arena) {}

    std::optional<topo::VertexId> output(ViewId view,
                                         const ViewArena& arena) const override;

    std::string name() const override { return "commit-adopt total order"; }

private:
    const tasks::AffineTask* lord_;
    CommitAdoptEvaluator evaluator_;
};

}  // namespace gact::protocol
