#include "protocol/gact_protocol.h"

#include <unordered_map>

#include "iis/projection.h"
#include "util/require.h"

namespace gact::protocol {

// Using the whole snapshot hull — not just p's own position — is what
// makes the rule sound: a process that still sees a laggard outside every
// stable simplex knows the run has not landed and must not decide yet,
// even if its own position transits a stable region (see DESIGN.md §5
// and the depth-2 regression tests).
ViewLandingRule::ViewLandingRule(const core::TerminatingSubdivision& tsub,
                                 const core::SimplicialMap& delta)
    : tsub_(&tsub), delta_(&delta) {
    const auto& complex = tsub.stable_complex().complex();
    by_dimension_.resize(static_cast<std::size_t>(complex.dimension()) + 1);
    for (const core::Simplex& s : complex.simplices()) {
        by_dimension_[static_cast<std::size_t>(s.dimension())].push_back(s);
    }
}

std::optional<topo::VertexId> ViewLandingRule::value(
    gact::ProcessId p, std::size_t k,
    const std::vector<topo::BaryPoint>& seen_positions) const {
    core::Simplex support;
    for (const topo::BaryPoint& q : seen_positions) {
        support = support.union_with(q.support());
    }
    for (const auto& dimension_group : by_dimension_) {
        for (const core::Simplex& tau : dimension_group) {
            if (!support.is_face_of(tsub_->stable_carrier(tau))) continue;
            if (!tsub_->stable_simplex_contains(tau, seen_positions)) {
                continue;
            }
            // tau is the carrier of the snapshot hull (minimal by the
            // dimension-ascending scan): decide or withhold on it.
            if (tsub_->stable_since(tau) > k) return std::nullopt;
            const auto& stable = tsub_->stable_complex();
            if (!stable.colors_of(tau).contains(p)) return std::nullopt;
            return delta_->apply(stable.vertex_with_color(tau, p));
        }
    }
    return std::nullopt;
}

GactProtocolBuild build_gact_protocol(const core::TerminatingSubdivision& tsub,
                                      const core::SimplicialMap& delta,
                                      const std::vector<iis::Run>& runs,
                                      std::size_t horizon, ViewArena& arena) {
    GactProtocolBuild build;
    build.protocol = TableProtocol("gact(" + std::to_string(runs.size()) +
                                   " runs)");
    const ViewLandingRule rule(tsub, delta);

    const int n = tsub.base().dimension();
    std::vector<topo::VertexId> inputs;
    for (int i = 0; i <= n; ++i) inputs.push_back(static_cast<topo::VertexId>(i));

    // The rule is a function of the view alone (the snapshot contents and
    // the depth are part of the view), so results are memoized per view.
    std::unordered_map<ViewId, std::optional<topo::VertexId>> memo;

    for (const iis::Run& run : runs) {
        ++build.total_runs;
        const auto views = run.view_table(horizon, arena);
        const auto positions = iis::view_positions(run, horizon, inputs);
        gact::ProcessSet decided;
        std::size_t first_decision_round = 0;
        for (std::size_t k = 1; k <= horizon; ++k) {
            const iis::OrderedPartition& round = run.round(k - 1);
            for (gact::ProcessId p : round.support().members()) {
                ensure(views[k][p].has_value(),
                       "build_gact_protocol: missing view");
                const ViewId view = *views[k][p];
                auto it = memo.find(view);
                if (it == memo.end()) {
                    std::vector<topo::BaryPoint> seen;
                    for (gact::ProcessId q : round.snapshot_of(p).members()) {
                        ensure(positions[k - 1][q].has_value(),
                               "build_gact_protocol: missing position");
                        seen.push_back(*positions[k - 1][q]);
                    }
                    it = memo.emplace(view, rule.value(p, k, seen)).first;
                }
                if (!it->second.has_value()) continue;
                if (!build.protocol.insert(view, *it->second)) {
                    ++build.conflicts;
                }
                if (decided.empty()) first_decision_round = k;
                decided = decided.with(p);
            }
        }
        // A run counts as landed when every infinitely participating
        // process decided within the horizon.
        if (decided.contains_all(run.infinite_participants())) {
            ++build.landed_runs;
            build.max_landing_round =
                std::max(build.max_landing_round, first_decision_round);
        }
    }
    return build;
}

}  // namespace gact::protocol
