// Protocol extraction from a GACT witness (Theorem 6.1, "<=" direction).
//
// Given a terminating subdivision T admissible for a model M and a
// chromatic map delta : K(T) -> O with delta(tau) in Delta(sigma) for
// stable tau, |tau| ⊆ |sigma|, the proof assigns outputs when a run lands
// in a stable simplex (|sigma_k| ⊆ |tau|). A protocol, however, must be a
// function of each process's *view* (Definition 4.1), and the same view
// occurs in runs that land in different stable simplices — the proof's
// "(necessarily the same as before)" parenthetical is where this is
// glossed. We therefore decide by the view-local landing rule: process p
// decides on the minimal stable simplex tau that contains the exact
// positions of *everything p saw in its last snapshot*, has stabilized by
// the current depth, and carries p's color. A process that still sees a
// laggard outside K(T) withholds, which is precisely what makes decisions
// stable across overlapping runs (found by the depth-2 run-family stress
// test; see DESIGN.md §5). The resulting finite view->output table is
// conflict-free by construction and is re-verified against Definition 4.1
// by protocol/verifier.h.
#pragma once

#include "core/lt_pipeline.h"
#include "protocol/protocol.h"

namespace gact::protocol {

/// The view-local landing rule ("rule D") as a reusable decision
/// procedure: at depth k, process p decides the color-p vertex of
/// delta(tau), where tau is the minimal stable simplex that (i)
/// stabilized by stage <= k, (ii) contains the exact positions of *all*
/// the (k-1)-views p saw in round k (the snapshot hull), and (iii)
/// carries p's color; it withholds otherwise. This is the rule
/// build_gact_protocol tabulates over a finite run family — exposed so
/// the execution runtime (src/runtime/) can apply it on the fly to any
/// admissible schedule, including ones outside the enumerated compact
/// family. The referenced tsub and delta must outlive the rule.
class ViewLandingRule {
public:
    ViewLandingRule(const core::TerminatingSubdivision& tsub,
                    const core::SimplicialMap& delta);

    /// The decision of process p after round k (1-indexed), given the
    /// exact positions of everything p saw in its round-k snapshot.
    std::optional<topo::VertexId> value(
        gact::ProcessId p, std::size_t k,
        const std::vector<topo::BaryPoint>& seen_positions) const;

private:
    const core::TerminatingSubdivision* tsub_;
    const core::SimplicialMap* delta_;
    std::vector<std::vector<core::Simplex>> by_dimension_;
};

/// The extracted protocol plus construction diagnostics.
struct GactProtocolBuild {
    TableProtocol protocol{"gact"};
    std::size_t conflicts = 0;     // must be 0 for a sound witness
    std::size_t landed_runs = 0;
    std::size_t total_runs = 0;
    std::size_t max_landing_round = 0;
};

/// Build the table protocol for the runs in `runs`, filling entries for
/// rounds landing..horizon of every run.
GactProtocolBuild build_gact_protocol(const core::TerminatingSubdivision& tsub,
                                      const core::SimplicialMap& delta,
                                      const std::vector<iis::Run>& runs,
                                      std::size_t horizon, ViewArena& arena);

}  // namespace gact::protocol
