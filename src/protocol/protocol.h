// Protocols (paper, Section 4.4).
//
// "For us, when dealing with solvability rather than complexity, a
// protocol is just a partial map from views to outputs." Views are
// interned in a ViewArena, so a protocol maps ViewIds to output vertices
// of the task's output complex. A protocol must be deterministic and
// prefix-stable per Definition 4.1; the verifier checks both.
#pragma once

#include <optional>
#include <unordered_map>

#include "iis/view.h"
#include "topology/simplex.h"

namespace gact::protocol {

using iis::ViewArena;
using iis::ViewId;

/// A protocol: a partial map from views to output vertices.
class Protocol {
public:
    virtual ~Protocol() = default;

    /// The output for this view, or nullopt when the view is outside the
    /// protocol's domain (the process does not decide yet).
    virtual std::optional<topo::VertexId> output(ViewId view,
                                                 const ViewArena& arena)
        const = 0;

    virtual std::string name() const = 0;
};

/// A protocol given extensionally by a finite table (the form produced by
/// GACT protocol extraction).
class TableProtocol final : public Protocol {
public:
    explicit TableProtocol(std::string name) : name_(std::move(name)) {}

    /// Insert an entry; returns false on a conflicting existing entry.
    bool insert(ViewId view, topo::VertexId output) {
        const auto [it, fresh] = table_.emplace(view, output);
        return fresh || it->second == output;
    }

    std::optional<topo::VertexId> output(ViewId view,
                                         const ViewArena&) const override {
        const auto it = table_.find(view);
        if (it == table_.end()) return std::nullopt;
        return it->second;
    }

    std::size_t size() const noexcept { return table_.size(); }
    std::string name() const override { return name_; }

private:
    std::string name_;
    std::unordered_map<ViewId, topo::VertexId> table_;
};

}  // namespace gact::protocol
