#include "protocol/simple_protocols.h"

namespace gact::protocol {

std::optional<topo::VertexId> IsTaskProtocol::output(
    ViewId view, const ViewArena& arena) const {
    const iis::ViewNode& node = arena.node(view);
    if (node.depth < 1) return std::nullopt;
    // Walk down to the owner's depth-1 view: its member set is the
    // first-round snapshot, which determines the Chr s vertex (p, tau).
    ViewId v = view;
    while (arena.node(v).depth > 1) {
        bool found = false;
        for (ViewId s : arena.node(v).seen) {
            if (arena.node(s).owner == node.owner) {
                v = s;
                found = true;
                break;
            }
        }
        ensure(found, "IsTaskProtocol: view without own history");
    }
    std::vector<topo::VertexId> tau;
    for (gact::ProcessId q : arena.processes_in(v).members()) {
        tau.push_back(static_cast<topo::VertexId>(q));
    }
    return task_->subdivision.vertex_for(
        static_cast<topo::VertexId>(node.owner), topo::Simplex(tau));
}

std::optional<topo::VertexId> OwnInputProtocol::output(
    ViewId view, const ViewArena& arena) const {
    const iis::ViewNode& node = arena.node(view);
    if (node.depth < 1) return std::nullopt;
    // Find the owner's depth-0 view and return its input vertex.
    ViewId v = view;
    while (arena.node(v).depth > 0) {
        bool found = false;
        for (ViewId s : arena.node(v).seen) {
            if (arena.node(s).owner == node.owner) {
                v = s;
                found = true;
                break;
            }
        }
        ensure(found, "OwnInputProtocol: view without own history");
    }
    const auto& input = arena.node(v).input;
    require(input.has_value(), "OwnInputProtocol: views carry no inputs");
    return *input;
}

}  // namespace gact::protocol
