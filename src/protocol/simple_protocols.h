// Small concrete protocols used across examples, benches and tests.
#pragma once

#include "protocol/protocol.h"
#include "tasks/affine_task.h"

namespace gact::protocol {

/// Solves the one-shot immediate-snapshot task: after round 1 a process
/// outputs the Chr s vertex (p, tau) encoding its first-round snapshot —
/// and sticks to it. The canonical example of an affine task protocol.
class IsTaskProtocol final : public Protocol {
public:
    explicit IsTaskProtocol(const tasks::AffineTask& is_task)
        : task_(&is_task) {
        require(is_task.subdivision.depth() == 1,
                "IsTaskProtocol: needs the first chromatic subdivision");
    }

    std::optional<topo::VertexId> output(ViewId view,
                                         const ViewArena& arena) const override;

    std::string name() const override { return "one-shot IS"; }

private:
    const tasks::AffineTask* task_;
};

/// Decides the process's own input vertex after its first step: solves
/// (n+1)-set agreement (and any task whose Delta allows the identity).
class OwnInputProtocol final : public Protocol {
public:
    std::optional<topo::VertexId> output(ViewId view,
                                         const ViewArena& arena) const override;

    std::string name() const override { return "decide own input"; }
};

}  // namespace gact::protocol
