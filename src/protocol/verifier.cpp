#include "protocol/verifier.h"

#include "util/require.h"

namespace gact::protocol {

std::string SolvabilityReport::summary() const {
    std::string out = solved ? "solved" : "NOT solved";
    out += " (" + std::to_string(runs_checked) + " runs, " +
           std::to_string(decisions_checked) + " decisions";
    if (!violations.empty()) {
        out += ", " + std::to_string(violations.size()) + " violations; first: " +
               violations.front();
    }
    out += ")";
    return out;
}

namespace {

/// Check both Definition 4.1 conditions for one run with the given input
/// assignment (`inputs[p]` is p's input vertex, or nullopt for input-less
/// views). `allowed` is Delta(omega ∩ chi^{-1}(part(r))).
void check_run(const tasks::Task& task, const Protocol& protocol,
               const iis::Run& run, std::size_t horizon, ViewArena& arena,
               const std::vector<std::optional<topo::VertexId>>& inputs,
               const topo::SimplicialComplex& allowed,
               const std::string& run_label, SolvabilityReport& report) {
    const auto violation = [&report, &run_label](const std::string& what) {
        report.violations.push_back(run_label + ": " + what);
    };

    const auto views = run.view_table(horizon, arena, &inputs);
    const gact::ProcessSet infinite = run.infinite_participants();

    // Condition (1) per process, collecting outputs for condition (2).
    topo::Simplex produced;
    for (gact::ProcessId p = 0; p < run.num_processes(); ++p) {
        std::optional<topo::VertexId> decided;
        bool decided_ever = false;
        for (std::size_t k = 0; k <= horizon; ++k) {
            if (!views[k][p].has_value()) break;  // p dropped out
            const auto out = protocol.output(*views[k][p], arena);
            if (!out.has_value()) {
                if (decided_ever) {
                    violation("p" + std::to_string(p) +
                              " un-decided at round " + std::to_string(k));
                }
                continue;
            }
            ++report.decisions_checked;
            if (decided_ever && *decided != *out) {
                violation("p" + std::to_string(p) +
                          " changed decision at round " + std::to_string(k));
            }
            decided = out;
            decided_ever = true;
            if (task.outputs.color(*out) != p) {
                violation("p" + std::to_string(p) +
                          " decided a vertex of color " +
                          std::to_string(task.outputs.color(*out)));
            }
        }
        if (infinite.contains(p) && !decided_ever) {
            violation("infinitely participating p" + std::to_string(p) +
                      " never decides");
        }
        if (decided_ever) produced = produced.with(*decided);
    }

    // Condition (2): produced outputs must be a simplex allowed for the
    // participants (color collisions make `produced` a non-simplex of the
    // chromatic output complex, which `allowed.contains` rejects).
    if (!produced.empty() && !allowed.contains(produced)) {
        violation("outputs " + produced.to_string() + " not allowed");
    }
}

}  // namespace

SolvabilityReport verify_inputless(const tasks::Task& task,
                                   const Protocol& protocol,
                                   const std::vector<iis::Run>& runs,
                                   std::size_t horizon, ViewArena& arena) {
    require(task.is_inputless(), "verify_inputless: task has inputs");
    SolvabilityReport report;
    const std::vector<std::optional<topo::VertexId>> no_inputs(
        runs.empty() ? 0 : runs.front().num_processes());
    for (const iis::Run& run : runs) {
        ++report.runs_checked;
        std::vector<topo::VertexId> part_verts;
        for (gact::ProcessId p : run.participants().members()) {
            part_verts.push_back(static_cast<topo::VertexId>(p));
        }
        const std::vector<std::optional<topo::VertexId>> inputs(
            run.num_processes());
        check_run(task, protocol, run, horizon, arena, inputs,
                  task.delta.at(topo::Simplex{std::move(part_verts)}),
                  "run " + run.to_string(), report);
    }
    report.solved = report.violations.empty();
    return report;
}

SolvabilityReport verify_task(const tasks::Task& task,
                              const Protocol& protocol,
                              const std::vector<iis::Run>& runs,
                              std::size_t horizon, ViewArena& arena) {
    SolvabilityReport report;
    const int n = static_cast<int>(task.num_processes) - 1;
    const auto omegas = task.inputs.complex().simplices_of_dimension(n);
    require(!omegas.empty(), "verify_task: input complex has no facets");
    for (const topo::Simplex& omega : omegas) {
        std::vector<std::optional<topo::VertexId>> inputs(task.num_processes);
        for (gact::ProcessId p = 0; p < task.num_processes; ++p) {
            inputs[p] = task.inputs.vertex_with_color(omega, p);
        }
        for (const iis::Run& run : runs) {
            ++report.runs_checked;
            // omega ∩ chi^{-1}(part(r)): the face of omega spanned by the
            // participants' input vertices.
            std::vector<topo::VertexId> face;
            for (gact::ProcessId p : run.participants().members()) {
                face.push_back(*inputs[p]);
            }
            check_run(task, protocol, run, horizon, arena, inputs,
                      task.delta.at(topo::Simplex{std::move(face)}),
                      "omega " + omega.to_string() + " run " + run.to_string(),
                      report);
        }
    }
    report.solved = report.violations.empty();
    return report;
}

}  // namespace gact::protocol
