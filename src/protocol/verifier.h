// The Definition 4.1 solvability verifier.
//
// Given a task, a protocol and a family of runs, this module checks the
// two conditions of Definition 4.1 on every run, to a finite horizon:
//  (1) every infinitely participating process eventually decides, and its
//      decision is stable: before the first decision its views are
//      outside the protocol's domain, and from then on every view maps to
//      the same vertex (of the process's color);
//  (2) at every round, the set of outputs produced so far (by all
//      processes, including slow ones that happen to decide) is a
//      sub-simplex of a simplex of Delta(omega ∩ chi^{-1}(part(r))).
//
// The horizon makes this a check on the compact family M_{D,K} of
// DESIGN.md: condition (1) must be witnessed by the horizon, which is
// sound for eventually-periodic runs whose landing round is below it.
#pragma once

#include <string>
#include <vector>

#include "iis/run.h"
#include "protocol/protocol.h"
#include "tasks/task.h"

namespace gact::protocol {

/// Outcome of verifying one protocol against one family of runs.
struct SolvabilityReport {
    bool solved = false;
    std::size_t runs_checked = 0;
    std::size_t decisions_checked = 0;
    /// Human-readable descriptions of the violations found (empty when
    /// solved).
    std::vector<std::string> violations;

    std::string summary() const;
};

/// Verify an input-less task (inputs = the standard simplex; every
/// process's input is its own identity).
SolvabilityReport verify_inputless(const tasks::Task& task,
                                   const Protocol& protocol,
                                   const std::vector<iis::Run>& runs,
                                   std::size_t horizon, ViewArena& arena);

/// Verify a task with inputs: Definition 4.1 quantifies over every
/// n-dimensional input simplex omega; views carry the input vertices, and
/// condition (2) uses Delta(omega ∩ chi^{-1}(part(r))).
SolvabilityReport verify_task(const tasks::Task& task,
                              const Protocol& protocol,
                              const std::vector<iis::Run>& runs,
                              std::size_t horizon, ViewArena& arena);

}  // namespace gact::protocol
