#include "runtime/executor.h"

#include <algorithm>

#include "sm/iis_executor.h"
#include "util/rational.h"
#include "util/require.h"

namespace gact::runtime {

std::string canonical_view_key(const iis::ViewArena& arena, iis::ViewId v) {
    const iis::ViewNode& node = arena.node(v);
    std::string out = std::to_string(node.owner);
    if (node.depth == 0) {
        out += node.input ? "i" + std::to_string(*node.input) : "i-";
        return out;
    }
    // Seen sub-views are owned by distinct processes; ordering the child
    // keys by owner (never by arena-local id) makes the key canonical.
    std::vector<std::pair<ProcessId, iis::ViewId>> children;
    children.reserve(node.seen.size());
    for (iis::ViewId s : node.seen) {
        children.emplace_back(arena.node(s).owner, s);
    }
    std::sort(children.begin(), children.end());
    out += "(";
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ",";
        out += canonical_view_key(arena, children[i].second);
    }
    out += ")";
    return out;
}

std::optional<topo::VertexId> TableRule::decide(
    ProcessId p, std::size_t /*k*/, iis::ViewId view,
    const iis::ViewArena& arena,
    const std::vector<topo::BaryPoint>& /*seen_positions*/) const {
    if (static_cast<std::size_t>(arena.node(view).depth) < depth_) {
        return std::nullopt;
    }
    // Descend p's own sub-view chain to depth d (p always sees itself).
    iis::ViewId current = view;
    while (static_cast<std::size_t>(arena.node(current).depth) > depth_) {
        const iis::ViewNode& node = arena.node(current);
        bool found = false;
        for (iis::ViewId s : node.seen) {
            if (arena.node(s).owner == p) {
                current = s;
                found = true;
                break;
            }
        }
        ensure(found, "TableRule: view of p" + std::to_string(p) +
                          " has no own sub-view");
    }
    const auto it = table_.find(canonical_view_key(arena, current));
    if (it == table_.end()) return std::nullopt;
    return it->second;
}

LandingDecisionRule::LandingDecisionRule(
    std::shared_ptr<const core::TerminatingSubdivision> tsub,
    core::SimplicialMap delta)
    : tsub_(std::move(tsub)),
      delta_(std::move(delta)),
      rule_(*tsub_, delta_) {
    require(tsub_ != nullptr, "LandingDecisionRule: null subdivision");
}

std::optional<topo::VertexId> LandingDecisionRule::decide(
    ProcessId p, std::size_t k, iis::ViewId /*view*/,
    const iis::ViewArena& /*arena*/,
    const std::vector<topo::BaryPoint>& seen_positions) const {
    if (k == 0) return std::nullopt;  // no snapshot taken yet
    return rule_.value(p, k, seen_positions);
}

ExecutionResult execute(const tasks::Task& task, const DecisionRule& rule,
                        const Schedule& schedule,
                        const std::vector<std::optional<topo::VertexId>>& inputs,
                        const topo::SimplicialComplex& allowed,
                        const ExecutionConfig& config) {
    const std::uint32_t n = task.num_processes;
    require(schedule.num_processes == n,
            "execute: schedule process count does not match task");
    require(inputs.size() == n, "execute: inputs size mismatch");
    require(config.horizon >= 1, "execute: zero horizon");

    const iis::Run run = schedule.to_run();
    const ProcessSet participants = run.participants();
    const ProcessSet infinite = run.infinite_participants();

    ExecutionResult result;
    result.outputs.assign(n, std::nullopt);
    const auto violation = [&result](const std::string& what) {
        result.violations.push_back(what);
    };

    iis::ViewArena arena;
    sm::IisExecution exec(n, participants, arena, &inputs);

    // Analytic companions of the substrate execution: positions feed the
    // landing rule; the view table is the SM -> IIS cross-check.
    //
    // Positions are advanced lazily, one row per executed round, never
    // the whole horizon up front: each round divides denominators by
    // another (2c-1), so a full-horizon table can overflow the exact
    // rational arithmetic even though every admissible run lands (and
    // the execution stops) rounds earlier. `positions_row` holds row
    // `pos_row` of iis::view_positions' table, same recurrence.
    const bool use_positions = rule.needs_positions();
    std::vector<std::optional<topo::BaryPoint>> positions_row;
    std::size_t pos_row = 0;
    if (use_positions) {
        positions_row.resize(n);
        for (ProcessId p : participants.members()) {
            positions_row[p] = topo::BaryPoint::vertex(
                inputs[p].value_or(static_cast<topo::VertexId>(p)));
        }
    }
    const auto advance_positions = [&run, &positions_row, &pos_row, n] {
        const iis::OrderedPartition& r = run.round(pos_row);
        std::vector<std::optional<topo::BaryPoint>> next(n);
        for (ProcessId p : r.support().members()) {
            const ProcessSet snap = r.snapshot_of(p);
            const auto c = static_cast<std::int64_t>(snap.size());
            std::vector<topo::BaryPoint> pts;
            std::vector<Rational> weights;
            for (ProcessId q : snap.members()) {
                ensure(positions_row[q].has_value(),
                       "execute: snapshot of dropped process");
                pts.push_back(*positions_row[q]);
                weights.emplace_back(q == p ? 1 : 2, 2 * c - 1);
            }
            next[p] = topo::BaryPoint::combination(pts, weights);
        }
        positions_row = std::move(next);
        ++pos_row;
    };
    std::vector<std::vector<std::optional<iis::ViewId>>> expected;
    if (config.check_views) {
        expected = run.view_table(config.horizon, arena, &inputs);
    }

    std::vector<bool> decided_ever(n, false);
    const auto record = [&](ProcessId p, std::size_t k,
                            std::optional<topo::VertexId> out) {
        if (!out.has_value()) {
            if (decided_ever[p]) {
                violation("p" + std::to_string(p) + " un-decided at round " +
                          std::to_string(k));
            }
            return;
        }
        if (decided_ever[p] && *result.outputs[p] != *out) {
            violation("p" + std::to_string(p) + " changed decision at round " +
                      std::to_string(k));
        }
        if (!decided_ever[p] && task.outputs.color(*out) != p) {
            violation("p" + std::to_string(p) + " decided a vertex of color " +
                      std::to_string(task.outputs.color(*out)));
        }
        result.outputs[p] = out;
        decided_ever[p] = true;
    };

    const auto all_infinite_decided = [&] {
        for (ProcessId p : infinite.members()) {
            if (!decided_ever[p]) return false;
        }
        return true;
    };

    // Round 0: initial views (a depth-0 table rule decides here).
    const std::vector<topo::BaryPoint> no_positions;
    for (ProcessId p : participants.members()) {
        record(p, 0, rule.decide(p, 0, exec.view_of(p), arena, no_positions));
    }

    std::optional<std::size_t> decided_at;
    if (all_infinite_decided()) decided_at = 0;
    std::size_t k = 0;
    bool overflowed = false;
    while (k < config.horizon) {
        // Stop once the whole prefix ran, everyone (still running)
        // decided, and the stability tail has been exercised.
        if (decided_at.has_value() && k >= schedule.prefix.size() &&
            k >= *decided_at + config.stability_tail) {
            break;
        }
        ++k;
        if (use_positions && pos_row < k - 1) {
            // Bring the row to k-1 (the positions of the views the round-k
            // snapshots see). A run that keeps subdividing past the exact
            // arithmetic's range has failed to land: report, stop driving.
            try {
                advance_positions();
            } catch (const gact::overflow_error&) {
                violation("position arithmetic overflowed at round " +
                          std::to_string(k) + " before every process decided");
                --k;
                break;
            }
        }
        const iis::OrderedPartition& round = run.round(k - 1);
        exec.run_partition_round(round);
        for (ProcessId p : round.support().members()) {
            const iis::ViewId view = exec.view_of(p);
            if (config.check_views) {
                ensure(expected[k][p].has_value(),
                       "execute: analytic view table missing entry");
                if (*expected[k][p] != view) {
                    violation("p" + std::to_string(p) +
                              " substrate view differs from run semantics "
                              "at round " +
                              std::to_string(k));
                }
            }
            std::vector<topo::BaryPoint> seen;
            if (use_positions) {
                for (ProcessId q : round.snapshot_of(p).members()) {
                    ensure(positions_row[q].has_value(),
                           "execute: missing position for seen process");
                    seen.push_back(*positions_row[q]);
                }
            }
            try {
                record(p, k, rule.decide(p, k, view, arena, seen));
            } catch (const gact::overflow_error&) {
                // Containment tests on ever-finer positions can exhaust
                // the exact arithmetic too; same report as above.
                violation("position arithmetic overflowed at round " +
                          std::to_string(k) +
                          " before every process decided");
                overflowed = true;
                break;
            }
        }
        if (overflowed) break;
        if (!decided_at.has_value() && all_infinite_decided()) {
            decided_at = k;
        }
    }
    result.rounds = k;
    result.all_decided = decided_at.has_value();
    if (!decided_at.has_value()) {
        for (ProcessId p : infinite.members()) {
            if (!decided_ever[p]) {
                violation("infinitely participating p" + std::to_string(p) +
                          " never decides (horizon " +
                          std::to_string(config.horizon) + ")");
            }
        }
    }

    // Condition (2): the produced outputs must form an allowed simplex.
    topo::Simplex produced;
    for (ProcessId p = 0; p < n; ++p) {
        if (result.outputs[p].has_value()) {
            produced = produced.with(*result.outputs[p]);
        }
    }
    if (!produced.empty() && !allowed.contains(produced)) {
        violation("outputs " + produced.to_string() + " not allowed for " +
                  participants.to_string());
    }
    return result;
}

}  // namespace gact::runtime
