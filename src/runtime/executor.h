// The execution engine: run a witness-backed decision rule as n simulated
// processes over the shared-memory IIS substrate (src/sm/), one schedule
// at a time, and check what comes out against Definition 4.1.
//
// Where protocol/verifier.h checks a finite *table* against the compact
// run families the engine enumerated, the executor checks the *behavior*:
// it drives sm::IisExecution round by round (run_partition_round realizes
// each ordered partition exactly, re-read from the boards), queries the
// decision rule on the views the substrate actually produced, and records
// every violation of the protocol conditions — decision stability, output
// colors, and outputs landing inside Delta of the participants' inputs.
// Rules are arena-independent: table rules key on a canonical structural
// encoding of views, so executions can run in parallel with private
// arenas and still agree bit-for-bit.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/terminating_subdivision.h"
#include "protocol/gact_protocol.h"
#include "runtime/schedule.h"
#include "tasks/task.h"
#include "topology/geometry.h"

namespace gact::runtime {

/// Canonical, arena-independent structural key of a view: owners and
/// depth-0 inputs, with seen sub-views ordered by owner (ids are
/// arena-local and never enter the key). Two views in different arenas
/// get equal keys iff they are structurally the same view.
std::string canonical_view_key(const iis::ViewArena& arena, iis::ViewId v);

/// A decision rule: the executable form of a protocol. The executor asks
/// it, after every round, what each participating process decides given
/// the view the substrate just handed it.
class DecisionRule {
public:
    virtual ~DecisionRule() = default;

    virtual std::string name() const = 0;

    /// True when decide() reads `seen_positions` (the exact barycentric
    /// positions of the views in the process's last snapshot) — lets the
    /// executor skip the rational arithmetic for table rules.
    virtual bool needs_positions() const = 0;

    /// The decision of p after round k (k = 0: initial view, no
    /// snapshot), or nullopt to withhold. Must be a function of the view
    /// (and through it the round count), never of executor state.
    virtual std::optional<topo::VertexId> decide(
        ProcessId p, std::size_t k, iis::ViewId view,
        const iis::ViewArena& arena,
        const std::vector<topo::BaryPoint>& seen_positions) const = 0;
};

/// Wait-free witnesses as a rule: a finite table from canonical keys of
/// depth-d views to outputs (eta of Corollary 7.1 via the view <-> Chr^d
/// vertex bijection). At depth k > d a process decides on its *own*
/// depth-d sub-view — the "remember your round-d state" protocol — which
/// makes decisions stable by construction; below depth d it withholds.
class TableRule final : public DecisionRule {
public:
    TableRule(std::string name, std::size_t depth)
        : name_(std::move(name)), depth_(depth) {}

    void insert(std::string canonical_key, topo::VertexId output) {
        table_[std::move(canonical_key)] = output;
    }

    std::size_t size() const noexcept { return table_.size(); }
    std::size_t depth() const noexcept { return depth_; }

    std::string name() const override { return name_; }
    bool needs_positions() const override { return false; }
    std::optional<topo::VertexId> decide(
        ProcessId p, std::size_t k, iis::ViewId view,
        const iis::ViewArena& arena,
        const std::vector<topo::BaryPoint>& seen_positions) const override;

private:
    std::string name_;
    std::size_t depth_;
    std::unordered_map<std::string, topo::VertexId> table_;
};

/// General-route witnesses as a rule: the view-local landing rule of
/// protocol extraction (protocol::ViewLandingRule) applied on the fly, so
/// it covers *any* admissible schedule, not just the compact run family
/// the engine tabulated. Owns its delta copy and shares the subdivision.
class LandingDecisionRule final : public DecisionRule {
public:
    LandingDecisionRule(
        std::shared_ptr<const core::TerminatingSubdivision> tsub,
        core::SimplicialMap delta);

    std::string name() const override { return "landing-rule"; }
    bool needs_positions() const override { return true; }
    std::optional<topo::VertexId> decide(
        ProcessId p, std::size_t k, iis::ViewId view,
        const iis::ViewArena& arena,
        const std::vector<topo::BaryPoint>& seen_positions) const override;

private:
    std::shared_ptr<const core::TerminatingSubdivision> tsub_;
    core::SimplicialMap delta_;
    protocol::ViewLandingRule rule_;
};

struct ExecutionConfig {
    /// Hard round cap: an execution still undecided here is a "never
    /// decides" violation.
    std::size_t horizon = 24;
    /// Extra cycle rounds executed after every infinite participant has
    /// decided, to exercise decision stability past the landing point.
    std::size_t stability_tail = 2;
    /// Cross-check every substrate view against the analytic
    /// Run::view_table — the SM -> IIS simulation check, per round.
    bool check_views = true;
};

struct ExecutionResult {
    /// Definition 4.1 violations (empty on a clean execution).
    std::vector<std::string> violations;
    /// Final decision per process (nullopt: never decided / not
    /// participating).
    std::vector<std::optional<topo::VertexId>> outputs;
    /// Rounds actually executed.
    std::size_t rounds = 0;
    /// Every infinitely participating process decided within the horizon.
    bool all_decided = false;
};

/// Execute `rule` under `schedule` on the SM substrate and check the
/// protocol conditions. `inputs[p]` is p's input vertex (nullopt
/// everywhere for inputless tasks); `allowed` is Delta(omega ∩
/// chi^{-1}(participants)) — exactly the simplex set the verifier uses
/// for condition (2).
ExecutionResult execute(const tasks::Task& task, const DecisionRule& rule,
                        const Schedule& schedule,
                        const std::vector<std::optional<topo::VertexId>>& inputs,
                        const topo::SimplicialComplex& allowed,
                        const ExecutionConfig& config = {});

}  // namespace gact::runtime
