#include "runtime/fuzz.h"

#include <algorithm>
#include <sstream>

#include "engine/executable.h"
#include "exec/for_index.h"
#include "runtime/executor.h"
#include "util/require.h"

namespace gact::runtime {

namespace {

/// Order-sensitive 64-bit fold (one SplitMix64 step per word).
std::uint64_t fold(std::uint64_t acc, std::uint64_t word) {
    return mix_seed(acc ^ (word + 0xd1b54a32d192ed03ULL), 0x2545f4914f6cdd1dULL);
}

std::uint64_t digest_of(const ExecutionResult& r) {
    std::uint64_t d = 0x243f6a8885a308d3ULL;
    d = fold(d, r.rounds);
    d = fold(d, r.all_decided ? 1 : 0);
    for (const auto& out : r.outputs) {
        d = fold(d, out.has_value() ? 1 + static_cast<std::uint64_t>(*out)
                                    : 0);
    }
    d = fold(d, r.violations.size());
    return d;
}

bool is_admissible(const iis::Model* model, const Schedule& s) {
    return model == nullptr || model->contains(s.to_run());
}

/// Greedy shrink: repeatedly take the first simplification that keeps
/// the schedule admissible and still failing, until none applies or the
/// execution budget runs out. Simplifications, strongest first: drop the
/// whole prefix, drop one prefix round, flatten a prefix partition to
/// fully concurrent, flatten the cycle partition.
template <typename FailsFn>
Schedule shrink_schedule(Schedule s, const iis::Model* model,
                         std::size_t budget, const FailsFn& fails) {
    const auto still_failing = [&](const Schedule& c) {
        if (budget == 0) return false;
        --budget;
        if (!is_admissible(model, c)) return false;
        try {
            return fails(c);
        } catch (const std::exception&) {
            return false;  // malformed candidate: not a valid shrink
        }
    };
    bool improved = true;
    while (improved && budget > 0) {
        improved = false;
        if (!s.prefix.empty()) {
            Schedule c = s;
            c.prefix.clear();
            if (still_failing(c)) {
                s = std::move(c);
                continue;
            }
        }
        for (std::size_t i = 0; i < s.prefix.size() && !improved; ++i) {
            Schedule c = s;
            c.prefix.erase(c.prefix.begin() + static_cast<std::ptrdiff_t>(i));
            if (still_failing(c)) {
                s = std::move(c);
                improved = true;
            }
        }
        if (improved) continue;
        for (std::size_t i = 0; i < s.prefix.size() && !improved; ++i) {
            if (s.prefix[i].num_blocks() <= 1) continue;
            Schedule c = s;
            c.prefix[i] = iis::OrderedPartition::concurrent(
                s.prefix[i].support());
            if (still_failing(c)) {
                s = std::move(c);
                improved = true;
            }
        }
        if (improved) continue;
        if (s.cycle.num_blocks() > 1) {
            Schedule c = s;
            c.cycle = iis::OrderedPartition::concurrent(s.cycle.support());
            if (still_failing(c)) {
                s = std::move(c);
                improved = true;
            }
        }
    }
    return s;
}

}  // namespace

std::string FuzzResult::summary() const {
    std::ostringstream os;
    os << scenario << ": ";
    if (skipped) {
        os << "skipped (" << skip_reason << ")";
        return os.str();
    }
    os << executed << " schedules, " << violation_count << " violations, "
       << "digest 0x" << std::hex << result_digest;
    return os.str();
}

FuzzResult fuzz(const engine::Scenario& scenario,
                const engine::SolveReport& report, const FuzzConfig& config) {
    FuzzResult out;
    out.scenario = scenario.name;
    out.result_digest = config.seed;

    const auto skip = [&out](std::string why) {
        out.skipped = true;
        out.skip_reason = std::move(why);
        return out;
    };
    if (!report.solvable() || !report.witness.has_value()) {
        return skip(std::string("verdict ") + engine::to_string(report.verdict));
    }
    if (scenario.is_wait_free()) {
        if (!report.wf_domain.has_value() || report.witness_depth < 0) {
            return skip("wait-free report without Chr^d domain");
        }
    } else if (report.tsub == nullptr) {
        return skip("general report without terminating subdivision");
    }

    const std::unique_ptr<DecisionRule> rule =
        engine::make_decision_rule(scenario, report);
    const tasks::Task& task = scenario.task;
    const std::uint32_t n = task.num_processes;
    const bool inputless = task.is_inputless();
    std::vector<topo::Simplex> facets;
    if (!inputless) {
        facets = task.inputs.complex().simplices_of_dimension(
            static_cast<int>(n) - 1);
        require(!facets.empty(), "fuzz: input complex has no facets");
    }
    const std::size_t base_rounds =
        scenario.is_wait_free()
            ? static_cast<std::size_t>(std::max(report.witness_depth, 0))
            : scenario.options.max_landing_round;

    // The schedule envelope. Wait-free witnesses are total on Chr^d, so
    // any prefix depth is covered by the Corollary 7.1 guarantee. The
    // general route's landing guarantee, however, is only *verified*
    // over the compact family M_D (D = run_prefix_depth): deeper random
    // prefixes can park the run's projection exactly on a stable-complex
    // vertex, where the snapshot hull straddles it forever and the
    // view-local rule never fires (the fuzzer found such runs for L_t —
    // e.g. prefix ({2}|{1})x3 then {1,2} concurrent — which is the
    // paper's compactness gap made concrete). So the generator draws
    // inside the envelope the engine actually proved.
    const std::uint32_t max_prefix =
        scenario.is_wait_free()
            ? config.max_prefix_rounds
            : std::min(config.max_prefix_rounds,
                       scenario.options.run_prefix_depth);
    const ScheduleGenerator generator(n, scenario.model, max_prefix);
    const iis::Model* model = scenario.model.get();

    // One execution of `s` under input facet `omega_index`, with the
    // verifier's allowed-output complex for the drawn participants.
    const auto run_one = [&](const Schedule& s, std::size_t omega_index) {
        std::vector<std::optional<topo::VertexId>> inputs(n);
        topo::Simplex face;
        if (inputless) {
            for (ProcessId p : s.participants().members()) {
                face = face.with(static_cast<topo::VertexId>(p));
            }
        } else {
            const topo::Simplex& omega = facets[omega_index];
            for (ProcessId p = 0; p < n; ++p) {
                inputs[p] = task.inputs.vertex_with_color(omega, p);
            }
            for (ProcessId p : s.participants().members()) {
                face = face.with(*inputs[p]);
            }
        }
        ExecutionConfig ec;
        ec.horizon = s.prefix.size() + base_rounds + config.horizon_slack;
        ec.stability_tail = config.stability_tail;
        ec.check_views = config.check_views;
        return execute(task, *rule, s, inputs, task.delta.at(face), ec);
    };

    struct Slot {
        std::uint64_t digest = 0;
        std::unique_ptr<FuzzViolation> violation;
    };
    std::vector<Slot> slots(config.iterations);

    exec::for_index(exec::Scheduler::shared(), config.iterations,
                    config.threads, [&](std::size_t i) {
        SplitMix64 rng(mix_seed(config.seed, i));
        const Schedule s = generator.next(rng);
        const std::size_t omega_index =
            facets.empty() ? 0 : rng.below(facets.size());
        const ExecutionResult r = run_one(s, omega_index);
        slots[i].digest = digest_of(r);
        if (!r.violations.empty()) {
            auto v = std::make_unique<FuzzViolation>();
            v->iteration = i;
            v->omega_index = omega_index;
            v->schedule = s;
            v->detail = r.violations.front();
            v->shrunk = shrink_schedule(
                s, model, config.shrink_budget, [&](const Schedule& c) {
                    return !run_one(c, omega_index).violations.empty();
                });
            slots[i].violation = std::move(v);
        }
    });

    for (std::size_t i = 0; i < slots.size(); ++i) {
        out.result_digest = fold(out.result_digest, slots[i].digest);
        ++out.executed;
        if (slots[i].violation != nullptr) {
            ++out.violation_count;
            if (out.violations.size() < config.max_recorded_violations) {
                out.violations.push_back(std::move(*slots[i].violation));
            }
        }
    }
    return out;
}

engine::ExecutedCheck attach_executed_check(const engine::Scenario& scenario,
                                            engine::SolveReport& report,
                                            const FuzzConfig& config) {
    const FuzzResult r = fuzz(scenario, report, config);
    engine::ExecutedCheck check;
    check.schedules = r.executed;
    check.violations = r.violation_count;
    check.seed = config.seed;
    check.result_digest = r.result_digest;
    check.skipped = r.skipped;
    if (r.skipped) {
        check.detail = r.skip_reason;
    } else if (!r.violations.empty()) {
        check.detail = "iteration " + std::to_string(r.violations[0].iteration) +
                       ": " + r.violations[0].detail + " [shrunk " +
                       r.violations[0].shrunk.to_string() + "]";
    } else {
        check.detail = "clean";
    }
    report.executed_check = check;
    return check;
}

}  // namespace gact::runtime
