// Randomized execution checking of solved scenarios, with shrinking.
//
// fuzz() takes a scenario and its SolveReport, turns the witness into an
// executable decision rule (engine/executable.h), and runs it under
// `iterations` randomized schedules drawn from the scenario's model —
// only admissible ones, by construction of ScheduleGenerator. Every
// execution is checked against Definition 4.1 on the SM substrate; a
// failing schedule is *shrunk* (drop prefix rounds, flatten partitions)
// to a greedy-minimal counterexample that still fails and is still
// admissible, reported together with the (seed, iteration) pair that
// replays it exactly.
//
// Determinism: iteration i draws from SplitMix64(mix_seed(seed, i)), and
// results land in preallocated per-iteration slots folded in index
// order, so the result digest is bit-identical for 1 and N shard
// threads — the property the reproducibility tests pin.
#pragma once

#include "engine/engine.h"
#include "engine/scenario.h"
#include "runtime/schedule.h"

namespace gact::runtime {

struct FuzzConfig {
    std::uint64_t seed = 1;
    std::size_t iterations = 200;
    /// Shard threads (parallel_for_index); results are thread-count
    /// independent.
    unsigned threads = 1;
    /// Longest random prefix before the cycle round.
    std::uint32_t max_prefix_rounds = 3;
    /// Horizon = prefix + (witness depth | landing horizon) + this.
    std::size_t horizon_slack = 8;
    /// Extra rounds executed after the last decision (stability check).
    std::size_t stability_tail = 2;
    /// Cross-check substrate views against Run::view_table every round.
    bool check_views = true;
    /// Keep at most this many shrunk counterexamples in the result.
    std::size_t max_recorded_violations = 4;
    /// Executions the shrinker may spend per counterexample.
    std::size_t shrink_budget = 400;
};

/// One failing execution, with its shrunk replayable form.
struct FuzzViolation {
    std::uint64_t iteration = 0;  ///< replay: mix_seed(seed, iteration)
    std::size_t omega_index = 0;  ///< input facet index (0 if inputless)
    Schedule schedule;            ///< as drawn
    Schedule shrunk;              ///< greedy-minimal, still failing
    std::string detail;           ///< first violation message
};

struct FuzzResult {
    std::string scenario;
    bool skipped = false;      ///< no runnable witness
    std::string skip_reason;   ///< why (verdict, missing artifacts)
    std::size_t executed = 0;  ///< schedules executed
    std::size_t violation_count = 0;
    /// First max_recorded_violations failures, in iteration order.
    std::vector<FuzzViolation> violations;
    /// Deterministic fold of all execution outcomes, in iteration order.
    std::uint64_t result_digest = 0;

    bool clean() const { return !skipped && violation_count == 0; }
    /// "name: N schedules, V violations, digest <hex>".
    std::string summary() const;
};

/// Fuzz a solved scenario's witness. Unsolvable / unsupported /
/// artifact-less reports come back `skipped` (never a throw): the
/// campaign driver treats those as vacuously passing.
FuzzResult fuzz(const engine::Scenario& scenario,
                const engine::SolveReport& report, const FuzzConfig& config);

/// fuzz() and record the outcome as report.executed_check.
engine::ExecutedCheck attach_executed_check(const engine::Scenario& scenario,
                                            engine::SolveReport& report,
                                            const FuzzConfig& config);

}  // namespace gact::runtime
