#include "runtime/schedule.h"

#include "iis/ordered_partition.h"
#include "util/require.h"

namespace gact::runtime {

std::size_t SplitMix64::below(std::size_t bound) {
    require(bound > 0, "SplitMix64::below: empty range");
    // Rejection keeps the draw exactly uniform (and still deterministic:
    // the retry sequence is part of the stream).
    const std::uint64_t b = static_cast<std::uint64_t>(bound);
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % b);
    std::uint64_t x = next();
    while (x >= limit) x = next();
    return static_cast<std::size_t>(x % b);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
    // One SplitMix64 step over the combined words decorrelates streams;
    // the golden-ratio offset keeps (seed, 0) distinct from (seed+1, ...).
    SplitMix64 rng(seed ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL));
    return rng.next();
}

iis::Run Schedule::to_run() const {
    require(!cycle.empty(), "Schedule: empty cycle round");
    return iis::Run(num_processes, prefix, {cycle});
}

std::string Schedule::to_string() const {
    std::string out = "p=";
    if (prefix.empty()) out += "-";
    for (std::size_t i = 0; i < prefix.size(); ++i) {
        if (i > 0) out += ",";
        out += prefix[i].to_string();
    }
    out += " c=" + cycle.to_string();
    return out;
}

ScheduleGenerator::ScheduleGenerator(std::uint32_t num_processes,
                                     std::shared_ptr<const iis::Model> model,
                                     std::uint32_t max_prefix_rounds)
    : num_processes_(num_processes),
      model_(std::move(model)),
      max_prefix_rounds_(max_prefix_rounds) {
    require(num_processes_ > 0, "ScheduleGenerator: no processes");
    for (ProcessSet s : nonempty_subsets(ProcessSet::full(num_processes_))) {
        if (model_ == nullptr ||
            model_->contains(iis::Run::forever(
                num_processes_, iis::OrderedPartition::concurrent(s)))) {
            cycle_supports_.push_back(s);
        }
    }
    require(!cycle_supports_.empty(),
            "ScheduleGenerator: model admits no period-1 cycle support");
}

Schedule ScheduleGenerator::next(SplitMix64& rng) const {
    const auto pick_partition = [&rng](ProcessSet support) {
        const std::vector<iis::OrderedPartition> parts =
            iis::all_ordered_partitions(support);
        return parts[rng.below(parts.size())];
    };
    // Bounded retry: the partition layout can shift fast(r) away from
    // the cycle support (minimal-run extraction), so the assembled run
    // is re-checked and redrawn on the rare rejection.
    for (int attempt = 0; attempt < 256; ++attempt) {
        Schedule s;
        s.num_processes = num_processes_;
        const ProcessSet cycle_support =
            cycle_supports_[rng.below(cycle_supports_.size())];
        // Prefix supports: a weakly decreasing chain from a random
        // superset of the cycle support down to it.
        const std::uint32_t depth =
            static_cast<std::uint32_t>(rng.below(max_prefix_rounds_ + 1));
        std::vector<ProcessSet> supports(depth);
        ProcessSet ceiling = ProcessSet::full(num_processes_);
        for (std::uint32_t i = 0; i < depth; ++i) {
            // A random set between cycle_support and the current ceiling:
            // keep every cycle process, coin-flip the rest of the ceiling.
            ProcessSet chosen = cycle_support;
            for (ProcessId p : (ceiling - cycle_support).members()) {
                if (rng.next() & 1) chosen = chosen.with(p);
            }
            supports[i] = chosen;
            ceiling = chosen;
        }
        for (std::uint32_t i = 0; i < depth; ++i) {
            s.prefix.push_back(pick_partition(supports[i]));
        }
        s.cycle = pick_partition(cycle_support);
        const iis::Run run = s.to_run();
        if (model_ == nullptr || model_->contains(run)) return s;
    }
    throw precondition_error(
        "ScheduleGenerator: no admissible schedule found for model " +
        (model_ ? model_->name() : std::string("WF")) + " after 256 draws");
}

}  // namespace gact::runtime
