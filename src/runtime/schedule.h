// Schedules: finite, executable descriptions of IIS runs, plus seeded
// generators that only draw schedules a given model admits.
//
// The runtime executes protocols under *schedules*: a finite prefix of
// ordered-partition rounds followed by one cycle round repeated until
// every cycle process has decided. That is exactly the library's
// eventually-periodic Run representation (iis/run.h) with a period-1
// cycle, so admissibility of a schedule against a sub-IIS model is
// Model::contains on its Run — the same predicate the engine's
// admissibility stage uses, which is what entitles the fuzzer to treat
// a violation as a witness bug rather than an off-model run.
//
// Determinism contract: every random draw flows through SplitMix64 (a
// fixed published algorithm, no libstdc++ distribution in the path), so
// one (seed, iteration) pair names one schedule on any build — the
// property the replay CLI and the shard-reproducibility tests pin.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "iis/models.h"
#include "iis/run.h"

namespace gact::runtime {

/// Deterministic 64-bit PRNG (SplitMix64): fixed output sequence per
/// seed on every platform and standard library.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform draw from [0, bound); bound must be positive.
    std::size_t below(std::size_t bound);

private:
    std::uint64_t state_;
};

/// Mix a seed with an iteration index into an independent stream seed
/// (so fuzz iterations are reproducible regardless of shard order).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

/// A finite schedule: `prefix` rounds, then `cycle` repeated forever.
/// Supports must be weakly decreasing along prefix + cycle (the IIS run
/// invariant); participants are the first round's support.
struct Schedule {
    std::uint32_t num_processes = 0;
    std::vector<iis::OrderedPartition> prefix;
    iis::OrderedPartition cycle;

    /// The eventually-periodic run this schedule describes.
    iis::Run to_run() const;

    ProcessSet participants() const {
        return prefix.empty() ? cycle.support() : prefix.front().support();
    }

    /// Round k (0-indexed): prefix rounds first, then the cycle.
    const iis::OrderedPartition& round(std::size_t k) const {
        return k < prefix.size() ? prefix[k] : cycle;
    }

    /// "p=({0}|{1,2}),({0,1,2}) c=({1,2})" — the replayable partition
    /// trace printed with counterexamples.
    std::string to_string() const;

    friend bool operator==(const Schedule& a, const Schedule& b) = default;
};

/// Seeded generator of schedules admissible for a model.
///
/// Family shaping: the generator pre-computes, once, the set of cycle
/// supports the model admits (probing Model::contains on the
/// forever-concurrent run of each support — exact for every fast-set-
/// determined family: wait-free admits all supports, Res_t those of
/// size >= n+1-t, OF_k those of size <= k, an adversary the complements
/// of its slow sets). Each draw picks an admissible cycle support, a
/// weakly decreasing random prefix above it, and random ordered
/// partitions, then re-checks Model::contains on the assembled run —
/// the fuzzer never executes a schedule the model does not permit.
class ScheduleGenerator {
public:
    /// `model` may be null (wait-free: every schedule is admissible).
    /// Throws precondition_error if the model admits no cycle support.
    ScheduleGenerator(std::uint32_t num_processes,
                      std::shared_ptr<const iis::Model> model,
                      std::uint32_t max_prefix_rounds);

    /// Draw one admissible schedule from `rng`.
    Schedule next(SplitMix64& rng) const;

    const std::vector<ProcessSet>& admissible_cycle_supports() const {
        return cycle_supports_;
    }

private:
    std::uint32_t num_processes_;
    std::shared_ptr<const iis::Model> model_;
    std::uint32_t max_prefix_rounds_;
    std::vector<ProcessSet> cycle_supports_;
};

}  // namespace gact::runtime
