#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gact::service {

std::string ServiceClient::connect(const std::string& host,
                                   std::uint16_t port) {
    close();
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* results = nullptr;
    const int rc = ::getaddrinfo(host.c_str(),
                                 std::to_string(port).c_str(), &hints,
                                 &results);
    if (rc != 0) {
        return "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    }
    std::string last_error = "no addresses for '" + host + "'";
    for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = std::string("socket() failed: ") +
                         std::strerror(errno);
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            fd_ = fd;
            break;
        }
        last_error =
            std::string("connect() failed: ") + std::strerror(errno);
        ::close(fd);
    }
    ::freeaddrinfo(results);
    return fd_ >= 0 ? "" : last_error;
}

std::string ServiceClient::send(const util::Json& request) {
    if (fd_ < 0) return "not connected";
    return write_frame(fd_, request.dump());
}

std::optional<util::Json> ServiceClient::receive(std::string* error) {
    if (error != nullptr) error->clear();
    if (fd_ < 0) {
        if (error != nullptr) *error = "not connected";
        return std::nullopt;
    }
    std::string payload;
    std::string diagnostic;
    const ReadStatus status = read_frame(fd_, payload, diagnostic);
    if (status == ReadStatus::kClosed) {
        if (error != nullptr) *error = "connection closed by server";
        return std::nullopt;
    }
    if (status == ReadStatus::kError) {
        if (error != nullptr) *error = diagnostic;
        return std::nullopt;
    }
    std::string parse_error;
    std::optional<util::Json> reply =
        util::Json::parse(payload, &parse_error);
    if (!reply.has_value() && error != nullptr) {
        *error = "unparseable reply: " + parse_error;
    }
    return reply;
}

std::optional<util::Json> ServiceClient::request(const util::Json& req,
                                                 std::string* error) {
    const std::string send_error = send(req);
    if (!send_error.empty()) {
        if (error != nullptr) *error = send_error;
        return std::nullopt;
    }
    return receive(error);
}

void ServiceClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace gact::service
