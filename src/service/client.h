// The client half of gact::service: one TCP connection speaking the
// length-prefixed JSON framing.
//
// Thin by design — connect, send a request object, await a reply
// object. The one-shot CLI (tools/gact_client.cpp), the load generator
// (bench/bench_service_load.cpp), and the loopback e2e tests all drive
// the server through this class, so the client-side framing exists in
// exactly one place. send()/receive() are exposed separately from
// request() because backpressure tests and pipelining clients need to
// put several requests in flight before draining replies (replies to
// pipelined requests carry the echoed "id" for correlation).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "service/framing.h"
#include "util/json.h"

namespace gact::service {

class ServiceClient {
public:
    ServiceClient() = default;
    ~ServiceClient() { close(); }

    ServiceClient(const ServiceClient&) = delete;
    ServiceClient& operator=(const ServiceClient&) = delete;

    /// Connect to host:port (IPv4 dotted quad or resolvable name).
    /// Returns "" on success, else a diagnostic.
    std::string connect(const std::string& host, std::uint16_t port);

    bool connected() const noexcept { return fd_ >= 0; }

    /// Frame and send one request object. Returns "" or a diagnostic.
    std::string send(const util::Json& request);

    /// Block for the next reply frame. nullopt on close/error (with
    /// `error` explaining when non-null).
    std::optional<util::Json> receive(std::string* error = nullptr);

    /// send() + receive(): the closed-loop round trip.
    std::optional<util::Json> request(const util::Json& req,
                                      std::string* error = nullptr);

    void close();

private:
    int fd_ = -1;
};

}  // namespace gact::service
