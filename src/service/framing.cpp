#include "service/framing.h"

#include <cerrno>
#include <cstring>
#include <limits>

#include <sys/socket.h>
#include <unistd.h>

#include "util/require.h"

namespace gact::service {

namespace {

constexpr std::size_t kPrefixBytes = 4;

std::uint32_t decode_be32(const char* p) {
    const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
    return (static_cast<std::uint32_t>(u[0]) << 24) |
           (static_cast<std::uint32_t>(u[1]) << 16) |
           (static_cast<std::uint32_t>(u[2]) << 8) |
           static_cast<std::uint32_t>(u[3]);
}

void encode_be32(std::uint32_t v, char* p) {
    p[0] = static_cast<char>((v >> 24) & 0xFF);
    p[1] = static_cast<char>((v >> 16) & 0xFF);
    p[2] = static_cast<char>((v >> 8) & 0xFF);
    p[3] = static_cast<char>(v & 0xFF);
}

}  // namespace

std::string encode_frame(const std::string& payload) {
    require(!payload.empty(), "encode_frame: empty payload");
    require(payload.size() <= std::numeric_limits<std::uint32_t>::max(),
            "encode_frame: payload exceeds the 4-byte length prefix");
    std::string out;
    out.resize(kPrefixBytes + payload.size());
    encode_be32(static_cast<std::uint32_t>(payload.size()), out.data());
    std::memcpy(out.data() + kPrefixBytes, payload.data(), payload.size());
    return out;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
    if (!error_.empty()) return;  // dead stream: drop everything
    // Compact the consumed prefix before growing, so a long-lived
    // connection does not accumulate every frame it ever received.
    if (pos_ > 0 && pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
    } else if (pos_ > (64u << 10)) {
        buffer_.erase(0, pos_);
        pos_ = 0;
    }
    buffer_.append(data, size);
}

std::optional<std::string> FrameDecoder::next() {
    if (!error_.empty()) return std::nullopt;
    if (buffer_.size() - pos_ < kPrefixBytes) return std::nullopt;
    const std::uint32_t length = decode_be32(buffer_.data() + pos_);
    if (length == 0) {
        error_ = "zero-length frame";
        return std::nullopt;
    }
    if (length > max_payload_) {
        error_ = "frame length " + std::to_string(length) +
                 " exceeds the " + std::to_string(max_payload_) +
                 "-byte cap";
        return std::nullopt;
    }
    if (buffer_.size() - pos_ < kPrefixBytes + length) {
        return std::nullopt;  // truncated so far: wait for more bytes
    }
    std::string payload =
        buffer_.substr(pos_ + kPrefixBytes, length);
    pos_ += kPrefixBytes + length;
    return payload;
}

std::string write_frame(int fd, const std::string& payload) {
    std::string frame;
    try {
        frame = encode_frame(payload);
    } catch (const std::exception& e) {
        return e.what();
    }
    std::size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL: a peer that hung up must surface as an EPIPE
        // return value, not a process-killing SIGPIPE — one misbehaving
        // client must never take down a long-running server. send() only
        // works on sockets, so fall back to write() for pipes/files.
        ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK) {
            n = ::write(fd, frame.data() + sent, frame.size() - sent);
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            return std::string("write failed: ") + std::strerror(errno);
        }
        sent += static_cast<std::size_t>(n);
    }
    return "";
}

ReadStatus read_frame(int fd, std::string& payload, std::string& diagnostic,
                      std::size_t max_payload) {
    diagnostic.clear();
    const auto read_exact = [&](char* out, std::size_t want,
                                bool at_boundary) -> ReadStatus {
        std::size_t got = 0;
        while (got < want) {
            const ssize_t n = ::read(fd, out + got, want - got);
            if (n < 0) {
                if (errno == EINTR) continue;
                diagnostic =
                    std::string("read failed: ") + std::strerror(errno);
                return ReadStatus::kError;
            }
            if (n == 0) {
                if (at_boundary && got == 0) return ReadStatus::kClosed;
                diagnostic = "connection closed mid-frame";
                return ReadStatus::kError;
            }
            got += static_cast<std::size_t>(n);
        }
        return ReadStatus::kOk;
    };

    char prefix[kPrefixBytes];
    ReadStatus status = read_exact(prefix, kPrefixBytes, true);
    if (status != ReadStatus::kOk) return status;
    const std::uint32_t length = decode_be32(prefix);
    if (length == 0) {
        diagnostic = "zero-length frame";
        return ReadStatus::kError;
    }
    if (length > max_payload) {
        diagnostic = "frame length " + std::to_string(length) +
                     " exceeds the " + std::to_string(max_payload) +
                     "-byte cap";
        return ReadStatus::kError;
    }
    payload.resize(length);
    return read_exact(payload.data(), length, false);
}

}  // namespace gact::service
