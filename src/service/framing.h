// The wire framing of gact::service: length-prefixed JSON frames.
//
// One frame = a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. The prefix makes message boundaries explicit on
// a byte stream (TCP has none), and capping it (`max_payload`) lets the
// server reject a garbage or hostile prefix — say, the first four bytes
// of an HTTP request aimed at the wrong port — before allocating
// anything. A zero-length payload is also invalid: every protocol
// message is at least "{}".
//
// The pure encode/decode core (encode_frame / FrameDecoder) is
// separated from the socket I/O (read_frame / write_frame) so the
// framing rules are unit-testable byte by byte — round-trip,
// truncation, garbage — without a socket in sight
// (tests/service_framing_test.cpp). FrameDecoder is incremental: feed
// it whatever the socket produced, get back complete payloads; a
// payload split across reads is simply not ready yet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace gact::service {

/// Default payload cap: far above any real request or report (reports
/// carry digests, not witnesses) while keeping a hostile prefix from
/// provoking a large allocation.
inline constexpr std::size_t kDefaultMaxPayload = 4u << 20;  // 4 MiB

/// The 4-byte big-endian length prefix + payload, as one buffer.
/// Precondition (checked): 0 < payload.size() <= max encodable.
std::string encode_frame(const std::string& payload);

/// Incremental decoder of a frame stream.
class FrameDecoder {
public:
    explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
        : max_payload_(max_payload) {}

    /// Append raw bytes from the stream.
    void feed(const char* data, std::size_t size);
    void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

    /// Extract the next complete payload, if one is buffered. Returns
    /// nullopt when more bytes are needed — OR after a framing error;
    /// distinguish with error(). Once an error is set the stream is
    /// desynchronized and the decoder stays dead (there is no way to
    /// find the next frame boundary after a bogus length prefix).
    std::optional<std::string> next();

    /// Non-empty after a fatal framing error (oversized or zero length
    /// prefix).
    const std::string& error() const noexcept { return error_; }

    /// Bytes buffered but not yet returned (diagnostics/tests).
    std::size_t buffered() const noexcept { return buffer_.size() - pos_; }

private:
    std::size_t max_payload_;
    std::string buffer_;
    std::size_t pos_ = 0;  // consumed prefix of buffer_
    std::string error_;
};

// --------------------------------------------------------------- socket I/O

/// Write one frame to `fd`, looping over partial writes and EINTR.
/// Returns "" on success, else a diagnostic. A hung-up peer is an
/// EPIPE diagnostic, never a SIGPIPE (sockets are written with
/// MSG_NOSIGNAL; non-socket fds fall back to plain write). (No
/// internal locking: the server serializes writers per connection.)
std::string write_frame(int fd, const std::string& payload);

/// Result of one blocking frame read.
enum class ReadStatus {
    kOk,      ///< `payload` holds one complete frame
    kClosed,  ///< orderly EOF on a frame boundary
    kError,   ///< I/O error, mid-frame EOF, or framing error (see diag)
};

/// Read exactly one frame from `fd` (blocking). On kError `diagnostic`
/// explains; a mid-frame EOF is an error (the peer died mid-message),
/// while EOF before any byte of a frame is a clean kClosed.
ReadStatus read_frame(int fd, std::string& payload, std::string& diagnostic,
                      std::size_t max_payload = kDefaultMaxPayload);

}  // namespace gact::service
