// The server's bounded admission queue.
//
// Connection threads try_push() solve jobs; worker threads pop() them —
// the same self-scheduling shape as util/parallel.h's shard pool
// (workers pull the next unit as they free up, so long solves overlap
// short ones), but over an open-ended stream of requests instead of a
// fixed index range, which is why this is a condvar queue rather than
// an atomic counter. The bound is the backpressure contract: a full
// queue fails the push immediately (the connection replies "queue-full"
// to its client) instead of buffering unbounded work the server has
// already lost the race to finish.
//
// close() is the graceful-drain half: pushes start failing, pops keep
// draining whatever was admitted, and once empty every blocked pop
// returns false — exactly the order shutdown wants (finish admitted
// work, then let the workers exit).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace gact::service {

template <typename T>
class RequestQueue {
public:
    explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

    /// Admit one job. Fails (without blocking) when the queue is at
    /// capacity or closed — the caller turns that into a backpressure
    /// or shutting-down reply.
    bool try_push(T job) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || jobs_.size() >= capacity_) return false;
            jobs_.push_back(std::move(job));
        }
        ready_.notify_one();
        return true;
    }

    /// Take the next job, blocking while the queue is open and empty.
    /// Returns false only when the queue is closed AND drained.
    bool pop(T& out) {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
        if (jobs_.empty()) return false;
        out = std::move(jobs_.front());
        jobs_.pop_front();
        return true;
    }

    /// Stop admitting; wake every blocked pop. Idempotent.
    void close() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    std::size_t depth() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return jobs_.size();
    }

    std::size_t capacity() const noexcept { return capacity_; }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> jobs_;
    bool closed_ = false;
};

}  // namespace gact::service
