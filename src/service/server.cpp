#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "engine/report_json.h"
#include "engine/scenario_registry.h"
#include "util/require.h"

namespace gact::service {

namespace {

double millis_between(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Connection::~Connection() {
    if (fd >= 0) ::close(fd);
}

SolveServer::SolveServer(ServiceConfig config)
    : config_(std::move(config)),
      pool_(std::make_shared<core::SharedNogoodPool>()),
      queue_(config_.queue_depth == 0 ? 1 : config_.queue_depth) {
    if (config_.workers == 0) config_.workers = 1;
    if (config_.max_connections == 0) config_.max_connections = 1;
}

SolveServer::~SolveServer() { stop(); }

std::string SolveServer::start() {
    require(!started_, "SolveServer::start: already started");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        return std::string("socket() failed: ") + std::strerror(errno);
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        return "invalid bind address '" + config_.bind_address +
               "' (IPv4 dotted quad expected)";
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        const std::string err =
            std::string("bind() failed: ") + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return err;
    }
    if (::listen(listen_fd_, 64) != 0) {
        const std::string err =
            std::string("listen() failed: ") + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return err;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
        bound_port_ = ntohs(bound.sin_port);
    }

    // Warm the resident pool from disk. A missing file (stat → ENOENT)
    // is the ordinary first-boot cold start; a file that exists but
    // cannot be read or parsed — or one whose existence cannot even be
    // checked (e.g. permission denied) — is surfaced as a startup
    // warning: the warm cache the operator configured is not happening,
    // but the server must come up regardless (the pool only
    // accelerates, it never decides).
    if (!config_.pool_file.empty()) {
        struct stat st{};
        if (::stat(config_.pool_file.c_str(), &st) != 0) {
            if (errno != ENOENT) {
                startup_warning_ = "pool file inaccessible (" +
                                   std::string(std::strerror(errno)) +
                                   ") — starting cold";
            }
        } else {
            const std::string err = pool_->load(config_.pool_file);
            if (!err.empty()) {
                startup_warning_ =
                    "pool file rejected (" + err + ") — starting cold";
            }
        }
    }

    started_at_ = std::chrono::steady_clock::now();
    started_ = true;
    scheduler_ = std::make_unique<exec::Scheduler>(config_.workers);
    permits_ = config_.workers;
    acceptor_ = std::thread([this] { acceptor_loop(); });
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
    if (!config_.pool_file.empty() &&
        config_.snapshot_every_seconds > 0) {
        snapshotter_ = std::thread([this] { snapshot_loop(); });
    }
    return "";
}

void SolveServer::wait_until_stop_requested() const {
    while (!stop_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

void SolveServer::stop() {
    if (!started_ || stopped_) return;
    stopped_ = true;
    request_stop();

    // 1. Stop accepting: the acceptor polls stop_requested_ and exits.
    if (acceptor_.joinable()) acceptor_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }

    // 2. Drain: no new admissions; the dispatcher forwards every
    //    already-admitted job to the scheduler and exits when the
    //    closed queue runs dry, and all permits being home again means
    //    every forwarded solve has finished and replied (readers still
    //    running reply shutting-down to any late request — their
    //    connections stay open so in-flight replies can be written).
    queue_.close();
    if (dispatcher_.joinable()) dispatcher_.join();
    {
        std::unique_lock<std::mutex> lock(permit_mutex_);
        permit_cv_.wait(lock,
                        [this] { return permits_ >= config_.workers; });
    }

    // 3. Final snapshot, after the periodic snapshotter has exited so
    //    the last save is the complete drained state.
    if (snapshotter_.joinable()) snapshotter_.join();
    if (!config_.pool_file.empty()) snapshot_pool();

    // 4. Tear down connections: shutdown() wakes readers blocked in
    //    read(), then join and drop the references — each Connection
    //    closes its own fd when the last shared_ptr dies (every solve
    //    task has finished, so clearing conns_ is the last reference).
    {
        const std::lock_guard<std::mutex> lock(conns_mutex_);
        for (ConnEntry& e : conns_) {
            ::shutdown(e.conn->fd, SHUT_RDWR);
        }
        for (ConnEntry& e : conns_) {
            if (e.reader.joinable()) e.reader.join();
        }
        conns_.clear();
    }
}

void SolveServer::acceptor_loop() {
    while (!stop_requested()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;
        }
        // Reap connections whose reader finished (client hung up), so a
        // long-running server does not accumulate dead threads. Only
        // the reader thread is joined and the entry's reference
        // dropped; the fd is NOT closed here — a queued or in-flight
        // SolveJob may still hold the Connection, and closing under it
        // would let the kernel hand the same fd number to a new client,
        // sending the late reply into an unrelated stream. The
        // Connection's destructor closes the fd once the last holder
        // (reaper or worker, whichever is later) lets go.
        std::size_t live = 0;
        {
            const std::lock_guard<std::mutex> lock(conns_mutex_);
            for (std::size_t i = 0; i < conns_.size();) {
                if (conns_[i].conn->reader_done.load()) {
                    if (conns_[i].reader.joinable()) {
                        conns_[i].reader.join();
                    }
                    conns_.erase(conns_.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                } else {
                    ++i;
                }
            }
            live = conns_.size();
        }
        if (ready == 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (live >= config_.max_connections) {
            // Each connection is a live reader thread; beyond the cap a
            // flood would grow threads and memory without bound. The
            // refusal is explicit — one best-effort error frame, then
            // close — so a polite client knows to back off.
            util::Json body = util::Json::object();
            body.set("ok", false);
            body.set("code", "too-many-connections");
            body.set("error",
                     "connection limit reached (" +
                         std::to_string(config_.max_connections) +
                         " live connections); retry later");
            (void)write_frame(fd, body.dump());
            ::close(fd);
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++connections_refused_;
            continue;
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++connections_accepted_;
        }
        const std::lock_guard<std::mutex> lock(conns_mutex_);
        conns_.push_back(ConnEntry{
            conn, std::thread([this, conn] { reader_loop(conn); })});
    }
}

void SolveServer::reader_loop(std::shared_ptr<Connection> conn) {
    FrameDecoder decoder(config_.max_payload_bytes);
    char buf[8192];
    bool closing = false;
    while (!closing) {
        const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;  // EOF or error: the reader is done
        decoder.feed(buf, static_cast<std::size_t>(n));
        std::optional<std::string> payload;
        while ((payload = decoder.next()).has_value()) {
            handle_payload(conn, *payload);
        }
        if (!decoder.error().empty()) {
            // A bogus length prefix desynchronizes the stream: no later
            // frame boundary can be trusted, so this is the one
            // malformed-input case that closes the connection — after
            // an explicit reply saying why (a malformed *payload* in a
            // well-formed frame keeps the connection; see
            // handle_payload).
            reply_error(conn, util::Json(), "bad-frame", decoder.error());
            closing = true;
        }
    }
    conn->reader_done.store(true);
}

void SolveServer::handle_payload(const std::shared_ptr<Connection>& conn,
                                 const std::string& payload) {
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++requests_received_;
    }
    std::string parse_error;
    const std::optional<util::Json> request =
        util::Json::parse(payload, &parse_error);
    if (!request.has_value()) {
        reply_error(conn, util::Json(), "bad-request",
                    "payload is not valid JSON: " + parse_error);
        return;
    }
    util::Json id;  // echoed verbatim in the reply when present
    if (const util::Json* rid = request->find("id")) id = *rid;

    const util::Json* type = request->find("type");
    if (type == nullptr || !type->is_string()) {
        reply_error(conn, id, "bad-request",
                    "request needs a string 'type' field "
                    "(solve | stats | list)");
        return;
    }
    const std::string& t = type->as_string();

    if (t == "stats") {
        util::Json body = util::Json::object();
        body.set("ok", true);
        if (!id.is_null()) body.set("id", id);
        body.set("stats", stats_json());
        reply(conn, body);
        return;
    }
    if (t == "list") {
        util::Json body = util::Json::object();
        body.set("ok", true);
        if (!id.is_null()) body.set("id", id);
        body.set("scenarios", list_json());
        body.set("families", families_json());
        reply(conn, body);
        return;
    }
    if (t != "solve") {
        reply_error(conn, id, "bad-request",
                    "unknown request type '" + t + "'");
        return;
    }

    if (stop_requested()) {
        reply_error(conn, id, "shutting-down",
                    "server is draining; no new solves admitted");
        return;
    }

    std::string error;
    std::optional<engine::Scenario> scenario =
        engine::scenario_from_request(*request, &error);
    if (!scenario.has_value()) {
        const bool unknown = error.rfind("unknown scenario", 0) == 0;
        reply_error(conn, id,
                    unknown ? "unknown-scenario" : "bad-request", error);
        return;
    }

    // The resident pool is the whole point of the server: every solve
    // seeds from and publishes to it. Per-request pool_file would
    // reintroduce exactly the file race this process exists to remove,
    // so it is force-cleared no matter what the registry entry said.
    scenario->options.nogood_pool = pool_;
    scenario->options.pool_file.clear();

    SolveJob job;
    job.scenario = std::move(*scenario);
    job.id = std::move(id);
    job.conn = conn;
    std::size_t timeout_ms = config_.default_timeout_ms;
    if (const util::Json* to = request->find("timeout_ms")) {
        if (!to->is_int() || to->as_int() < 0) {
            reply_error(conn, job.id, "bad-request",
                        "'timeout_ms' must be a non-negative integer");
            return;
        }
        timeout_ms = static_cast<std::size_t>(to->as_int());
    }
    if (timeout_ms > 0) {
        job.has_deadline = true;
        job.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
    }

    if (!queue_.try_push(std::move(job))) {
        // job.conn was moved; reply through the original handle. The
        // explicit backpressure reply is the contract: a client must
        // learn its request was dropped NOW, not time out wondering.
        reply_error(conn, request->find("id") != nullptr
                              ? *request->find("id")
                              : util::Json(),
                    stop_requested() ? "shutting-down" : "queue-full",
                    "admission queue is full (" +
                        std::to_string(queue_.capacity()) +
                        " pending solves); retry later");
        return;
    }
}

void SolveServer::dispatcher_loop() {
    // Acquire the permit BEFORE popping: when all `workers` permits are
    // out, no job is popped-and-parked in the dispatcher's hands — it
    // stays in the bounded queue where admission control can see it,
    // exactly as when N worker threads each held at most one popped
    // job. Scheduler::submit is detached, so the task's own epilogue
    // returns the permit.
    while (true) {
        {
            std::unique_lock<std::mutex> lock(permit_mutex_);
            permit_cv_.wait(lock, [this] { return permits_ > 0; });
            --permits_;
        }
        SolveJob job;
        if (!queue_.pop(job)) {
            // Closed and drained: hand the unused permit back (stop()
            // waits for the full complement) and exit.
            const std::lock_guard<std::mutex> lock(permit_mutex_);
            ++permits_;
            permit_cv_.notify_all();
            return;
        }
        // shared_ptr wrapper: std::function requires a copyable
        // callable and SolveJob holds move-only state.
        auto boxed = std::make_shared<SolveJob>(std::move(job));
        scheduler_->submit([this, boxed] {
            process_job(std::move(*boxed));
            const std::lock_guard<std::mutex> lock(permit_mutex_);
            ++permits_;
            permit_cv_.notify_all();
        });
    }
}

void SolveServer::process_job(SolveJob job) {
    if (config_.test_worker_hook) config_.test_worker_hook();
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++in_flight_;
    }
    const auto now = std::chrono::steady_clock::now();
    if (job.has_deadline && now > job.deadline) {
        // The queue-wait budget ran out before a permit freed up: the
        // kBudgetExhausted shape of an error reply — solve not
        // attempted, answer explicit.
        util::Json body = util::Json::object();
        body.set("ok", false);
        if (!job.id.is_null()) body.set("id", job.id);
        body.set("code", "timeout");
        body.set("verdict",
                 engine::to_string(engine::Verdict::kBudgetExhausted));
        body.set("error",
                 "queue-wait deadline exceeded before a worker was "
                 "free; solve not attempted");
        reply(job.conn, body);
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++errors_timeout_;
        --in_flight_;
        return;
    }
    if (job.has_deadline) {
        // Deadline still ahead: hand the remaining time to the engine
        // as a wall-clock budget (EngineOptions::time_budget_ms →
        // CancelToken deadline), so a solve that outlives its client's
        // patience is cut at the next task boundary and reports
        // budget-exhausted instead of being served late. A tighter
        // budget already on the scenario wins.
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                job.deadline - now)
                .count();
        const auto budget =
            static_cast<std::size_t>(std::max<long long>(1, remaining));
        std::size_t& scenario_budget = job.scenario.options.time_budget_ms;
        if (scenario_budget == 0 || budget < scenario_budget) {
            scenario_budget = budget;
        }
    }

    util::Json body = util::Json::object();
    try {
        const engine::SolveReport report = engine_.solve(job.scenario);
        body.set("ok", true);
        if (!job.id.is_null()) body.set("id", job.id);
        body.set("report", engine::report_to_json(report));
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++solves_completed_;
        ++verdict_counts_[static_cast<int>(report.verdict)];
        cumulative_counters_.add(report.counters);
    } catch (const std::exception& e) {
        body = util::Json::object();
        body.set("ok", false);
        if (!job.id.is_null()) body.set("id", job.id);
        body.set("code", "solve-failed");
        body.set("error", std::string("solve threw: ") + e.what());
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++errors_bad_request_;
    }
    reply(job.conn, body);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    --in_flight_;
}

void SolveServer::snapshot_loop() {
    while (true) {
        // Sleep the period in 100 ms slices so a stop request ends the
        // thread promptly instead of after a full period.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::seconds(config_.snapshot_every_seconds);
        while (std::chrono::steady_clock::now() < deadline) {
            if (stop_requested()) return;
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        if (stop_requested()) return;
        snapshot_pool();
    }
}

void SolveServer::snapshot_pool() {
    const std::string err = pool_->save(config_.pool_file);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    if (err.empty()) {
        ++snapshots_taken_;
        last_snapshot_error_.clear();
    } else {
        last_snapshot_error_ = err;
    }
}

void SolveServer::reply(const std::shared_ptr<Connection>& conn,
                        const util::Json& body) {
    const std::string payload = body.dump();
    const std::lock_guard<std::mutex> lock(conn->write_mutex);
    // A failed write means the client is gone; its reader will see the
    // hangup and retire the connection — nothing to do here.
    (void)write_frame(conn->fd, payload);
}

void SolveServer::reply_error(const std::shared_ptr<Connection>& conn,
                              const util::Json& id, const char* code,
                              const std::string& message) {
    util::Json body = util::Json::object();
    body.set("ok", false);
    if (!id.is_null()) body.set("id", id);
    body.set("code", code);
    body.set("error", message);
    reply(conn, body);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    if (std::strcmp(code, "queue-full") == 0) {
        ++errors_queue_full_;
    } else if (std::strcmp(code, "unknown-scenario") == 0) {
        ++errors_unknown_scenario_;
    } else if (std::strcmp(code, "shutting-down") == 0) {
        ++errors_shutting_down_;
    } else {
        ++errors_bad_request_;
    }
}

util::Json SolveServer::list_json() const {
    // Sorted names via the registry, each with its description — the
    // served form of `example_engine_cli --list`.
    const engine::ScenarioRegistry& registry =
        engine::ScenarioRegistry::standard();
    std::vector<const engine::ScenarioSpec*> sorted;
    sorted.reserve(registry.specs().size());
    for (const engine::ScenarioSpec& spec : registry.specs()) {
        sorted.push_back(&spec);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const engine::ScenarioSpec* a,
                 const engine::ScenarioSpec* b) { return a->name < b->name; });
    util::Json out = util::Json::array();
    for (const engine::ScenarioSpec* spec : sorted) {
        util::Json entry = util::Json::object();
        entry.set("name", spec->name);
        entry.set("description", spec->description);
        entry.set("heavy", spec->heavy);
        out.push_back(std::move(entry));
    }
    return out;
}

util::Json SolveServer::families_json() const {
    // The structured family schemas: clients learn the whole parameter
    // space (grammar, ranges, model variants), not just the registered
    // points — any in-range canonical name is solvable by this server.
    util::Json out = util::Json::array();
    for (const engine::ScenarioFamily& f :
         engine::ScenarioRegistry::standard().families()) {
        out.push_back(f.schema_json());
    }
    return out;
}

util::Json SolveServer::stats_json() const {
    util::Json out = util::Json::object();
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    out.set("uptime_ms", millis_between(started_at_, now));
    out.set("queue_depth", queue_.depth());
    out.set("queue_capacity", queue_.capacity());
    out.set("in_flight", in_flight_);
    out.set("workers", static_cast<std::size_t>(config_.workers));
    out.set("connections_accepted", connections_accepted_);
    out.set("connections_refused", connections_refused_);
    out.set("requests_received", requests_received_);
    out.set("solves_completed", solves_completed_);

    util::Json verdicts = util::Json::object();
    verdicts.set(engine::to_string(engine::Verdict::kSolvable),
                 verdict_counts_[static_cast<int>(
                     engine::Verdict::kSolvable)]);
    verdicts.set(engine::to_string(engine::Verdict::kUnsolvableAtDepth),
                 verdict_counts_[static_cast<int>(
                     engine::Verdict::kUnsolvableAtDepth)]);
    verdicts.set(engine::to_string(engine::Verdict::kBudgetExhausted),
                 verdict_counts_[static_cast<int>(
                     engine::Verdict::kBudgetExhausted)]);
    verdicts.set(engine::to_string(engine::Verdict::kUnsupported),
                 verdict_counts_[static_cast<int>(
                     engine::Verdict::kUnsupported)]);
    out.set("verdicts", std::move(verdicts));

    util::Json errors = util::Json::object();
    errors.set("bad_request", errors_bad_request_);
    errors.set("unknown_scenario", errors_unknown_scenario_);
    errors.set("queue_full", errors_queue_full_);
    errors.set("timeout", errors_timeout_);
    errors.set("shutting_down", errors_shutting_down_);
    out.set("errors", std::move(errors));

    util::Json pool = util::Json::object();
    pool.set("nogoods", pool_->published());
    pool.set("rejected_duplicate", pool_->rejected_as_duplicate());
    pool.set("rejected_at_capacity", pool_->rejected_at_capacity());
    pool.set("snapshots_taken", snapshots_taken_);
    if (!last_snapshot_error_.empty()) {
        pool.set("last_snapshot_error", last_snapshot_error_);
    }
    out.set("pool", std::move(pool));

    out.set("counters", engine::counters_to_json(cumulative_counters_));

    // Scheduler observability (exec/exec_stats.h): how the solve tasks
    // actually ran — steals signal imbalance, the histogram shows task
    // granularity. Null only before start() / after a failed start.
    if (scheduler_ != nullptr) {
        const exec::ExecStats es = scheduler_->stats();
        util::Json exec_stats = util::Json::object();
        exec_stats.set("workers", es.workers);
        exec_stats.set("tasks_executed", es.tasks_executed);
        exec_stats.set("tasks_stolen", es.tasks_stolen);
        exec_stats.set("tasks_overflow", es.tasks_overflow);
        exec_stats.set("tasks_helped", es.tasks_helped);
        exec_stats.set("queue_depth", es.queue_depth);
        util::Json hist = util::Json::array();
        for (std::size_t count : es.latency_log2_us) hist.push_back(count);
        exec_stats.set("latency_log2_us", std::move(hist));
        out.set("exec", std::move(exec_stats));
    }
    return out;
}

// ------------------------------------------------------------ signal wiring

namespace {

std::atomic<SolveServer*> g_signal_server{nullptr};
struct sigaction g_prev_sigint;
struct sigaction g_prev_sigterm;

extern "C" void gact_service_stop_handler(int) {
    // One relaxed atomic load + one relaxed atomic store: everything
    // here is async-signal-safe. The drain itself runs on the main
    // thread once wait_until_stop_requested() observes the flag.
    SolveServer* server = g_signal_server.load(std::memory_order_relaxed);
    if (server != nullptr) server->request_stop();
}

}  // namespace

void install_stop_signal_handlers(SolveServer& server) {
    g_signal_server.store(&server, std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = gact_service_stop_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, &g_prev_sigint);
    ::sigaction(SIGTERM, &sa, &g_prev_sigterm);
}

void uninstall_stop_signal_handlers() {
    ::sigaction(SIGINT, &g_prev_sigint, nullptr);
    ::sigaction(SIGTERM, &g_prev_sigterm, nullptr);
    g_signal_server.store(nullptr, std::memory_order_relaxed);
}

}  // namespace gact::service
