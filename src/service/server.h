// gact::service — the long-running networked solve server.
//
// The engine solved any registry scenario fast and learned durably, but
// every solve still cost a full process launch, and the pool file's
// load-then-save dance is racy across concurrent CLI invocations. This
// server turns solvability queries into a served workload: a plain
// POSIX TCP listener speaking length-prefixed JSON frames
// (service/framing.h), a bounded admission queue
// (service/request_queue.h) drained by a permit-gated dispatcher onto
// the server's resident exec::Scheduler (src/exec/ — the same
// substrate Engine::solve_batch shards on), and
// ONE resident core::SharedNogoodPool wired into every solve. Pool-file
// concurrency is thereby fixed by construction: a single process owns
// the pool, every request warms it for the next, and persistence is a
// periodic snapshot (merge-on-save, atomic rename) plus a final
// snapshot on graceful shutdown instead of N processes racing one file.
//
// Threading model (one line each; the full picture is in
// docs/ARCHITECTURE.md):
//  * acceptor thread — polls the listen socket, spawns one reader
//    thread per connection, reaps finished ones;
//  * connection reader threads — decode frames, answer stats/list
//    inline, admit solve jobs to the queue (or reply queue-full /
//    shutting-down immediately: backpressure is explicit, never a
//    silent stall);
//  * dispatcher thread + exec::Scheduler — the dispatcher acquires one
//    of `workers` permits, pops a job, and submits it as a task on the
//    server's resident scheduler (src/exec/); each task runs
//    Engine::solve against the resident pool and writes the report
//    frame back under the connection's write mutex (replies carry the
//    request's echoed "id", so clients may pipeline). The permit is
//    returned when the task finishes, so at most `workers` solves are
//    ever in flight and the dispatcher never holds a popped job while
//    all workers are busy — the same backpressure shape as the old
//    thread-per-worker pool;
//  * snapshot thread — saves the pool to disk every
//    `snapshot_every_seconds` (serialization happens under the pool
//    lock, disk I/O does not — solves never block on a snapshot).
//
// Robustness is part of the contract: a malformed payload gets an
// error reply and the connection lives on; an unframeable byte stream
// (bogus length prefix) gets an error reply and a close, because no
// later frame boundary can be trusted; a request whose queue-wait
// deadline passed is answered with a budget-exhausted-style "timeout"
// error instead of being solved late; and SIGINT/SIGTERM
// (install_stop_signal_handlers + wait_until_stop_requested + stop())
// drains gracefully: stop accepting, finish every admitted solve,
// snapshot the pool, exit 0.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/chromatic_csp.h"
#include "core/nogood_store.h"
#include "engine/engine.h"
#include "exec/scheduler.h"
#include "service/framing.h"
#include "service/request_queue.h"
#include "util/json.h"

namespace gact::service {

struct ServiceConfig {
    /// Bind address. The default serves loopback only; a deployment
    /// that means to face a network opts in with "0.0.0.0".
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 binds an ephemeral port (read it back with port() —
    /// what the tests and the load bench do).
    std::uint16_t port = 0;
    /// Concurrent solves: the size of the server's exec::Scheduler pool
    /// and the number of dispatch permits bounding in-flight jobs.
    unsigned workers = 2;
    /// Admission-queue bound: requests beyond it get queue-full replies.
    std::size_t queue_depth = 16;
    /// Live-connection bound (one reader thread each): accepts beyond
    /// it get a too-many-connections reply and an immediate close, so a
    /// connection flood cannot grow threads without bound.
    std::size_t max_connections = 256;
    /// When non-empty: load at startup (missing file = cold start,
    /// damaged file = warning), snapshot periodically and on stop().
    std::string pool_file;
    /// Snapshot period; 0 = only the final stop() snapshot.
    unsigned snapshot_every_seconds = 0;
    /// Default queue-wait deadline per request, ms; 0 = none. A request
    /// may override with its own "timeout_ms" field.
    std::size_t default_timeout_ms = 0;
    /// Frame payload cap (see service/framing.h).
    std::size_t max_payload_bytes = kDefaultMaxPayload;
    /// Test-only: run inside each solve task before solving — lets
    /// tests hold all `workers` permits to fill the queue
    /// deterministically. Null in production.
    std::function<void()> test_worker_hook;
};

/// One client connection: the fd plus the write lock that keeps worker
/// replies and inline replies from interleaving on the stream. The
/// Connection OWNS its fd — the destructor closes it — so the fd number
/// stays valid (and cannot be reused by a newly accepted client) until
/// the last reference drops, even when a queued SolveJob outlives the
/// reader. A late reply to a hung-up client then fails with EPIPE
/// instead of writing into an unrelated stream.
struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> reader_done{false};
    Connection() = default;
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;
    ~Connection();
};

class SolveServer {
public:
    explicit SolveServer(ServiceConfig config);
    ~SolveServer();

    SolveServer(const SolveServer&) = delete;
    SolveServer& operator=(const SolveServer&) = delete;

    /// Bind, listen, load the pool file (when configured), spin up the
    /// acceptor/worker/snapshot threads. Returns "" on success, else a
    /// diagnostic (the server is then inert and stop() is a no-op).
    std::string start();

    /// The bound port (after a successful start(); ephemeral binds
    /// report the kernel-assigned port).
    std::uint16_t port() const noexcept { return bound_port_; }

    /// Non-fatal startup condition worth printing (e.g. a rejected pool
    /// file that downgraded to a cold start). Empty when clean.
    const std::string& startup_warning() const noexcept {
        return startup_warning_;
    }

    /// Flag a stop. Async-signal-safe (one relaxed atomic store): this
    /// is exactly what the SIGINT/SIGTERM handlers call. The actual
    /// drain happens in stop().
    void request_stop() noexcept {
        stop_requested_.store(true, std::memory_order_relaxed);
    }
    bool stop_requested() const noexcept {
        return stop_requested_.load(std::memory_order_relaxed);
    }
    /// Block until request_stop() is called (from any thread or a
    /// signal handler). The serve binary's main loop.
    void wait_until_stop_requested() const;

    /// Graceful drain, idempotent: stop accepting connections and
    /// admitting requests, finish every admitted solve, take the final
    /// pool snapshot, then close connections and join every thread.
    void stop();

    /// The resident pool (for tests and the stats request).
    const std::shared_ptr<core::SharedNogoodPool>& pool() const noexcept {
        return pool_;
    }

    /// The stats-request body: uptime, queue depth/capacity, in-flight
    /// and served counts, per-verdict tallies, error tallies by code,
    /// pool size, and the cumulative SearchCounters across all solves.
    util::Json stats_json() const;

private:
    struct SolveJob {
        engine::Scenario scenario;
        util::Json id;  // echoed verbatim; null when absent
        std::shared_ptr<Connection> conn;
        std::chrono::steady_clock::time_point deadline{};
        bool has_deadline = false;
    };

    void acceptor_loop();
    void reader_loop(std::shared_ptr<Connection> conn);
    /// Permit-gated pump: acquire one of `workers` permits, pop a job,
    /// submit it to the scheduler; the task returns the permit when the
    /// solve (and its reply) finish.
    void dispatcher_loop();
    /// One solve job end to end: deadline check, Engine::solve, reply.
    /// Runs as a scheduler task; never throws.
    void process_job(SolveJob job);
    void snapshot_loop();
    /// Parse + dispatch one frame payload from `conn`; never throws.
    void handle_payload(const std::shared_ptr<Connection>& conn,
                        const std::string& payload);
    void reply(const std::shared_ptr<Connection>& conn,
               const util::Json& body);
    void reply_error(const std::shared_ptr<Connection>& conn,
                     const util::Json& id, const char* code,
                     const std::string& message);
    /// Save the pool to config_.pool_file, recording outcome in stats.
    void snapshot_pool();
    util::Json list_json() const;
    /// The scenario-family schemas (grammar, ranges, model variants)
    /// served alongside the registered names in the `list` reply.
    util::Json families_json() const;

    ServiceConfig config_;
    std::shared_ptr<core::SharedNogoodPool> pool_;
    engine::Engine engine_;

    int listen_fd_ = -1;
    std::uint16_t bound_port_ = 0;
    std::string startup_warning_;
    bool started_ = false;
    bool stopped_ = false;

    std::atomic<bool> stop_requested_{false};
    RequestQueue<SolveJob> queue_;

    /// The server's resident scheduler, sized config_.workers. Created
    /// in start() before any reader thread exists and destroyed only in
    /// ~SolveServer (after stop() joined every thread that could read
    /// it), so unsynchronized reads from stats_json() are safe.
    std::unique_ptr<exec::Scheduler> scheduler_;
    /// In-flight permits: the dispatcher blocks until one is free, so
    /// at most config_.workers jobs are popped-but-unfinished at once.
    std::mutex permit_mutex_;
    std::condition_variable permit_cv_;
    unsigned permits_ = 0;

    std::thread acceptor_;
    std::thread dispatcher_;
    std::thread snapshotter_;

    /// Live connections + their reader threads, under one mutex; the
    /// acceptor reaps entries whose reader finished.
    struct ConnEntry {
        std::shared_ptr<Connection> conn;
        std::thread reader;
    };
    mutable std::mutex conns_mutex_;
    std::vector<ConnEntry> conns_;

    /// Cumulative stats, one mutex (touched per request, not per
    /// backtrack — never hot).
    mutable std::mutex stats_mutex_;
    std::chrono::steady_clock::time_point started_at_{};
    std::size_t connections_accepted_ = 0;
    std::size_t connections_refused_ = 0;
    std::size_t requests_received_ = 0;
    std::size_t solves_completed_ = 0;
    std::size_t in_flight_ = 0;
    std::size_t errors_bad_request_ = 0;
    std::size_t errors_unknown_scenario_ = 0;
    std::size_t errors_queue_full_ = 0;
    std::size_t errors_timeout_ = 0;
    std::size_t errors_shutting_down_ = 0;
    std::size_t verdict_counts_[4] = {0, 0, 0, 0};  // by engine::Verdict
    core::SearchCounters cumulative_counters_;
    std::size_t snapshots_taken_ = 0;
    std::string last_snapshot_error_;
};

/// Route SIGINT and SIGTERM to server.request_stop(). The handler is a
/// relaxed atomic store — async-signal-safe. One server at a time;
/// uninstall restores the previous dispositions (so tests can raise()
/// without poisoning the process).
void install_stop_signal_handlers(SolveServer& server);
void uninstall_stop_signal_handlers();

}  // namespace gact::service
