#include "sm/iis_executor.h"

#include <map>
#include <memory>
#include <set>

namespace gact::sm {

IisExecution::IisExecution(
    std::uint32_t num_processes, ProcessSet participants,
    iis::ViewArena& arena,
    const std::vector<std::optional<topo::VertexId>>* inputs)
    : num_processes_(num_processes), arena_(&arena), procs_(num_processes) {
    require(ProcessSet::full(num_processes).contains_all(participants),
            "IisExecution: participants out of range");
    for (ProcessId p : participants.members()) {
        std::optional<topo::VertexId> input;
        if (inputs != nullptr) {
            require(p < inputs->size(), "IisExecution: inputs too short");
            input = (*inputs)[p];
        }
        procs_[p].participating = true;
        procs_[p].view = arena.make_initial(p, input);
    }
}

IisExecution::Level& IisExecution::level_boards(std::size_t m) {
    while (levels_.size() <= m) levels_.emplace_back(num_processes_);
    return levels_[m];
}

void IisExecution::step(ProcessId p) {
    require(p < num_processes_, "IisExecution: unknown process");
    PerProcess& pp = procs_[p];
    if (!pp.participating) return;
    Level& boards = level_boards(pp.level);
    if (!pp.machine.has_value()) {
        // Enter the IS instance of the current level with the current view
        // as the full-information value.
        pp.machine.emplace(p, static_cast<Word>(pp.view), num_processes_);
        boards.entered = boards.entered.with(p);
    }
    pp.machine->step(boards.levels, boards.values);
    if (pp.machine->done()) {
        // Collect the seen views and form the next view.
        std::vector<iis::ViewId> seen;
        const auto& values = pp.machine->result_values();
        for (ProcessId q : pp.machine->result_set().members()) {
            ensure(values[q].has_value(),
                   "IisExecution: result set member without value");
            seen.push_back(static_cast<iis::ViewId>(*values[q]));
        }
        boards.finished = boards.finished.with(p);
        boards.result_sets[p] = pp.machine->result_set();
        pp.view = arena_->make_view(p, std::move(seen));
        pp.machine.reset();
        ++pp.level;
    }
}

void IisExecution::run_levels(const std::vector<ProcessId>& schedule,
                              std::size_t levels) {
    for (ProcessId p : schedule) {
        step(p);
        bool all_done = true;
        for (ProcessId q = 0; q < num_processes_; ++q) {
            if (procs_[q].participating && procs_[q].level < levels) {
                all_done = false;
            }
        }
        if (all_done) return;
    }
    for (ProcessId q = 0; q < num_processes_; ++q) {
        require(!procs_[q].participating || procs_[q].level >= levels,
                "IisExecution: schedule too short for process " +
                    std::to_string(q));
    }
}

std::size_t IisExecution::run_partition_round(const iis::OrderedPartition& round) {
    require(!round.empty(), "run_partition_round: empty round");
    require(ProcessSet::full(num_processes_).contains_all(round.support()),
            "run_partition_round: support out of range");
    const std::size_t m = level_of(round.support().min());
    for (ProcessId p : round.support().members()) {
        require(procs_[p].participating,
                "run_partition_round: process " + std::to_string(p) +
                    " is not a participant");
        require(procs_[p].level == m,
                "run_partition_round: process " + std::to_string(p) +
                    " is at level " + std::to_string(procs_[p].level) +
                    ", round needs level " + std::to_string(m));
    }
    for (const ProcessSet& block : round.blocks()) {
        // Lockstep descent: all writes of the block, then all snapshots,
        // until the whole block returns (they terminate together, at the
        // floor equal to the cumulative support so far).
        while (true) {
            bool any_pending = false;
            for (ProcessId p : block.members()) {
                if (procs_[p].level == m) {
                    any_pending = true;
                    step(p);  // write
                }
            }
            if (!any_pending) break;
            for (ProcessId p : block.members()) {
                if (procs_[p].level == m) step(p);  // snapshot
            }
        }
    }
    ensure(partition_of_level(m) == round,
           "run_partition_round: SM substrate realized " +
               partition_of_level(m).to_string() + " instead of " +
               round.to_string());
    return m;
}

std::size_t IisExecution::level_of(ProcessId p) const {
    require(p < num_processes_, "IisExecution: unknown process");
    return procs_[p].level;
}

iis::ViewId IisExecution::view_of(ProcessId p) const {
    require(p < num_processes_ && procs_[p].participating,
            "IisExecution: not a participant");
    return procs_[p].view;
}

iis::OrderedPartition IisExecution::partition_of_level(std::size_t m) const {
    require(m < levels_.size(), "IisExecution: level not started");
    const Level& boards = levels_[m];
    require(boards.entered == boards.finished,
            "IisExecution: level still in progress");
    require(!boards.finished.empty(), "IisExecution: empty level");
    std::map<std::uint32_t, ProcessSet> by_size;
    for (ProcessId p : boards.finished.members()) {
        by_size[boards.result_sets[p].size()] =
            by_size[boards.result_sets[p].size()].with(p);
    }
    std::vector<ProcessSet> blocks;
    for (const auto& [size, block] : by_size) blocks.push_back(block);
    return iis::OrderedPartition(std::move(blocks));
}

std::size_t IisExecution::completed_levels() const {
    std::size_t m = 0;
    while (m < levels_.size() && !levels_[m].finished.empty() &&
           levels_[m].entered == levels_[m].finished) {
        ++m;
    }
    return m;
}

std::vector<iis::OrderedPartition> IisExecution::extract_prefix() const {
    std::vector<iis::OrderedPartition> out;
    for (std::size_t m = 0; m < completed_levels(); ++m) {
        out.push_back(partition_of_level(m));
    }
    return out;
}

namespace {

std::string encode_execution(const IisExecution& exec,
                             ProcessSet participants) {
    std::string key;
    for (ProcessId p : participants.members()) {
        key += std::to_string(exec.level_of(p)) + ":" +
               std::to_string(exec.view_of(p)) + ";";
    }
    key += "|" + exec.encode_boards();
    return key;
}

}  // namespace

std::string IisExecution::encode_boards() const {
    std::string key;
    for (const Level& boards : levels_) {
        for (ProcessId p = 0; p < num_processes_; ++p) {
            const auto lv = boards.levels.read(p);
            key += lv ? std::to_string(*lv) : "-";
            key += ",";
        }
        key += "/";
    }
    for (const PerProcess& pp : procs_) {
        if (pp.machine.has_value()) {
            key += pp.machine->pending_write() ? "w" : "s";
            key += std::to_string(pp.machine->current_level());
        } else {
            key += "n";
        }
        key += ";";
    }
    return key;
}

std::vector<std::vector<iis::OrderedPartition>> enumerate_iis_prefixes(
    std::uint32_t num_processes, std::size_t levels) {
    require(num_processes <= 3 && levels <= 2,
            "enumerate_iis_prefixes: state space limited to 3 processes, "
            "2 levels");
    const ProcessSet participants = ProcessSet::full(num_processes);
    std::vector<std::vector<iis::OrderedPartition>> out;
    std::set<std::string> seen_states;
    std::set<std::string> seen_prefixes;

    // The arena is shared by all branches: interning is global, so view
    // ids are stable across copies of the execution.
    auto arena = std::make_shared<iis::ViewArena>();
    std::vector<IisExecution> stack;
    stack.emplace_back(num_processes, participants, *arena);
    while (!stack.empty()) {
        IisExecution exec = std::move(stack.back());
        stack.pop_back();
        if (!seen_states
                 .insert(encode_execution(exec, participants))
                 .second) {
            continue;
        }
        bool all_done = true;
        for (ProcessId p : participants.members()) {
            if (exec.level_of(p) < levels) {
                all_done = false;
                IisExecution next = exec;
                next.step(p);
                stack.push_back(std::move(next));
            }
        }
        if (all_done) {
            const auto prefix = exec.extract_prefix();
            std::string key;
            for (const auto& part : prefix) key += part.to_string();
            if (seen_prefixes.insert(key).second) out.push_back(prefix);
        }
    }
    return out;
}

std::vector<iis::OrderedPartition> run_iis_round_robin(
    std::uint32_t num_processes, ProcessSet participants, std::size_t depth,
    iis::ViewArena& arena) {
    IisExecution exec(num_processes, participants, arena);
    std::vector<ProcessId> schedule;
    const std::size_t steps_per_level = 2 * (num_processes + 2);
    for (std::size_t i = 0; i < depth * steps_per_level; ++i) {
        for (ProcessId p : participants.members()) schedule.push_back(p);
    }
    exec.run_levels(schedule, depth);
    return exec.extract_prefix();
}

}  // namespace gact::sm
