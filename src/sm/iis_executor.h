// IIS on top of shared memory: chained one-shot immediate snapshots.
//
// Operationally (paper, Section 2.1): every process marches through
// IS_1, IS_2, ..., entering IS_{m+1} with its output from IS_m. Here each
// IS_m is a Borowsky-Gafni instance over snapshot memory, so an IIS run is
// literally executed on the SM substrate; full-information values are
// interned views (iis::ViewArena), which lets tests check that the
// SM execution produces exactly the views the abstract Run semantics
// prescribes — the SM -> IIS simulation direction, made executable.
#pragma once

#include <memory>

#include "iis/run.h"
#include "sm/immediate_snapshot.h"

namespace gact::sm {

/// A multi-level IIS execution driven one atomic step at a time.
class IisExecution {
public:
    /// Participants start with their depth-0 views (optionally carrying
    /// input vertices, cf. Section 4.3).
    IisExecution(std::uint32_t num_processes, ProcessSet participants,
                 iis::ViewArena& arena,
                 const std::vector<std::optional<topo::VertexId>>* inputs =
                     nullptr);

    /// One atomic step of process p (skipped if p is not a participant).
    void step(ProcessId p);

    /// Run `schedule` to completion of level `levels` for all participants
    /// (throws if the schedule is too short).
    void run_levels(const std::vector<ProcessId>& schedule,
                    std::size_t levels);

    /// Deterministic scheduling hook (runtime layer): drive the next IS
    /// level so that it realizes exactly the ordered partition `round`.
    /// Block j's processes run in write/snapshot lockstep after blocks
    /// 1..j-1 finished, which makes them descend together and return
    /// precisely the union of blocks 1..j — the BG schedule realizing
    /// the partition. Every process in round's support must be a
    /// participant standing at the same level (true whenever rounds are
    /// driven in sequence with weakly decreasing supports). The realized
    /// partition is re-read from the boards and checked against `round`,
    /// so a substrate bug surfaces here, not in the caller's outputs.
    /// Returns the level index that was driven.
    std::size_t run_partition_round(const iis::OrderedPartition& round);

    /// The IS level process p is currently executing (0-based; equals the
    /// number of IS instances p has completed).
    std::size_t level_of(ProcessId p) const;

    /// The current view of p: its output of the last completed IS.
    iis::ViewId view_of(ProcessId p) const;

    /// The ordered partition realized by level m. Requires every process
    /// that entered level m to have finished it.
    iis::OrderedPartition partition_of_level(std::size_t m) const;

    /// Number of levels at least one process has completed.
    std::size_t completed_levels() const;

    /// The IIS run prefix realized by the completed levels.
    std::vector<iis::OrderedPartition> extract_prefix() const;

    /// Opaque encoding of the shared-memory boards and machine phases,
    /// used by the exhaustive state-space search.
    std::string encode_boards() const;

private:
    struct PerProcess {
        std::optional<IsProcess> machine;  // current IS instance
        std::size_t level = 0;
        iis::ViewId view = 0;
        bool participating = false;
    };

    struct Level {
        SnapshotMemory levels;
        SnapshotMemory values;
        ProcessSet entered;
        ProcessSet finished;
        std::vector<ProcessSet> result_sets;

        explicit Level(std::uint32_t n)
            : levels(n), values(n), result_sets(n) {}
    };

    Level& level_boards(std::size_t m);

    std::uint32_t num_processes_;
    iis::ViewArena* arena_;
    std::vector<PerProcess> procs_;
    std::vector<Level> levels_;
};

/// Convenience: execute `depth` IIS levels under a round-robin schedule
/// restricted to `participants` and return the realized run prefix.
std::vector<iis::OrderedPartition> run_iis_round_robin(
    std::uint32_t num_processes, ProcessSet participants, std::size_t depth,
    iis::ViewArena& arena);

/// All reachable `levels`-round IIS prefixes over every SM schedule
/// (state-space search with deduplication, like enumerate_is_outcomes but
/// across chained instances). The result is deduplicated by the realized
/// partition sequence. Small process counts only.
std::vector<std::vector<iis::OrderedPartition>> enumerate_iis_prefixes(
    std::uint32_t num_processes, std::size_t levels);

}  // namespace gact::sm
