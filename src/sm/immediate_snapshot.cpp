#include "sm/immediate_snapshot.h"

#include <map>
#include <set>
#include <string>

namespace gact::sm {

IsProcess::IsProcess(ProcessId id, Word value, std::uint32_t num_processes)
    : id_(id),
      value_(value),
      num_processes_(num_processes),
      level_(num_processes + 2) {
    require(id < num_processes, "IsProcess: id out of range");
}

void IsProcess::step(SnapshotMemory& levels, SnapshotMemory& values) {
    require(!done_, "IsProcess: stepping a finished process");
    if (about_to_write_) {
        --level_;
        ensure(level_ >= 1, "IsProcess: descended below floor 1");
        values.update(id_, value_);
        levels.update(id_, level_);
        about_to_write_ = false;
        return;
    }
    // Snapshot step.
    const auto level_board = levels.snapshot();
    const auto value_board = values.snapshot();
    ProcessSet at_or_below;
    for (ProcessId q = 0; q < num_processes_; ++q) {
        if (level_board[q].has_value() && *level_board[q] <= level_) {
            at_or_below = at_or_below.with(q);
        }
    }
    if (at_or_below.size() >= level_) {
        result_.assign(num_processes_, std::nullopt);
        for (ProcessId q : at_or_below.members()) {
            result_[q] = value_board[q];
        }
        result_set_ = at_or_below;
        done_ = true;
    } else {
        about_to_write_ = true;  // descend another floor
    }
}

ProcessSet IsProcess::result_set() const {
    require(done_, "IsProcess: no result yet");
    return result_set_;
}

const std::vector<std::optional<Word>>& IsProcess::result_values() const {
    require(done_, "IsProcess: no result yet");
    return result_;
}

IsOutcome run_immediate_snapshot(std::uint32_t num_processes,
                                 const std::vector<std::optional<Word>>& values,
                                 const std::vector<ProcessId>& schedule) {
    require(values.size() == num_processes,
            "run_immediate_snapshot: one value slot per process");
    SnapshotMemory level_board(num_processes);
    SnapshotMemory value_board(num_processes);
    std::vector<std::optional<IsProcess>> procs(num_processes);
    for (ProcessId p : schedule) {
        require(p < num_processes, "run_immediate_snapshot: bad schedule");
        if (!procs[p].has_value()) {
            require(values[p].has_value(),
                    "run_immediate_snapshot: scheduled process has no input");
            procs[p].emplace(p, *values[p], num_processes);
        }
        if (!procs[p]->done()) procs[p]->step(level_board, value_board);
    }
    IsOutcome out;
    out.result_sets.assign(num_processes, ProcessSet());
    out.values.assign(num_processes, {});
    for (ProcessId p = 0; p < num_processes; ++p) {
        if (procs[p].has_value()) {
            require(procs[p]->done(),
                    "run_immediate_snapshot: schedule too short for p" +
                        std::to_string(p));
            out.result_sets[p] = procs[p]->result_set();
            out.values[p] = procs[p]->result_values();
            out.finished = out.finished.with(p);
        }
    }
    return out;
}

std::string check_is_properties(const IsOutcome& outcome) {
    const auto& sets = outcome.result_sets;
    for (ProcessId p : outcome.finished.members()) {
        if (!sets[p].contains(p)) {
            return "self-inclusion fails for p" + std::to_string(p);
        }
    }
    for (ProcessId p : outcome.finished.members()) {
        for (ProcessId q : outcome.finished.members()) {
            if (!sets[p].contains_all(sets[q]) &&
                !sets[q].contains_all(sets[p])) {
                return "containment fails for p" + std::to_string(p) + ", p" +
                       std::to_string(q);
            }
            if (sets[p].contains(q) && !sets[p].contains_all(sets[q])) {
                return "immediacy fails: p" + std::to_string(q) + " in view of p" +
                       std::to_string(p);
            }
        }
    }
    return "";
}

iis::OrderedPartition outcome_partition(const IsOutcome& outcome) {
    require(!outcome.finished.empty(), "outcome_partition: nobody finished");
    require(check_is_properties(outcome).empty(),
            "outcome_partition: IS properties violated");
    // Group the finished processes by their result set; order by set size.
    std::map<std::uint32_t, ProcessSet> by_size;
    for (ProcessId p : outcome.finished.members()) {
        by_size[outcome.result_sets[p].size()] =
            by_size[outcome.result_sets[p].size()].with(p);
    }
    std::vector<ProcessSet> blocks;
    for (const auto& [size, block] : by_size) blocks.push_back(block);
    return iis::OrderedPartition(std::move(blocks));
}

namespace {

/// Global state of an in-progress one-shot IS execution, encodable for
/// state-space deduplication.
struct SearchState {
    std::vector<std::optional<IsProcess>> procs;
    SnapshotMemory levels;
    SnapshotMemory values;

    std::string encode(std::uint32_t n) const {
        std::string key;
        for (ProcessId p = 0; p < n; ++p) {
            const auto lv = levels.read(p);
            key += lv ? std::to_string(*lv) : "-";
            if (!procs[p].has_value()) {
                key += "n";
            } else if (procs[p]->done()) {
                key += "D" + procs[p]->result_set().to_string();
            } else {
                // The machine's phase and private floor are part of the
                // global state; omitting them merges distinct states.
                key += procs[p]->pending_write() ? "w" : "s";
                key += std::to_string(procs[p]->current_level());
            }
            key += ";";
        }
        return key;
    }
};

}  // namespace

std::vector<IsOutcome> enumerate_is_outcomes(
    std::uint32_t num_processes, const std::vector<std::optional<Word>>& values,
    ProcessSet participants) {
    require(num_processes <= 4,
            "enumerate_is_outcomes: state space limited to <= 4 processes");
    std::vector<IsOutcome> outcomes;
    std::set<std::string> seen_states;
    std::set<std::string> seen_outcomes;

    SearchState initial{std::vector<std::optional<IsProcess>>(num_processes),
                        SnapshotMemory(num_processes),
                        SnapshotMemory(num_processes)};
    for (ProcessId p : participants.members()) {
        require(values[p].has_value(),
                "enumerate_is_outcomes: participant has no input");
        initial.procs[p].emplace(p, *values[p], num_processes);
    }

    std::vector<SearchState> stack{initial};
    while (!stack.empty()) {
        SearchState state = std::move(stack.back());
        stack.pop_back();
        if (!seen_states.insert(state.encode(num_processes)).second) continue;

        bool all_done = true;
        for (ProcessId p : participants.members()) {
            if (!state.procs[p]->done()) {
                all_done = false;
                SearchState next = state;
                next.procs[p]->step(next.levels, next.values);
                stack.push_back(std::move(next));
            }
        }
        if (all_done) {
            IsOutcome out;
            out.result_sets.assign(num_processes, ProcessSet());
            out.values.assign(num_processes, {});
            std::string key;
            for (ProcessId p : participants.members()) {
                out.result_sets[p] = state.procs[p]->result_set();
                out.values[p] = state.procs[p]->result_values();
                out.finished = out.finished.with(p);
                key += out.result_sets[p].to_string() + ";";
            }
            if (seen_outcomes.insert(key).second) {
                outcomes.push_back(std::move(out));
            }
        }
    }
    return outcomes;
}

}  // namespace gact::sm
