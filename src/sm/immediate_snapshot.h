// The Borowsky-Gafni one-shot immediate snapshot [BG93], as an explicit
// step machine under an adversarial scheduler.
//
// Each process descends "floors": starting at level n+2 it repeatedly
// (a) decrements and writes its level together with its value, then
// (b) takes a snapshot; if at least `level` processes are at or below its
// level, it returns those processes' values.
//
// The returned sets realize one immediate-snapshot task: they satisfy
//  * self-inclusion:  p in S_p,
//  * containment:     S_p ⊆ S_q or S_q ⊆ S_p,
//  * immediacy:       q in S_p implies S_q ⊆ S_p,
// and therefore determine an ordered partition of the participants — a
// simplex of the standard chromatic subdivision Chr s (paper, Sections 2.1
// and 10; [Kozlov 2012], [Linial 2010]).
#pragma once

#include <optional>
#include <vector>

#include "iis/ordered_partition.h"
#include "sm/snapshot_memory.h"

namespace gact::sm {

/// One process's state in the BG immediate-snapshot protocol.
class IsProcess {
public:
    IsProcess(ProcessId id, Word value, std::uint32_t num_processes);

    ProcessId id() const noexcept { return id_; }
    bool done() const noexcept { return done_; }

    /// Current floor (for diagnostics and state-space search).
    std::uint32_t current_level() const noexcept { return level_; }
    /// True when the next step is a write (vs a snapshot).
    bool pending_write() const noexcept { return about_to_write_; }

    /// Execute one atomic step (a write or a snapshot) against `levels`
    /// (the level board) and `values` (the value board).
    void step(SnapshotMemory& levels, SnapshotMemory& values);

    /// The processes whose values p returned. Requires done().
    ProcessSet result_set() const;

    /// The values p returned, indexed by process. Requires done().
    const std::vector<std::optional<Word>>& result_values() const;

private:
    ProcessId id_;
    Word value_;
    std::uint32_t num_processes_;
    std::uint32_t level_;
    bool about_to_write_ = true;
    bool done_ = false;
    std::vector<std::optional<Word>> result_;
    ProcessSet result_set_;
};

/// A complete one-shot IS execution under a given schedule.
struct IsOutcome {
    /// result_sets[p]: the set returned by p (empty if p never ran).
    std::vector<ProcessSet> result_sets;
    /// values[p][q]: the value of q that p returned (if any).
    std::vector<std::vector<std::optional<Word>>> values;
    /// Processes that completed the protocol.
    ProcessSet finished;
};

/// Run the one-shot IS with inputs `values` (participants only) under a
/// schedule: at each schedule entry the named process takes one step;
/// entries for finished processes are skipped. Afterwards every scheduled
/// process must have finished (pass enough steps: 2*(n+2) per process).
IsOutcome run_immediate_snapshot(std::uint32_t num_processes,
                                 const std::vector<std::optional<Word>>& values,
                                 const std::vector<ProcessId>& schedule);

/// Check the three IS properties on an outcome; returns a diagnostic
/// string, or "" if all hold.
std::string check_is_properties(const IsOutcome& outcome);

/// The ordered partition determined by the outcome: processes grouped by
/// their returned set, ordered by set size. Requires properties to hold
/// and at least one finished process.
iis::OrderedPartition outcome_partition(const IsOutcome& outcome);

/// All reachable outcomes of the one-shot IS over every schedule, for
/// small process counts (state-space search with deduplication).
std::vector<IsOutcome> enumerate_is_outcomes(
    std::uint32_t num_processes, const std::vector<std::optional<Word>>& values,
    ProcessSet participants);

}  // namespace gact::sm
