#include "sm/registers.h"

namespace gact::sm {

void RegisterFile::write(std::uint32_t r, Word value) {
    require(r < values_.size(), "RegisterFile: register out of range");
    ++clock_;
    values_[r] = value;
    log_[r].push_back(WriteEvent{clock_, value});
}

std::optional<Word> RegisterFile::read(std::uint32_t r) {
    require(r < values_.size(), "RegisterFile: register out of range");
    ++clock_;
    return values_[r];
}

std::optional<Word> RegisterFile::value_at(std::uint32_t r,
                                           std::uint64_t time) const {
    require(r < values_.size(), "RegisterFile: register out of range");
    std::optional<Word> value;
    for (const WriteEvent& e : log_[r]) {
        if (e.time <= time) {
            value = e.value;
        } else {
            break;
        }
    }
    return value;
}

ScanResult double_collect_scan(RegisterFile& registers,
                               std::size_t max_collects) {
    ScanResult result;
    result.started_at = registers.now();
    std::optional<std::vector<std::optional<Word>>> previous;
    for (std::size_t attempt = 0; attempt < max_collects; ++attempt) {
        std::vector<std::optional<Word>> collect(registers.size());
        for (std::uint32_t r = 0; r < registers.size(); ++r) {
            collect[r] = registers.read(r);
        }
        ++result.collects;
        if (previous.has_value() && *previous == collect) {
            result.snapshot = std::move(collect);
            result.finished_at = registers.now();
            return result;
        }
        previous = std::move(collect);
    }
    throw precondition_error(
        "double_collect_scan: no clean double collect within the budget");
}

bool snapshot_is_atomic(const RegisterFile& registers,
                        const ScanResult& scan) {
    for (std::uint64_t t = scan.started_at; t <= scan.finished_at; ++t) {
        bool all_match = true;
        for (std::uint32_t r = 0; r < registers.size(); ++r) {
            if (!(registers.value_at(r, t) == scan.snapshot[r])) {
                all_match = false;
                break;
            }
        }
        if (all_match) return true;
    }
    return false;
}

}  // namespace gact::sm
