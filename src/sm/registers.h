// Read/write registers and the double-collect snapshot.
//
// The paper's standard shared-memory model SM is plain single-writer
// multi-reader registers. sm/snapshot_memory.h exposes atomic snapshots
// as a primitive; this module grounds that primitive in registers, the
// classical way: a scanner collects all registers repeatedly until two
// consecutive collects agree — the agreeing collect is then a snapshot
// that existed at an instant between the two collects [Afek et al. 1993].
//
// Every read and write advances a global step clock and is logged, so
// tests can verify atomicity *semantically*: a returned snapshot must
// equal the register contents at some instant within the scan.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/process_set.h"
#include "util/require.h"

namespace gact::sm {

using gact::ProcessId;
using Word = std::uint64_t;

/// An array of single-writer registers with a step clock and write log.
class RegisterFile {
public:
    explicit RegisterFile(std::uint32_t num_registers)
        : values_(num_registers) {}

    std::uint32_t size() const noexcept {
        return static_cast<std::uint32_t>(values_.size());
    }

    /// Atomic write of register r (one step).
    void write(std::uint32_t r, Word value);

    /// Atomic read of register r (one step).
    std::optional<Word> read(std::uint32_t r);

    /// The current step count (reads + writes so far).
    std::uint64_t now() const noexcept { return clock_; }

    /// The contents of register r at step `time` (after all operations
    /// with step index <= time).
    std::optional<Word> value_at(std::uint32_t r, std::uint64_t time) const;

private:
    struct WriteEvent {
        std::uint64_t time;
        Word value;
    };

    std::vector<std::optional<Word>> values_;
    std::vector<std::vector<WriteEvent>> log_{values_.size()};
    std::uint64_t clock_ = 0;
};

/// One double-collect scan attempt bookkeeping.
struct ScanResult {
    std::vector<std::optional<Word>> snapshot;
    std::uint64_t started_at = 0;
    std::uint64_t finished_at = 0;
    std::size_t collects = 0;  // number of full collects performed
};

/// Scan by double collect: repeat full collects until two consecutive
/// ones agree; at most `max_collects` collects (throws on exhaustion —
/// under a fair schedule with finitely many writes this cannot happen).
ScanResult double_collect_scan(RegisterFile& registers,
                               std::size_t max_collects = 64);

/// Does `snapshot` equal the registers' contents at some instant in
/// [started_at, finished_at]? The correctness statement of double
/// collect, checked against the write log.
bool snapshot_is_atomic(const RegisterFile& registers,
                        const ScanResult& scan);

}  // namespace gact::sm
