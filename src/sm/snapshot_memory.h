// Shared-memory substrate: single-writer atomic-snapshot objects under a
// deterministic scheduler.
//
// The paper's standard shared-memory model SM (Section 1) has processes
// reading and writing shared registers. We expose the classically
// equivalent single-writer atomic-snapshot abstraction [Afek et al., JACM
// 1993] as the primitive: one step is either an update of a process's own
// component or an atomic snapshot of all components. The Borowsky-Gafni
// immediate-snapshot algorithm (sm/immediate_snapshot.h) and the chained
// IIS executor (sm/iis_executor.h) are built on top, realizing the
// SM -> IIS direction of the simulations the paper relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/process_set.h"
#include "util/require.h"

namespace gact::sm {

using gact::ProcessId;
using gact::ProcessSet;

/// Values stored in memory components (opaque to the memory).
using Word = std::uint64_t;

/// One single-writer multi-reader atomic-snapshot object.
class SnapshotMemory {
public:
    explicit SnapshotMemory(std::uint32_t num_processes)
        : cells_(num_processes) {}

    std::uint32_t num_processes() const noexcept {
        return static_cast<std::uint32_t>(cells_.size());
    }

    /// Atomic update of p's own component.
    void update(ProcessId p, Word value) {
        require(p < cells_.size(), "SnapshotMemory: unknown process");
        cells_[p] = value;
    }

    /// Atomic snapshot of all components (nullopt = never written).
    std::vector<std::optional<Word>> snapshot() const { return cells_; }

    /// Component read (used by tests).
    std::optional<Word> read(ProcessId p) const {
        require(p < cells_.size(), "SnapshotMemory: unknown process");
        return cells_[p];
    }

private:
    std::vector<std::optional<Word>> cells_;
};

}  // namespace gact::sm
