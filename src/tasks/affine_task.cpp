#include "tasks/affine_task.h"

#include "util/require.h"

namespace gact::tasks {

SimplicialComplex affine_restriction(const topo::SubdividedComplex& chr_k,
                                     const SimplicialComplex& l_complex,
                                     const Simplex& face) {
    SimplicialComplex out;
    for (const Simplex& s : l_complex.simplices()) {
        if (chr_k.carrier_of(s).is_face_of(face)) out.add_simplex(s);
    }
    return out;
}

AffineTask make_affine_task(std::string name,
                            const topo::SubdividedComplex& chr_k,
                            const SimplicialComplex& l_complex) {
    require(l_complex.is_subcomplex_of(chr_k.complex().complex()),
            "make_affine_task: L is not a subcomplex of Chr^k s");
    const int n = chr_k.base().dimension();
    require(l_complex.is_pure(n),
            "make_affine_task: L is not pure of dimension n");

    AffineTask out;
    out.task.name = std::move(name);
    out.task.num_processes = static_cast<std::uint32_t>(n) + 1;
    out.task.inputs = chr_k.base();
    out.task.outputs = chr_k.complex().restrict_to(l_complex);

    for (const Simplex& t : chr_k.base().complex().simplices()) {
        SimplicialComplex image = affine_restriction(chr_k, l_complex, t);
        if (!image.is_empty()) {
            require(image.is_pure(t.dimension()),
                    "make_affine_task: L ∩ Chr^k " + t.to_string() +
                        " is not pure of dimension " +
                        std::to_string(t.dimension()));
        }
        out.task.delta.set(t, std::move(image));
    }
    out.subdivision = chr_k;
    out.l_complex = l_complex;

    const std::string err = out.task.validate();
    ensure(err.empty(), "make_affine_task: invalid task: " + err);
    return out;
}

}  // namespace gact::tasks
