// Affine tasks (paper, Section 4.2).
//
// An affine task is the input-less task defined by a pure n-dimensional
// subcomplex L of Chr^k s: the input complex is the standard simplex s,
// the output complex is L, and Delta(t) = L ∩ Chr^k t for every face
// t ⊆ s. Affine tasks are how the paper presents both the total-order
// task L_ord and the t-resilience task L_t.
#pragma once

#include "tasks/task.h"
#include "topology/subdivision.h"

namespace gact::tasks {

/// An affine task, keeping hold of the geometry of its defining complex.
struct AffineTask {
    Task task;
    /// The subdivision Chr^k s the output complex L lives in.
    topo::SubdividedComplex subdivision;
    /// L itself (the output complex, as a subcomplex of the subdivision).
    SimplicialComplex l_complex;

    std::uint32_t num_processes() const { return task.num_processes; }
};

/// Build the affine task of a subcomplex L ⊆ Chr^k s. Validates that
/// L ∩ Chr^k t is pure of dimension dim(t) or empty for every face t
/// (Section 4.2), and that L is pure n-dimensional.
AffineTask make_affine_task(std::string name,
                            const topo::SubdividedComplex& chr_k,
                            const SimplicialComplex& l_complex);

/// The intersection L ∩ Chr^k t: the subcomplex of simplices of L whose
/// carrier lies in the face t.
SimplicialComplex affine_restriction(const topo::SubdividedComplex& chr_k,
                                     const SimplicialComplex& l_complex,
                                     const Simplex& face);

}  // namespace gact::tasks
