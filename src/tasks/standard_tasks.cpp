#include "tasks/standard_tasks.h"

#include <map>

#include "topology/combinatorics.h"
#include "util/require.h"

namespace gact::tasks {

Simplex sigma_alpha(const topo::SubdividedComplex& chr2,
                    const std::vector<ProcessId>& alpha) {
    const int n = chr2.base().dimension();
    require(!alpha.empty() && static_cast<int>(alpha.size()) <= n + 1,
            "sigma_alpha: permutation size out of range");
    require(chr2.depth() == 2, "sigma_alpha: needs the second subdivision");

    // The flag of faces f_0 ⊂ f_1 ⊂ ... with f_i = {alpha_0..alpha_i}.
    // For a permutation of a proper subset S the flag lives in the face
    // spanned by S and identifies a (|S|-1)-simplex (a face of the full
    // sigma_alpha for any permutation extending alpha).
    std::vector<Simplex> flag(alpha.size());
    ProcessSet colors;
    Simplex acc;
    for (std::size_t i = 0; i < alpha.size(); ++i) {
        require(!colors.contains(alpha[i]), "sigma_alpha: repeated process");
        colors = colors.with(alpha[i]);
        acc = acc.with(static_cast<topo::VertexId>(alpha[i]));
        flag[i] = acc;
    }

    const int dim = static_cast<int>(alpha.size()) - 1;
    std::vector<Simplex> matches;
    for (const Simplex& f :
         chr2.complex().complex().simplices_of_dimension(dim)) {
        if (!(chr2.complex().colors_of(f) == colors)) continue;
        bool ok = true;
        for (std::size_t i = 0; i < alpha.size() && ok; ++i) {
            const topo::VertexId v =
                chr2.complex().vertex_with_color(f, alpha[i]);
            // "Interior of the i-dimensional face": the carrier (coordinate
            // support) is exactly flag[i].
            if (!(chr2.carrier(v) == flag[i])) ok = false;
        }
        if (ok) matches.push_back(f);
    }
    require(matches.size() == 1,
            "sigma_alpha: expected a unique simplex, found " +
                std::to_string(matches.size()));
    return matches.front();
}

AffineTask total_order_task(int n) {
    const topo::SubdividedComplex chr2 = topo::SubdividedComplex::
        iterated_chromatic(topo::ChromaticComplex::standard_simplex(n), 2);
    SimplicialComplex l;
    for (const auto& perm : topo::all_permutations(
             static_cast<std::size_t>(n) + 1)) {
        std::vector<ProcessId> alpha(perm.begin(), perm.end());
        l.add_simplex(sigma_alpha(chr2, alpha));
    }
    return make_affine_task("L_ord(n=" + std::to_string(n) + ")", chr2, l);
}

AffineTask t_resilience_task(int n, int t) {
    require(t >= 0 && t <= n, "t_resilience_task: need 0 <= t <= n");
    const topo::SubdividedComplex chr2 = topo::SubdividedComplex::
        iterated_chromatic(topo::ChromaticComplex::standard_simplex(n), 2);
    // Keep the facets having no vertex on an (n-t-1)-dimensional face,
    // i.e. every vertex's carrier has dimension >= n-t.
    SimplicialComplex l;
    for (const Simplex& f : chr2.complex().facets()) {
        bool ok = true;
        for (topo::VertexId v : f.vertices()) {
            if (chr2.carrier(v).dimension() < n - t) {
                ok = false;
                break;
            }
        }
        if (ok) l.add_simplex(f);
    }
    return make_affine_task(
        "L_" + std::to_string(t) + "(n=" + std::to_string(n) + ")", chr2, l);
}

AffineTask immediate_snapshot_task(int n) {
    const topo::SubdividedComplex chr = topo::SubdividedComplex::
        iterated_chromatic(topo::ChromaticComplex::standard_simplex(n), 1);
    SimplicialComplex l;
    for (const Simplex& f : chr.complex().facets()) l.add_simplex(f);
    return make_affine_task("IS(n=" + std::to_string(n) + ")", chr, l);
}

topo::VertexId value_vertex(std::uint32_t num_values, ProcessId p,
                            std::uint32_t value) {
    require(value < num_values, "value_vertex: value out of range");
    return p * num_values + value;
}

namespace {

/// The pseudosphere complex where process p holds any value: facets are
/// all assignments of one value per process.
ChromaticComplex pseudosphere(std::uint32_t num_processes,
                              std::uint32_t num_values) {
    std::unordered_map<topo::VertexId, topo::Color> colors;
    for (ProcessId p = 0; p < num_processes; ++p) {
        for (std::uint32_t v = 0; v < num_values; ++v) {
            colors[value_vertex(num_values, p, v)] = p;
        }
    }
    std::vector<Simplex> facets;
    std::vector<std::uint32_t> choice(num_processes, 0);
    while (true) {
        std::vector<topo::VertexId> verts;
        for (ProcessId p = 0; p < num_processes; ++p) {
            verts.push_back(value_vertex(num_values, p, choice[p]));
        }
        facets.emplace_back(std::move(verts));
        // Advance the mixed-radix counter.
        std::size_t i = 0;
        while (i < num_processes && ++choice[i] == num_values) {
            choice[i] = 0;
            ++i;
        }
        if (i == num_processes) break;
    }
    return ChromaticComplex(SimplicialComplex::from_facets(facets), colors);
}

/// The values carried by a simplex of a pseudosphere.
std::vector<std::uint32_t> values_of(const Simplex& s,
                                     std::uint32_t num_values) {
    std::vector<std::uint32_t> out;
    for (topo::VertexId v : s.vertices()) out.push_back(v % num_values);
    return out;
}

}  // namespace

Task k_set_agreement_task(std::uint32_t num_processes, std::uint32_t k,
                          std::uint32_t num_values) {
    require(k >= 1, "k_set_agreement_task: k >= 1");
    Task task;
    task.name = std::to_string(k) + "-set-agreement(" +
                std::to_string(num_processes) + "p," +
                std::to_string(num_values) + "v)";
    task.num_processes = num_processes;
    task.inputs = pseudosphere(num_processes, num_values);
    task.outputs = pseudosphere(num_processes, num_values);

    for (const Simplex& sigma : task.inputs.complex().simplices()) {
        // Allowed outputs for participants chi(sigma) with inputs V(sigma):
        // assignments of values from V(sigma) to exactly those processes,
        // with at most k distinct values.
        const ProcessSet procs = task.inputs.colors_of(sigma);
        std::vector<std::uint32_t> allowed = values_of(sigma, num_values);
        std::sort(allowed.begin(), allowed.end());
        allowed.erase(std::unique(allowed.begin(), allowed.end()),
                      allowed.end());

        SimplicialComplex image;
        // Enumerate assignments participants -> allowed values.
        const std::vector<ProcessId> members = procs.members();
        std::vector<std::size_t> choice(members.size(), 0);
        while (true) {
            std::vector<std::uint32_t> distinct;
            std::vector<topo::VertexId> verts;
            for (std::size_t i = 0; i < members.size(); ++i) {
                const std::uint32_t val = allowed[choice[i]];
                distinct.push_back(val);
                verts.push_back(value_vertex(num_values, members[i], val));
            }
            std::sort(distinct.begin(), distinct.end());
            distinct.erase(std::unique(distinct.begin(), distinct.end()),
                           distinct.end());
            if (distinct.size() <= k) {
                image.add_simplex(Simplex(std::move(verts)));
            }
            std::size_t i = 0;
            while (i < choice.size() && ++choice[i] == allowed.size()) {
                choice[i] = 0;
                ++i;
            }
            if (i == choice.size()) break;
        }
        task.delta.set(sigma, std::move(image));
    }
    const std::string err = task.validate();
    ensure(err.empty(), "k_set_agreement_task: invalid task: " + err);
    return task;
}

Task consensus_task(std::uint32_t num_processes, std::uint32_t num_values) {
    Task task = k_set_agreement_task(num_processes, 1, num_values);
    task.name = "consensus(" + std::to_string(num_processes) + "p," +
                std::to_string(num_values) + "v)";
    return task;
}

}  // namespace gact::tasks
