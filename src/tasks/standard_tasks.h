// The concrete tasks used in the paper, plus classical colored tasks.
//
//  * The total-order task L_ord (Section 4.2): outputs are the (n+1)!
//    simplices sigma_alpha of Chr^2 s whose vertex colored alpha(i) lies in
//    the interior of the i-dimensional face {alpha(0), .., alpha(i)}. Not
//    link-connected; solvable in OF_fast via commit-adopt (Section 4.5)
//    but not wait-free.
//  * The t-resilience task L_t (Section 9.2): the simplices of Chr^2 s
//    having no vertex on an (n-t-1)-dimensional face of s. Link-connected,
//    and solvable in Res_t — the paper's headline application of GACT.
//  * The immediate-snapshot task: L = Chr^1 s (one IS round).
//  * Consensus and k-set agreement, as colored tasks with value inputs.
#pragma once

#include "tasks/affine_task.h"

namespace gact::tasks {

/// The facet sigma_alpha of Chr^2 s for the permutation `alpha` of
/// {0..n} (paper, Section 4.2). Throws if it is not unique (it is, for
/// the standard subdivision).
Simplex sigma_alpha(const topo::SubdividedComplex& chr2,
                    const std::vector<ProcessId>& alpha);

/// The total-order affine task L_ord on n+1 processes.
AffineTask total_order_task(int n);

/// The t-resilience affine task L_t on n+1 processes (0 <= t <= n).
AffineTask t_resilience_task(int n, int t);

/// The one-round immediate-snapshot task: L = Chr s.
AffineTask immediate_snapshot_task(int n);

/// Consensus on n+1 processes with inputs {0, .., num_values-1}: all
/// deciders agree on one participant's input.
Task consensus_task(std::uint32_t num_processes, std::uint32_t num_values);

/// k-set agreement: deciders output participants' inputs with at most k
/// distinct values. k = 1 is consensus.
Task k_set_agreement_task(std::uint32_t num_processes, std::uint32_t k,
                          std::uint32_t num_values);

/// The vertex id used by the value tasks for (process, value).
topo::VertexId value_vertex(std::uint32_t num_values, ProcessId p,
                            std::uint32_t value);

}  // namespace gact::tasks
