#include "tasks/task.h"

#include <algorithm>

#include "util/require.h"

namespace gact::tasks {

std::string Task::validate() const {
    const int n = static_cast<int>(num_processes) - 1;
    if (n < 0) return "task has no processes";
    if (!inputs.is_pure(n)) {
        return "input complex is not pure of dimension " + std::to_string(n);
    }
    if (!outputs.is_pure(n)) {
        return "output complex is not pure of dimension " + std::to_string(n);
    }
    const ProcessSet all = ProcessSet::full(num_processes);
    if (!(inputs.all_colors() == all)) return "input colors are not {0..n}";
    if (!(outputs.all_colors() == all)) return "output colors are not {0..n}";
    const std::string delta_error = delta.validate(inputs, outputs);
    if (!delta_error.empty()) return "delta: " + delta_error;
    return "";
}

bool Task::is_inputless() const {
    const ChromaticComplex s =
        ChromaticComplex::standard_simplex(static_cast<int>(num_processes) - 1);
    return inputs == s;
}

Task plus_completion(const Task& task) {
    // Fresh vertex ids for the "no output" vertices v_0 .. v_n.
    topo::VertexId max_id = 0;
    for (topo::VertexId v : task.outputs.vertex_ids()) {
        max_id = std::max(max_id, v);
    }
    std::vector<topo::VertexId> no_output(task.num_processes);
    std::unordered_map<topo::VertexId, topo::Color> colors;
    for (topo::VertexId v : task.outputs.vertex_ids()) {
        colors[v] = task.outputs.color(v);
    }
    for (ProcessId i = 0; i < task.num_processes; ++i) {
        no_output[i] = max_id + 1 + i;
        colors[no_output[i]] = i;
    }

    // Complete a simplex with "no output" vertices for the given colors.
    const auto complete = [&](const Simplex& sigma, ProcessSet target_colors) {
        Simplex out = sigma;
        ProcessSet have;
        for (topo::VertexId v : sigma.vertices()) have = have.with(colors[v]);
        for (ProcessId i : (target_colors - have).members()) {
            out = out.with(no_output[i]);
        }
        return out;
    };

    // O+ facets: every output simplex completed to full dimension, plus
    // the all-no-output facet.
    const ProcessSet all = ProcessSet::full(task.num_processes);
    std::vector<Simplex> facets;
    for (const Simplex& sigma : task.outputs.complex().simplices()) {
        facets.push_back(complete(sigma, all));
    }
    {
        Simplex nobody;
        for (ProcessId i = 0; i < task.num_processes; ++i) {
            nobody = nobody.with(no_output[i]);
        }
        facets.push_back(nobody);
    }
    ChromaticComplex outputs_plus(SimplicialComplex::from_facets(facets),
                                  colors);

    // Delta+: images completed within the carrier's colors, so that purity
    // and the color condition hold (footnote 2, restricted to chi(tau)).
    CarrierMap delta_plus;
    for (const Simplex& tau : task.inputs.complex().simplices()) {
        const ProcessSet tau_colors = task.inputs.colors_of(tau);
        SimplicialComplex image;
        if (task.delta.at(tau).is_empty()) {
            image.add_simplex(complete(Simplex(), tau_colors));
        } else {
            for (const Simplex& sigma : task.delta.at(tau).simplices()) {
                image.add_simplex(complete(sigma, tau_colors));
            }
        }
        delta_plus.set(tau, std::move(image));
    }

    Task out;
    out.name = task.name + "+";
    out.inputs = task.inputs;
    out.outputs = std::move(outputs_plus);
    out.delta = std::move(delta_plus);
    out.num_processes = task.num_processes;
    return out;
}

}  // namespace gact::tasks
