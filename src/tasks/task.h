// Tasks (paper, Section 4).
//
// A task T = (I, O, Delta) on n+1 processes consists of two finite pure
// n-dimensional chromatic complexes — the input complex I and the output
// complex O — and a chromatic multi-map Delta : I -> 2^O describing the
// outputs allowed for each set of participants and inputs.
#pragma once

#include <string>

#include "topology/carrier_map.h"
#include "topology/chromatic_complex.h"

namespace gact::tasks {

using topo::CarrierMap;
using topo::ChromaticComplex;
using topo::Simplex;
using topo::SimplicialComplex;

/// A decision task.
struct Task {
    std::string name;
    ChromaticComplex inputs;
    ChromaticComplex outputs;
    CarrierMap delta;
    std::uint32_t num_processes = 0;

    /// Full validation per Section 4.1: both complexes pure n-dimensional
    /// and properly colored by {0..n}; Delta a valid chromatic multi-map.
    /// Returns a diagnostic, or "" when the task is well-formed.
    std::string validate() const;

    /// Is the task input-less (inputs = the standard simplex, identity
    /// colors)?
    bool is_inputless() const;
};

/// The T+ construction of footnote 2: extend the output complex with one
/// "no output" vertex per color and close Delta images accordingly, so
/// every Delta image becomes non-empty and pure of full dimension. The new
/// vertices receive ids above every existing output vertex id.
Task plus_completion(const Task& task);

}  // namespace gact::tasks
