#include "topology/adjacency_index.h"

#include <algorithm>

namespace gact::topo {

AdjacencyIndex::AdjacencyIndex(const SimplicialComplex& complex,
                               bool index_simplices) {
    if (index_simplices) {
        // Reserve exactly so the pointers handed out below stay stable.
        std::size_t count = 0;
        for (const Simplex& sigma : complex.simplices()) {
            if (sigma.dimension() >= 1) ++count;
        }
        simplices_.reserve(count);
    }
    for (const Simplex& sigma : complex.simplices()) {
        if (sigma.dimension() < 1) continue;
        if (index_simplices) {
            simplices_.push_back(sigma);
            for (VertexId v : sigma.vertices()) {
                incident_[v].push_back(&simplices_.back());
            }
        }
        if (sigma.dimension() == 1) {
            const VertexId a = sigma.vertices()[0];
            const VertexId b = sigma.vertices()[1];
            neighbors_[a].push_back(b);
            neighbors_[b].push_back(a);
        }
    }
    for (auto& [v, nbrs] : neighbors_) {
        std::sort(nbrs.begin(), nbrs.end());
        nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    }
}

const std::vector<const Simplex*>& AdjacencyIndex::incident_simplices(
    VertexId v) const {
    static const std::vector<const Simplex*> kEmpty;
    const auto it = incident_.find(v);
    return it == incident_.end() ? kEmpty : it->second;
}

const std::vector<VertexId>& AdjacencyIndex::neighbors(VertexId v) const {
    static const std::vector<VertexId> kEmpty;
    const auto it = neighbors_.find(v);
    return it == neighbors_.end() ? kEmpty : it->second;
}

}  // namespace gact::topo
