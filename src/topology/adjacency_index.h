// Precomputed vertex/simplex incidence for a simplicial complex.
//
// The chromatic-CSP solver (core/chromatic_csp.h) needs, for every
// domain vertex, the simplices it belongs to (the constraints mentioning
// the variable) and its 1-skeleton neighbors (for degree tie-breaking in
// variable ordering). Recomputing these per search node is quadratic in
// the complex; this index builds them once per solve.
#pragma once

#include <unordered_map>
#include <vector>

#include "topology/simplicial_complex.h"

namespace gact::topo {

/// Immutable incidence index over one complex. The complex must outlive
/// nothing: every indexed simplex is stored (once) by value, so the
/// index stays valid if the complex is later mutated (but then no longer
/// reflects it). Per-vertex incidence lists hold pointers into that
/// shared storage to avoid duplicating each k-simplex k+1 times.
class AdjacencyIndex {
public:
    AdjacencyIndex() = default;

    /// Index every simplex of dimension >= 1 by each of its vertices, and
    /// derive 1-skeleton neighbor sets. With `index_simplices` false only
    /// the (cheap) neighbor sets are built — enough for component
    /// decomposition and degree queries, not for forward checking.
    explicit AdjacencyIndex(const SimplicialComplex& complex,
                            bool index_simplices = true);

    // Non-copyable/movable-by-default would dangle incident_ pointers
    // into simplices_; the solver only ever passes the index by
    // reference, so forbid copies and moves outright.
    AdjacencyIndex(const AdjacencyIndex&) = delete;
    AdjacencyIndex& operator=(const AdjacencyIndex&) = delete;

    /// Simplices of dimension >= 1 containing `v` (unordered). Empty for
    /// unknown or isolated vertices. The pointed-to simplices live as
    /// long as the index.
    const std::vector<const Simplex*>& incident_simplices(VertexId v) const;

    /// Number of indexed simplices (dimension >= 1); the dense id space
    /// of `id_of`. 0 when built with `index_simplices` false.
    std::size_t indexed_simplex_count() const noexcept {
        return simplices_.size();
    }

    /// Dense id in [0, indexed_simplex_count()) of a pointer obtained
    /// from incident_simplices(). Constraint caches (core/eval_cache.h)
    /// key their per-constraint tables on it, turning simplex hashing
    /// into an array index. Valid only for pointers handed out by this
    /// index (they point into one contiguous array).
    std::size_t id_of(const Simplex* s) const noexcept {
        return static_cast<std::size_t>(s - simplices_.data());
    }

    /// Sorted distinct vertices sharing a 1-simplex with `v`.
    const std::vector<VertexId>& neighbors(VertexId v) const;

    /// Number of 1-skeleton neighbors of `v`.
    std::size_t degree(VertexId v) const { return neighbors(v).size(); }

private:
    std::vector<Simplex> simplices_;  // one copy per indexed simplex
    std::unordered_map<VertexId, std::vector<const Simplex*>> incident_;
    std::unordered_map<VertexId, std::vector<VertexId>> neighbors_;
};

}  // namespace gact::topo
