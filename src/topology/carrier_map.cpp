#include "topology/carrier_map.h"

namespace gact::topo {

void CarrierMap::set(const Simplex& sigma, SimplicialComplex image) {
    require(!sigma.empty(), "CarrierMap: cannot define image of empty simplex");
    images_[sigma] = std::move(image);
}

const SimplicialComplex& CarrierMap::at(const Simplex& sigma) const {
    const auto it = images_.find(sigma);
    require(it != images_.end(), "CarrierMap: undefined at " + sigma.to_string());
    return it->second;
}

bool CarrierMap::allows(const Simplex& sigma, const Simplex& candidate) const {
    if (candidate.empty()) return true;
    return at(sigma).contains(candidate);
}

std::string CarrierMap::validate(const ChromaticComplex& domain,
                                 const ChromaticComplex& codomain) const {
    for (const Simplex& sigma : domain.complex().simplices()) {
        const auto it = images_.find(sigma);
        if (it == images_.end()) {
            return "carrier map undefined at " + sigma.to_string();
        }
        const SimplicialComplex& image = it->second;
        if (!image.is_subcomplex_of(codomain.complex())) {
            return "image of " + sigma.to_string() + " not in codomain";
        }
        if (!image.is_empty()) {
            // Pure of dimension dim(sigma), with exactly sigma's colors on
            // the facets (chi(sigma) = chi(Delta(sigma)) facet-wise).
            if (!image.is_pure(sigma.dimension())) {
                return "image of " + sigma.to_string() + " not pure of dim " +
                       std::to_string(sigma.dimension());
            }
            const ProcessSet colors = domain.colors_of(sigma);
            for (const Simplex& f : image.facets()) {
                if (!(codomain.colors_of(f) == colors)) {
                    return "image facet " + f.to_string() + " of " +
                           sigma.to_string() + " has wrong colors";
                }
            }
        }
        // Monotonicity/intersection: Delta(sigma ∩ tau) ⊆ Delta(sigma) ∩
        // Delta(tau). Face-monotonicity is the binding case; full pairwise
        // intersection follows from it when the domain is a complex, and we
        // check faces exhaustively.
        for (const Simplex& face : sigma.faces()) {
            if (face == sigma) continue;
            const auto fit = images_.find(face);
            if (fit == images_.end()) {
                return "carrier map undefined at face " + face.to_string();
            }
            if (!fit->second.is_subcomplex_of(image)) {
                return "carrier map not monotone: Delta(" + face.to_string() +
                       ") is not inside Delta(" + sigma.to_string() + ")";
            }
        }
    }
    return "";
}

}  // namespace gact::topo
