// Chromatic multi-maps ("carrier maps") between chromatic complexes
// (paper, Section 3.2).
//
// A chromatic multi-map Delta : A -> 2^B takes every m-simplex of A to a
// pure m-dimensional subcomplex of B such that
//   (i)  chi(sigma) = chi(Delta(sigma)), and
//   (ii) Delta(sigma ∩ tau) ⊆ Delta(sigma) ∩ Delta(tau)
// (so in particular Delta is monotone under faces).
#pragma once

#include <map>

#include "topology/chromatic_complex.h"

namespace gact::topo {

/// A chromatic multi-map, stored extensionally simplex-by-simplex.
class CarrierMap {
public:
    CarrierMap() = default;

    /// Define Delta(sigma); the image must be a subcomplex of the intended
    /// codomain (validated by `validate`).
    void set(const Simplex& sigma, SimplicialComplex image);

    bool is_defined_at(const Simplex& sigma) const {
        return images_.count(sigma) != 0;
    }

    /// Delta(sigma). Requires sigma to be defined.
    const SimplicialComplex& at(const Simplex& sigma) const;

    /// Is `candidate` a simplex of Delta(sigma)?
    bool allows(const Simplex& sigma, const Simplex& candidate) const;

    std::size_t size() const noexcept { return images_.size(); }

    /// Validate the definition of a chromatic multi-map from `domain` to
    /// `codomain`: defined on every simplex of the domain, images are pure
    /// subcomplexes of the codomain of matching dimension and colors
    /// (empty images are allowed, cf. the paper's footnote 2), and the
    /// intersection condition (ii) holds. Returns a diagnostic or "" if ok.
    std::string validate(const ChromaticComplex& domain,
                         const ChromaticComplex& codomain) const;

private:
    std::map<Simplex, SimplicialComplex> images_;
};

}  // namespace gact::topo
