#include "topology/chromatic_complex.h"

namespace gact::topo {

bool is_properly_colored(const SimplicialComplex& complex,
                         const std::unordered_map<VertexId, Color>& colors) {
    // The complex is downward closed (every mutation path goes through
    // add_simplex, which inserts all faces), so a simplex is properly
    // colored iff all of its edges are: checking the 1-skeleton covers
    // every simplex without walking the much larger set of
    // higher-dimensional ones.
    for (const Simplex& s : complex.simplices()) {
        if (s.size() == 1) {
            if (colors.find(s.vertices()[0]) == colors.end()) return false;
        } else if (s.size() == 2) {
            const auto a = colors.find(s.vertices()[0]);
            const auto b = colors.find(s.vertices()[1]);
            if (a == colors.end() || b == colors.end()) return false;
            if (a->second == b->second) return false;
        }
    }
    return true;
}

ChromaticComplex::ChromaticComplex(SimplicialComplex complex,
                                   std::unordered_map<VertexId, Color> colors)
    : complex_(std::move(complex)), colors_(std::move(colors)) {
    require(is_properly_colored(complex_, colors_),
            "ChromaticComplex: coloring is missing a vertex or not proper");
}

ChromaticComplex ChromaticComplex::trusted(
    SimplicialComplex complex, std::unordered_map<VertexId, Color> colors) {
    ChromaticComplex out;
    out.complex_ = std::move(complex);
    out.colors_ = std::move(colors);
    return out;
}

ChromaticComplex ChromaticComplex::standard_simplex(int n) {
    require(n >= 0 && n + 1 <= static_cast<int>(kMaxProcesses),
            "standard_simplex: dimension out of range");
    std::vector<VertexId> all;
    std::unordered_map<VertexId, Color> colors;
    for (int i = 0; i <= n; ++i) {
        all.push_back(static_cast<VertexId>(i));
        colors[static_cast<VertexId>(i)] = static_cast<Color>(i);
    }
    SimplicialComplex c = SimplicialComplex::from_facets({Simplex(all)});
    return ChromaticComplex(std::move(c), std::move(colors));
}

Color ChromaticComplex::color(VertexId v) const {
    const auto it = colors_.find(v);
    require(it != colors_.end(), "ChromaticComplex: vertex has no color");
    return it->second;
}

ProcessSet ChromaticComplex::colors_of(const Simplex& s) const {
    ProcessSet out;
    for (VertexId v : s.vertices()) out = out.with(color(v));
    return out;
}

ProcessSet ChromaticComplex::all_colors() const {
    ProcessSet out;
    for (VertexId v : complex_.vertex_ids()) out = out.with(color(v));
    return out;
}

VertexId ChromaticComplex::vertex_with_color(const Simplex& s, Color c) const {
    for (VertexId v : s.vertices()) {
        if (color(v) == c) return v;
    }
    throw precondition_error("ChromaticComplex: no vertex of requested color");
}

ChromaticComplex ChromaticComplex::restrict_to(
    const SimplicialComplex& sub) const {
    require(sub.is_subcomplex_of(complex_),
            "ChromaticComplex::restrict_to: not a subcomplex");
    std::unordered_map<VertexId, Color> colors;
    for (VertexId v : sub.vertex_ids()) colors[v] = color(v);
    ChromaticComplex out;
    out.complex_ = sub;
    out.colors_ = std::move(colors);
    return out;
}

}  // namespace gact::topo
