// Chromatic complexes (paper, Section 3.2).
//
// A chromatic complex is a simplicial complex C together with a
// noncollapsing simplicial map chi : C -> s into the standard n-simplex;
// concretely, a color in {0, .., n} per vertex such that the vertices of
// every simplex carry pairwise distinct colors.
#pragma once

#include <unordered_map>
#include <vector>

#include "topology/simplicial_complex.h"
#include "util/process_set.h"

namespace gact::topo {

/// Colors are process identifiers.
using Color = gact::ProcessId;

/// A simplicial complex with a proper vertex coloring.
class ChromaticComplex {
public:
    ChromaticComplex() = default;

    /// Wrap a complex with a coloring. Validates that every simplex has
    /// pairwise distinct colors and every vertex is colored.
    ChromaticComplex(SimplicialComplex complex,
                     std::unordered_map<VertexId, Color> colors);

    /// Wrap without validating. Strictly for internal builders whose
    /// output is chromatic by construction (the chromatic subdivision,
    /// the stable-complex accumulator): on the multi-million-simplex
    /// complexes they produce, even the edge-only validation walk is a
    /// measurable fraction of the build.
    static ChromaticComplex trusted(SimplicialComplex complex,
                                    std::unordered_map<VertexId, Color> colors);

    /// The standard n-simplex s: vertices 0..n, vertex i colored i, with
    /// all faces present (paper, Section 3.2).
    static ChromaticComplex standard_simplex(int n);

    const SimplicialComplex& complex() const noexcept { return complex_; }

    Color color(VertexId v) const;

    /// chi(sigma): the set of colors of sigma's vertices.
    ProcessSet colors_of(const Simplex& s) const;

    /// chi(C): union of all vertex colors.
    ProcessSet all_colors() const;

    /// The vertex of `s` carrying color c; requires such a vertex to exist.
    VertexId vertex_with_color(const Simplex& s, Color c) const;

    /// Restriction to a subcomplex (colors inherited).
    ChromaticComplex restrict_to(const SimplicialComplex& sub) const;

    /// The link of s, as a chromatic complex (inherits colors).
    ChromaticComplex link(const Simplex& s) const {
        return restrict_to(complex_.link(s));
    }

    /// The k-skeleton, as a chromatic complex.
    ChromaticComplex skeleton(int k) const {
        return restrict_to(complex_.skeleton(k));
    }

    // Convenience passthroughs.
    bool contains(const Simplex& s) const { return complex_.contains(s); }
    bool contains_vertex(VertexId v) const { return complex_.contains_vertex(v); }
    int dimension() const { return complex_.dimension(); }
    bool is_pure(int n) const { return complex_.is_pure(n); }
    std::vector<Simplex> facets() const { return complex_.facets(); }
    std::vector<VertexId> vertex_ids() const { return complex_.vertex_ids(); }
    bool is_empty() const { return complex_.is_empty(); }

    friend bool operator==(const ChromaticComplex& a, const ChromaticComplex& b) {
        if (!(a.complex_ == b.complex_)) return false;
        for (VertexId v : a.complex_.vertex_ids()) {
            if (a.color(v) != b.color(v)) return false;
        }
        return true;
    }

private:
    SimplicialComplex complex_;
    std::unordered_map<VertexId, Color> colors_;
};

/// Check Definition 8.3 prerequisites: is the coloring proper on every
/// simplex of `complex`?
bool is_properly_colored(const SimplicialComplex& complex,
                         const std::unordered_map<VertexId, Color>& colors);

}  // namespace gact::topo
