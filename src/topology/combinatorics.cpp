#include "topology/combinatorics.h"

#include <algorithm>
#include <numeric>

#include "util/require.h"

namespace gact::topo {

namespace {

void extend_partition(std::size_t n, std::vector<bool>& used,
                      std::size_t remaining, OrderedIndexPartition& current,
                      std::vector<OrderedIndexPartition>& out) {
    if (remaining == 0) {
        out.push_back(current);
        return;
    }
    // Choose the next block: any non-empty subset of the unused elements.
    std::vector<std::size_t> unused;
    for (std::size_t i = 0; i < n; ++i) {
        if (!used[i]) unused.push_back(i);
    }
    const std::size_t m = unused.size();
    for (std::size_t mask = 1; mask < (std::size_t{1} << m); ++mask) {
        std::vector<std::size_t> block;
        for (std::size_t i = 0; i < m; ++i) {
            if (mask & (std::size_t{1} << i)) block.push_back(unused[i]);
        }
        for (std::size_t i : block) used[i] = true;
        current.push_back(block);
        extend_partition(n, used, remaining - block.size(), current, out);
        current.pop_back();
        for (std::size_t i : block) used[i] = false;
    }
}

}  // namespace

std::vector<OrderedIndexPartition> ordered_partitions(std::size_t n) {
    require(n <= 10, "ordered_partitions: n too large to enumerate");
    std::vector<OrderedIndexPartition> out;
    if (n == 0) {
        out.push_back({});
        return out;
    }
    std::vector<bool> used(n, false);
    OrderedIndexPartition current;
    extend_partition(n, used, n, current, out);
    return out;
}

unsigned long long ordered_bell_number(std::size_t n) {
    // a(n) = sum_{k=1..n} C(n,k) a(n-k), a(0) = 1.
    std::vector<unsigned long long> a(n + 1, 0);
    a[0] = 1;
    for (std::size_t m = 1; m <= n; ++m) {
        // Binomial coefficients C(m, k) computed incrementally.
        unsigned long long binom = 1;
        for (std::size_t k = 1; k <= m; ++k) {
            binom = binom * (m - k + 1) / k;
            a[m] += binom * a[m - k];
        }
    }
    return a[n];
}

std::vector<std::vector<std::size_t>> all_permutations(std::size_t n) {
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::vector<std::vector<std::size_t>> out;
    do {
        out.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return out;
}

}  // namespace gact::topo
