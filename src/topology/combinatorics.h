// Combinatorial enumeration shared by the chromatic subdivision and the
// immediate-snapshot model.
//
// The facets of the standard chromatic subdivision Chr s are in one-to-one
// correspondence with the ordered set partitions of the color set (paper,
// Section 3.2: condition (a)-(b) on tuples ((0,t_0),..,(n,t_n)) encodes a
// sequence of "concurrency classes"). The same objects are exactly the
// one-round schedules of the immediate-snapshot task (Section 2.1).
#pragma once

#include <cstddef>
#include <vector>

namespace gact::topo {

/// An ordered partition of {0, .., n-1} into non-empty blocks, as a list of
/// index blocks in order.
using OrderedIndexPartition = std::vector<std::vector<std::size_t>>;

/// All ordered set partitions of {0, .., n-1}. The count is the ordered
/// Bell number: 1, 1, 3, 13, 75, 541, ... for n = 0, 1, 2, 3, 4, 5.
std::vector<OrderedIndexPartition> ordered_partitions(std::size_t n);

/// The number of ordered set partitions of an n-element set (Fubini /
/// ordered Bell number), by recurrence.
unsigned long long ordered_bell_number(std::size_t n);

/// All permutations of {0, .., n-1}.
std::vector<std::vector<std::size_t>> all_permutations(std::size_t n);

}  // namespace gact::topo
