#include "topology/connectivity.h"

#include "topology/homology.h"

namespace gact::topo {

std::string LinkConnectivityReport::to_string() const {
    if (link_connected) return "link-connected";
    std::string out = "not link-connected";
    if (witness) {
        out += ": link of " + witness->to_string() + " is not " +
               std::to_string(required_connectivity) + "-connected";
    }
    return out;
}

LinkConnectivityReport check_link_connected(const SimplicialComplex& complex) {
    LinkConnectivityReport report;
    const int n = complex.dimension();
    for (const Simplex& sigma : complex.simplices()) {
        const int required = n - sigma.dimension() - 2;
        if (required <= -2) continue;  // vacuous
        const SimplicialComplex link = complex.link(sigma);
        if (!is_k_connected(link, required)) {
            report.link_connected = false;
            report.witness = sigma;
            report.required_connectivity = required;
            return report;
        }
    }
    report.link_connected = true;
    return report;
}

}  // namespace gact::topo
