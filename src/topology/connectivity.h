// Link-connectedness (paper, Definition 8.3, after [HS99, Def. 4.14]).
//
// A pure n-dimensional complex B is link-connected if for every simplex
// sigma of B the link of sigma in B is (n - dim(sigma) - 2)-connected.
// This is the hypothesis under which chromatic simplicial approximation
// (Theorem 8.4) applies; the paper notes that the output complex of the
// total-order task is NOT link-connected while the L_t complexes are.
#pragma once

#include <optional>
#include <string>

#include "topology/chromatic_complex.h"

namespace gact::topo {

/// Result of a link-connectedness check.
struct LinkConnectivityReport {
    bool link_connected = false;
    /// When not link-connected: a witness simplex whose link fails, and the
    /// connectivity level that was required of it.
    std::optional<Simplex> witness;
    int required_connectivity = 0;
    std::string to_string() const;
};

/// Check Definition 8.3 on a pure n-dimensional complex.
LinkConnectivityReport check_link_connected(const SimplicialComplex& complex);

inline bool is_link_connected(const SimplicialComplex& complex) {
    return check_link_connected(complex).link_connected;
}

}  // namespace gact::topo
