#include "topology/facet_graph.h"

#include <algorithm>

#include "util/require.h"

namespace gact::topo {

FacetGraph::FacetGraph(const SimplicialComplex& complex)
    : facets_(complex.facets()) {
    adjacency_.resize(facets_.size());
    for (std::size_t i = 0; i < facets_.size(); ++i) {
        for (const Simplex& ridge : facets_[i].boundary_faces()) {
            if (!ridge.empty()) ridge_to_facets_[ridge].push_back(i);
        }
    }
    for (const auto& [ridge, incident] : ridge_to_facets_) {
        if (incident.size() > 2) pseudomanifold_ = false;
        for (std::size_t a : incident) {
            for (std::size_t b : incident) {
                if (a != b) adjacency_[a].push_back(b);
            }
        }
    }
    for (auto& neighbors : adjacency_) {
        std::sort(neighbors.begin(), neighbors.end());
        neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                        neighbors.end());
    }
}

const std::vector<std::size_t>& FacetGraph::neighbors(std::size_t i) const {
    require(i < adjacency_.size(), "FacetGraph: facet index out of range");
    return adjacency_[i];
}

std::vector<std::size_t> FacetGraph::component_ids() const {
    std::vector<std::size_t> component(facets_.size(), SIZE_MAX);
    std::size_t next = 0;
    for (std::size_t i = 0; i < facets_.size(); ++i) {
        if (component[i] != SIZE_MAX) continue;
        std::vector<std::size_t> stack{i};
        component[i] = next;
        while (!stack.empty()) {
            const std::size_t u = stack.back();
            stack.pop_back();
            for (std::size_t v : adjacency_[u]) {
                if (component[v] == SIZE_MAX) {
                    component[v] = next;
                    stack.push_back(v);
                }
            }
        }
        ++next;
    }
    return component;
}

std::size_t FacetGraph::num_components() const {
    const auto ids = component_ids();
    std::size_t max_id = 0;
    for (std::size_t id : ids) max_id = std::max(max_id, id + 1);
    return max_id;
}

std::vector<Simplex> FacetGraph::boundary_ridges() const {
    std::vector<Simplex> out;
    for (const auto& [ridge, incident] : ridge_to_facets_) {
        if (incident.size() == 1) out.push_back(ridge);
    }
    return out;
}

}  // namespace gact::topo
