// The dual (facet-adjacency) graph of a pure complex.
//
// Two facets are adjacent when they share a codimension-1 face. The dual
// graph exposes structure the paper's figures show at a glance: the
// collar rings of the L_t construction are strips (one connected band per
// forbidden face), and pseudomanifold-ness (every ridge in at most two
// facets) distinguishes subdivided simplices from branching complexes.
#pragma once

#include <map>
#include <vector>

#include "topology/simplicial_complex.h"

namespace gact::topo {

/// The facet-adjacency structure of a complex.
class FacetGraph {
public:
    explicit FacetGraph(const SimplicialComplex& complex);

    std::size_t num_facets() const noexcept { return facets_.size(); }
    const std::vector<Simplex>& facets() const noexcept { return facets_; }

    /// Indices (into facets()) of the facets adjacent to facet i.
    const std::vector<std::size_t>& neighbors(std::size_t i) const;

    /// Number of connected components of the dual graph.
    std::size_t num_components() const;

    /// Component id (0-based) per facet, aligned with facets().
    std::vector<std::size_t> component_ids() const;

    /// Is every codimension-1 face shared by at most two facets?
    bool is_pseudomanifold() const noexcept { return pseudomanifold_; }

    /// The ridges (codimension-1 faces) on the boundary: faces of exactly
    /// one facet.
    std::vector<Simplex> boundary_ridges() const;

private:
    std::vector<Simplex> facets_;
    std::vector<std::vector<std::size_t>> adjacency_;
    std::map<Simplex, std::vector<std::size_t>> ridge_to_facets_;
    bool pseudomanifold_ = true;
};

}  // namespace gact::topo
