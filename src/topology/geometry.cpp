#include "topology/geometry.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "util/hash.h"
#include "util/require.h"

namespace gact::topo {

namespace {

/// Gaussian elimination over the rationals; reduces `m` (rows x cols,
/// row-major) in place and returns its rank.
std::size_t row_reduce(std::vector<std::vector<Rational>>& m) {
    const std::size_t rows = m.size();
    if (rows == 0) return 0;
    const std::size_t cols = m[0].size();
    std::size_t rank = 0;
    for (std::size_t col = 0; col < cols && rank < rows; ++col) {
        std::size_t pivot = rank;
        while (pivot < rows && m[pivot][col].is_zero()) ++pivot;
        if (pivot == rows) continue;
        std::swap(m[rank], m[pivot]);
        const Rational inv = Rational(1) / m[rank][col];
        for (std::size_t j = col; j < cols; ++j) m[rank][j] *= inv;
        for (std::size_t i = 0; i < rows; ++i) {
            if (i == rank || m[i][col].is_zero()) continue;
            const Rational factor = m[i][col];
            for (std::size_t j = col; j < cols; ++j) {
                m[i][j] -= factor * m[rank][j];
            }
        }
        ++rank;
    }
    return rank;
}

}  // namespace

BaryPoint::BaryPoint(std::vector<std::pair<VertexId, Rational>> coords) {
    std::map<VertexId, Rational> acc;
    for (auto& [v, w] : coords) {
        if (!w.is_zero()) acc[v] += w;
    }
    Rational total;
    for (auto& [v, w] : acc) {
        require(!w.is_negative(), "BaryPoint: negative coordinate");
        if (!w.is_zero()) coords_.emplace_back(v, w);
        total += w;
    }
    require(total == Rational(1), "BaryPoint: coordinates must sum to 1");
}

BaryPoint BaryPoint::vertex(VertexId v) {
    BaryPoint p;
    p.coords_.emplace_back(v, Rational(1));
    return p;
}

BaryPoint BaryPoint::combination(const std::vector<BaryPoint>& points,
                                 const std::vector<Rational>& weights) {
    require(points.size() == weights.size(),
            "BaryPoint::combination: size mismatch");
    std::map<VertexId, Rational> acc;
    Rational total;
    for (std::size_t i = 0; i < points.size(); ++i) {
        require(!weights[i].is_negative(),
                "BaryPoint::combination: negative weight");
        total += weights[i];
        for (const auto& [v, w] : points[i].coords_) {
            acc[v] += weights[i] * w;
        }
    }
    require(total == Rational(1), "BaryPoint::combination: weights must sum to 1");
    BaryPoint p;
    for (const auto& [v, w] : acc) {
        if (!w.is_zero()) p.coords_.emplace_back(v, w);
    }
    return p;
}

BaryPoint BaryPoint::barycenter(const Simplex& s) {
    require(!s.empty(), "BaryPoint::barycenter of empty simplex");
    BaryPoint p;
    const Rational w(1, static_cast<std::int64_t>(s.size()));
    for (VertexId v : s.vertices()) p.coords_.emplace_back(v, w);
    return p;
}

Rational BaryPoint::coord(VertexId v) const {
    for (const auto& [u, w] : coords_) {
        if (u == v) return w;
        if (u > v) break;
    }
    return Rational(0);
}

Simplex BaryPoint::support() const {
    std::vector<VertexId> verts;
    verts.reserve(coords_.size());
    for (const auto& [v, w] : coords_) verts.push_back(v);
    return Simplex(std::move(verts));
}

Rational BaryPoint::l1_distance(const BaryPoint& other) const {
    Rational total;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < coords_.size() || j < other.coords_.size()) {
        if (j >= other.coords_.size() ||
            (i < coords_.size() && coords_[i].first < other.coords_[j].first)) {
            total += coords_[i].second;
            ++i;
        } else if (i >= coords_.size() ||
                   other.coords_[j].first < coords_[i].first) {
            total += other.coords_[j].second;
            ++j;
        } else {
            total += (coords_[i].second - other.coords_[j].second).abs();
            ++i;
            ++j;
        }
    }
    return total;
}

std::string BaryPoint::to_string() const {
    std::string out = "(";
    bool first = true;
    for (const auto& [v, w] : coords_) {
        if (!first) out += ", ";
        out += std::to_string(v) + ":" + w.to_string();
        first = false;
    }
    out += ")";
    return out;
}

std::ostream& operator<<(std::ostream& os, const BaryPoint& p) {
    return os << p.to_string();
}

std::size_t hash_value(const BaryPoint& p) noexcept {
    std::size_t seed = p.coords().size();
    for (const auto& [v, w] : p.coords()) {
        hash_combine(seed, std::hash<VertexId>{}(v));
        hash_combine(seed, hash_value(w));
    }
    return seed;
}

std::vector<Rational> affine_coordinates(
    const BaryPoint& p, const std::vector<BaryPoint>& vertices) {
    require(!vertices.empty(), "affine_coordinates: no vertices");
    // Unknowns w_i; equations: for each base vertex v appearing anywhere,
    // sum_i w_i * vertices[i].coord(v) = p.coord(v); plus sum_i w_i = 1
    // (implied by the coordinate equations since all points sum to 1, but
    // keeping it explicit is harmless and guards degenerate inputs).
    std::vector<VertexId> base;
    for (const auto& q : vertices) {
        for (const auto& [v, w] : q.coords()) base.push_back(v);
    }
    for (const auto& [v, w] : p.coords()) base.push_back(v);
    std::sort(base.begin(), base.end());
    base.erase(std::unique(base.begin(), base.end()), base.end());

    const std::size_t k = vertices.size();
    std::vector<std::vector<Rational>> m;
    for (VertexId v : base) {
        std::vector<Rational> row(k + 1);
        for (std::size_t i = 0; i < k; ++i) row[i] = vertices[i].coord(v);
        row[k] = p.coord(v);
        m.push_back(std::move(row));
    }
    {
        std::vector<Rational> row(k + 1, Rational(1));
        m.push_back(std::move(row));
    }

    row_reduce(m);
    // After reduction to RREF: each nonzero row has a leading 1. A leading
    // 1 in the rhs column means the system is inconsistent; fewer than k
    // pivots among the unknown columns means the combination is not unique
    // (the vertex positions are affinely dependent).
    std::vector<Rational> solution(k);
    std::vector<bool> pivoted(k, false);
    for (const auto& r : m) {
        std::size_t lead = 0;
        while (lead < k + 1 && r[lead].is_zero()) ++lead;
        if (lead == k + 1) continue;   // zero row
        if (lead == k) return {};      // 0 = nonzero: inconsistent
        solution[lead] = r[k];
        pivoted[lead] = true;
    }
    for (bool p : pivoted) {
        if (!p) return {};  // affinely dependent vertices
    }
    return solution;
}

bool point_in_simplex(const BaryPoint& p,
                      const std::vector<BaryPoint>& vertices) {
    const std::vector<Rational> w = affine_coordinates(p, vertices);
    if (w.empty()) return false;
    for (const Rational& x : w) {
        if (x.is_negative()) return false;
    }
    return true;
}

std::optional<std::vector<Rational>> solve_linear_system(
    std::vector<std::vector<Rational>> matrix, std::vector<Rational> rhs) {
    require(matrix.size() == rhs.size(),
            "solve_linear_system: row count mismatch");
    if (matrix.empty()) return std::vector<Rational>{};
    const std::size_t cols = matrix[0].size();
    for (std::size_t r = 0; r < matrix.size(); ++r) {
        require(matrix[r].size() == cols,
                "solve_linear_system: ragged matrix");
        matrix[r].push_back(rhs[r]);
    }
    row_reduce(matrix);
    std::vector<Rational> solution(cols);
    std::vector<bool> pivoted(cols, false);
    for (const auto& row : matrix) {
        std::size_t lead = 0;
        while (lead < cols + 1 && row[lead].is_zero()) ++lead;
        if (lead == cols + 1) continue;  // zero row
        if (lead == cols) return std::nullopt;  // inconsistent
        solution[lead] = row[cols];
        pivoted[lead] = true;
    }
    for (bool p : pivoted) {
        if (!p) return std::nullopt;  // underdetermined
    }
    return solution;
}

Rational relative_volume(const std::vector<BaryPoint>& vertices,
                         const Simplex& base) {
    require(vertices.size() == base.size(),
            "relative_volume: vertex count must match base simplex");
    const std::vector<VertexId>& cols = base.vertices();
    const std::size_t k = vertices.size();
    // Matrix of barycentric coordinates; determinant = signed volume ratio.
    std::vector<std::vector<Rational>> m(k, std::vector<Rational>(k));
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            m[i][j] = vertices[i].coord(cols[j]);
        }
    }
    // Fraction-free-ish Gaussian elimination tracking the determinant.
    Rational det(1);
    for (std::size_t col = 0; col < k; ++col) {
        std::size_t pivot = col;
        while (pivot < k && m[pivot][col].is_zero()) ++pivot;
        if (pivot == k) return Rational(0);
        if (pivot != col) {
            std::swap(m[pivot], m[col]);
            det = -det;
        }
        det *= m[col][col];
        const Rational inv = Rational(1) / m[col][col];
        for (std::size_t i = col + 1; i < k; ++i) {
            if (m[i][col].is_zero()) continue;
            const Rational factor = m[i][col] * inv;
            for (std::size_t j = col; j < k; ++j) {
                m[i][j] -= factor * m[col][j];
            }
        }
    }
    return det.abs();
}

}  // namespace gact::topo
