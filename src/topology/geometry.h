// Exact geometry for geometric realizations (paper, Section 3.1).
//
// Points of |C| are functions alpha : V -> [0,1] with finite support in a
// simplex of C and sum 1. We represent them sparsely with exact rationals,
// which makes carrier computation (the support), point-in-simplex tests and
// subdivision-exactness volume checks exact rather than floating-point.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "topology/simplex.h"
#include "util/rational.h"

namespace gact::topo {

/// A point of a geometric realization, in barycentric coordinates over the
/// vertex ids of a base complex. Invariants: entries sorted by vertex id,
/// all coordinates strictly positive, coordinates sum to 1.
class BaryPoint {
public:
    BaryPoint() = default;

    /// From (vertex, weight) pairs; zero weights dropped, must sum to 1.
    explicit BaryPoint(std::vector<std::pair<VertexId, Rational>> coords);

    /// The base vertex v itself.
    static BaryPoint vertex(VertexId v);

    /// Affine combination sum(weights[i] * points[i]); weights must sum
    /// to 1 and be non-negative.
    static BaryPoint combination(const std::vector<BaryPoint>& points,
                                 const std::vector<Rational>& weights);

    /// The barycenter of the base simplex s.
    static BaryPoint barycenter(const Simplex& s);

    const std::vector<std::pair<VertexId, Rational>>& coords() const noexcept {
        return coords_;
    }

    /// Coordinate of base vertex v (zero if absent).
    Rational coord(VertexId v) const;

    /// The support: the minimal base simplex whose realization contains
    /// this point ("carrier").
    Simplex support() const;

    /// l1 distance, the metric the paper puts on |C|.
    Rational l1_distance(const BaryPoint& other) const;

    friend bool operator==(const BaryPoint& a, const BaryPoint& b) noexcept =
        default;
    friend bool operator<(const BaryPoint& a, const BaryPoint& b) noexcept {
        return a.coords_ < b.coords_;
    }

    std::string to_string() const;

private:
    std::vector<std::pair<VertexId, Rational>> coords_;
};

std::ostream& operator<<(std::ostream& os, const BaryPoint& p);

std::size_t hash_value(const BaryPoint& p) noexcept;

/// Is `p` in the closed realization of the geometric simplex spanned by
/// `vertices` (given by their positions)? Solved exactly: p must be a
/// non-negative affine combination of the vertex positions.
bool point_in_simplex(const BaryPoint& p, const std::vector<BaryPoint>& vertices);

/// The barycentric coordinates of `p` with respect to `vertices`, if `p`
/// lies in their affine hull and the combination is unique; empty otherwise.
/// A returned vector w satisfies sum w[i] = 1 and p = sum w[i]*vertices[i]
/// (w may have negative entries if p is outside the simplex).
std::vector<Rational> affine_coordinates(const BaryPoint& p,
                                         const std::vector<BaryPoint>& vertices);

/// Volume of the simplex spanned by `vertices` relative to the base simplex
/// whose vertex set is `base` (all vertex positions must be supported in
/// `base`). Returns |det| of the coordinate matrix; equals
/// vol(simplex)/vol(base). Requires |vertices| == |base|.
Rational relative_volume(const std::vector<BaryPoint>& vertices,
                         const Simplex& base);

/// Solve the linear system `matrix` * x = rhs exactly over the rationals
/// (rows x cols, row-major). Returns the solution when it exists and is
/// unique, nullopt otherwise (inconsistent or underdetermined).
std::optional<std::vector<Rational>> solve_linear_system(
    std::vector<std::vector<Rational>> matrix, std::vector<Rational> rhs);

}  // namespace gact::topo

template <>
struct std::hash<gact::topo::BaryPoint> {
    std::size_t operator()(const gact::topo::BaryPoint& p) const noexcept {
        return gact::topo::hash_value(p);
    }
};
