#include "topology/homology.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "util/require.h"

namespace gact::topo {

IntMatrix boundary_matrix(const SimplicialComplex& complex, int d) {
    require(d >= 0, "boundary_matrix: dimension must be >= 0");
    const std::vector<Simplex> chains = complex.simplices_of_dimension(d);

    if (d == 0) {
        // Augmentation: every vertex maps to the (formal) empty simplex.
        IntMatrix m;
        m.rows = 1;
        m.cols = chains.size();
        m.entries.assign(m.rows * m.cols, 1);
        return m;
    }

    const std::vector<Simplex> faces = complex.simplices_of_dimension(d - 1);
    std::map<Simplex, std::size_t> face_index;
    for (std::size_t i = 0; i < faces.size(); ++i) face_index[faces[i]] = i;

    IntMatrix m;
    m.rows = faces.size();
    m.cols = chains.size();
    m.entries.assign(m.rows * m.cols, 0);
    for (std::size_t c = 0; c < chains.size(); ++c) {
        const std::vector<Simplex> boundary = chains[c].boundary_faces();
        for (std::size_t i = 0; i < boundary.size(); ++i) {
            const std::int64_t sign = (i % 2 == 0) ? 1 : -1;
            m.at(face_index.at(boundary[i]), c) = sign;
        }
    }
    return m;
}

namespace {

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
    std::int64_t out = 0;
    if (__builtin_mul_overflow(a, b, &out)) {
        throw overflow_error("smith normal form: entry overflow");
    }
    return out;
}

std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
    std::int64_t out = 0;
    if (__builtin_sub_overflow(a, b, &out)) {
        throw overflow_error("smith normal form: entry overflow");
    }
    return out;
}

}  // namespace

std::vector<std::int64_t> smith_invariant_factors(IntMatrix m) {
    std::vector<std::int64_t> factors;
    std::size_t offset = 0;  // current top-left corner of the working block

    while (offset < m.rows && offset < m.cols) {
        // Find the nonzero entry of minimal absolute value in the block.
        std::size_t pr = 0;
        std::size_t pc = 0;
        std::int64_t best = 0;
        for (std::size_t r = offset; r < m.rows; ++r) {
            for (std::size_t c = offset; c < m.cols; ++c) {
                const std::int64_t v = std::abs(m.at(r, c));
                if (v != 0 && (best == 0 || v < best)) {
                    best = v;
                    pr = r;
                    pc = c;
                }
            }
        }
        if (best == 0) break;  // block is zero; done

        // Move pivot into place.
        for (std::size_t c = 0; c < m.cols; ++c)
            std::swap(m.at(offset, c), m.at(pr, c));
        for (std::size_t r = 0; r < m.rows; ++r)
            std::swap(m.at(r, offset), m.at(r, pc));

        const std::int64_t pivot = m.at(offset, offset);

        // Reduce the pivot row and column; if a remainder appears the loop
        // re-selects a smaller pivot next pass.
        bool reduced = true;
        for (std::size_t r = offset + 1; r < m.rows && reduced; ++r) {
            if (m.at(r, offset) % pivot != 0) reduced = false;
        }
        for (std::size_t c = offset + 1; c < m.cols && reduced; ++c) {
            if (m.at(offset, c) % pivot != 0) reduced = false;
        }
        if (!reduced) {
            // Make one elimination pass to shrink entries, then retry.
            for (std::size_t r = offset + 1; r < m.rows; ++r) {
                const std::int64_t q = m.at(r, offset) / pivot;
                if (q == 0) continue;
                for (std::size_t c = offset; c < m.cols; ++c) {
                    m.at(r, c) =
                        checked_sub(m.at(r, c), checked_mul(q, m.at(offset, c)));
                }
            }
            for (std::size_t c = offset + 1; c < m.cols; ++c) {
                const std::int64_t q = m.at(offset, c) / pivot;
                if (q == 0) continue;
                for (std::size_t r = offset; r < m.rows; ++r) {
                    m.at(r, c) =
                        checked_sub(m.at(r, c), checked_mul(q, m.at(r, offset)));
                }
            }
            continue;  // re-select pivot
        }

        // Clear the pivot row and column exactly.
        for (std::size_t r = offset + 1; r < m.rows; ++r) {
            const std::int64_t q = m.at(r, offset) / pivot;
            if (q == 0) continue;
            for (std::size_t c = offset; c < m.cols; ++c) {
                m.at(r, c) =
                    checked_sub(m.at(r, c), checked_mul(q, m.at(offset, c)));
            }
        }
        for (std::size_t c = offset + 1; c < m.cols; ++c) {
            const std::int64_t q = m.at(offset, c) / pivot;
            if (q == 0) continue;
            for (std::size_t r = offset; r < m.rows; ++r) {
                m.at(r, c) =
                    checked_sub(m.at(r, c), checked_mul(q, m.at(r, offset)));
            }
        }

        // Enforce divisibility into the rest of the block: if some entry is
        // not divisible by the pivot, fold its column in and redo.
        bool divides_all = true;
        for (std::size_t r = offset + 1; r < m.rows && divides_all; ++r) {
            for (std::size_t c = offset + 1; c < m.cols; ++c) {
                if (m.at(r, c) % pivot != 0) {
                    // Add column c to column offset and re-run this corner.
                    for (std::size_t rr = 0; rr < m.rows; ++rr) {
                        m.at(rr, offset) =
                            checked_sub(m.at(rr, offset), -m.at(rr, c));
                    }
                    divides_all = false;
                    break;
                }
            }
        }
        if (!divides_all) continue;

        factors.push_back(std::abs(pivot));
        ++offset;
    }
    return factors;
}

std::size_t matrix_rank(const IntMatrix& m) {
    return smith_invariant_factors(m).size();
}

std::vector<HomologyGroup> reduced_homology(const SimplicialComplex& complex) {
    require(!complex.is_empty(), "reduced_homology of the empty complex");
    const int dim = complex.dimension();
    // Invariant factors of each boundary operator; the augmentation is
    // boundary_matrix(_, 0).
    std::vector<std::vector<std::int64_t>> inv(dim + 2);
    std::vector<std::size_t> num_simplices(dim + 2, 0);
    for (int d = 0; d <= dim; ++d) {
        inv[d] = smith_invariant_factors(boundary_matrix(complex, d));
        num_simplices[d] = complex.simplices_of_dimension(d).size();
    }
    inv[dim + 1] = {};  // zero map from the (dim+1)-chains (none)

    std::vector<HomologyGroup> out(dim + 1);
    for (int d = 0; d <= dim; ++d) {
        const std::size_t rank_d = inv[d].size();        // rank of boundary_d
        const std::size_t rank_d1 = inv[d + 1].size();   // rank of boundary_{d+1}
        const std::size_t kernel = num_simplices[d] - rank_d;
        ensure(kernel >= rank_d1, "reduced_homology: negative betti number");
        out[d].betti = kernel - rank_d1;
        for (std::int64_t f : inv[d + 1]) {
            if (f > 1) out[d].torsion.push_back(f);
        }
    }
    return out;
}

bool is_k_connected(const SimplicialComplex& complex, int k) {
    if (k <= -2) return true;
    if (complex.is_empty()) return false;
    if (k == -1) return true;
    if (!complex.is_connected()) return false;
    if (k == 0) return true;
    const std::vector<HomologyGroup> h = reduced_homology(complex);
    for (int d = 1; d <= k && d < static_cast<int>(h.size()); ++d) {
        if (!h[d].is_trivial()) return false;
    }
    return true;
}

}  // namespace gact::topo
