// Simplicial homology over Z, via Smith normal form.
//
// Used to implement the computable proxy for k-connectivity needed by
// link-connectedness (paper, Definition 8.3): a complex is reported
// k-connected when it is non-empty, path-connected, and its reduced
// homology vanishes (free part and torsion) in dimensions 1..k. For the
// complexes this library checks (links of dimension <= 1, and contractible
// regions built by construction) the proxy coincides with true topological
// k-connectivity; see DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/simplicial_complex.h"

namespace gact::topo {

/// An integer matrix, row-major.
struct IntMatrix {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::int64_t> entries;  // rows * cols

    std::int64_t& at(std::size_t r, std::size_t c) {
        return entries[r * cols + c];
    }
    std::int64_t at(std::size_t r, std::size_t c) const {
        return entries[r * cols + c];
    }
};

/// The boundary operator from d-chains to (d-1)-chains of `complex`, with
/// simplices ordered as in simplices_of_dimension. For d == 0 returns the
/// augmentation map (one row of ones) used by reduced homology.
IntMatrix boundary_matrix(const SimplicialComplex& complex, int d);

/// Invariant factors (diagonal of the Smith normal form), nonzero entries
/// only, each dividing the next.
std::vector<std::int64_t> smith_invariant_factors(IntMatrix m);

/// Rank of an integer matrix (over Q).
std::size_t matrix_rank(const IntMatrix& m);

/// Description of one reduced homology group ~H_d = Z^betti + torsion.
struct HomologyGroup {
    std::size_t betti = 0;
    std::vector<std::int64_t> torsion;  // invariant factors > 1

    bool is_trivial() const noexcept { return betti == 0 && torsion.empty(); }
};

/// Reduced homology groups ~H_0 .. ~H_maxdim of a non-empty complex.
std::vector<HomologyGroup> reduced_homology(const SimplicialComplex& complex);

/// The k-connectivity proxy described above. Conventions follow the paper:
/// every complex (even empty) is k-connected for k <= -2; (-1)-connected
/// means non-empty; 0-connected means non-empty and path-connected.
bool is_k_connected(const SimplicialComplex& complex, int k);

}  // namespace gact::topo
