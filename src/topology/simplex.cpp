#include "topology/simplex.h"

#include <algorithm>
#include <ostream>

namespace gact::topo {

namespace {

std::vector<VertexId> sorted_unique(std::vector<VertexId> v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

}  // namespace

Simplex::Simplex(std::initializer_list<VertexId> vertices)
    : vertices_(sorted_unique(std::vector<VertexId>(vertices))) {}

Simplex::Simplex(std::vector<VertexId> vertices)
    : vertices_(sorted_unique(std::move(vertices))) {}

bool Simplex::contains(VertexId v) const noexcept {
    return std::binary_search(vertices_.begin(), vertices_.end(), v);
}

bool Simplex::is_face_of(const Simplex& other) const noexcept {
    return std::includes(other.vertices_.begin(), other.vertices_.end(),
                         vertices_.begin(), vertices_.end());
}

Simplex Simplex::union_with(const Simplex& other) const {
    std::vector<VertexId> out;
    out.reserve(vertices_.size() + other.vertices_.size());
    std::set_union(vertices_.begin(), vertices_.end(), other.vertices_.begin(),
                   other.vertices_.end(), std::back_inserter(out));
    Simplex s;
    s.vertices_ = std::move(out);
    return s;
}

Simplex Simplex::intersection_with(const Simplex& other) const {
    std::vector<VertexId> out;
    std::set_intersection(vertices_.begin(), vertices_.end(),
                          other.vertices_.begin(), other.vertices_.end(),
                          std::back_inserter(out));
    Simplex s;
    s.vertices_ = std::move(out);
    return s;
}

Simplex Simplex::difference(const Simplex& other) const {
    std::vector<VertexId> out;
    std::set_difference(vertices_.begin(), vertices_.end(),
                        other.vertices_.begin(), other.vertices_.end(),
                        std::back_inserter(out));
    Simplex s;
    s.vertices_ = std::move(out);
    return s;
}

Simplex Simplex::with(VertexId v) const {
    if (contains(v)) return *this;
    std::vector<VertexId> out = vertices_;
    out.insert(std::upper_bound(out.begin(), out.end(), v), v);
    Simplex s;
    s.vertices_ = std::move(out);
    return s;
}

Simplex Simplex::without(VertexId v) const {
    Simplex s;
    s.vertices_.reserve(vertices_.size());
    for (VertexId u : vertices_) {
        if (u != v) s.vertices_.push_back(u);
    }
    return s;
}

std::vector<Simplex> Simplex::faces() const {
    std::vector<Simplex> out;
    const std::size_t n = vertices_.size();
    require(n <= 24, "Simplex::faces: simplex too large to enumerate faces");
    const std::size_t total = (std::size_t{1} << n) - 1;
    out.reserve(total);
    for (std::size_t mask = 1; mask <= total; ++mask) {
        Simplex face;
        for (std::size_t i = 0; i < n; ++i) {
            if (mask & (std::size_t{1} << i)) face.vertices_.push_back(vertices_[i]);
        }
        out.push_back(std::move(face));
    }
    return out;
}

std::vector<Simplex> Simplex::faces_of_dimension(int d) const {
    std::vector<Simplex> out;
    if (d < 0 || d > dimension()) return out;
    // Enumerate (d+1)-subsets with the standard combination walk.
    const std::size_t k = static_cast<std::size_t>(d) + 1;
    const std::size_t n = vertices_.size();
    std::vector<std::size_t> idx(k);
    for (std::size_t i = 0; i < k; ++i) idx[i] = i;
    while (true) {
        Simplex face;
        face.vertices_.reserve(k);
        for (std::size_t i : idx) face.vertices_.push_back(vertices_[i]);
        out.push_back(std::move(face));
        // Advance the combination.
        std::size_t i = k;
        while (i > 0 && idx[i - 1] == n - k + i - 1) --i;
        if (i == 0) break;
        ++idx[i - 1];
        for (std::size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
    }
    return out;
}

std::vector<Simplex> Simplex::boundary_faces() const {
    std::vector<Simplex> out;
    out.reserve(vertices_.size());
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
        Simplex face;
        face.vertices_.reserve(vertices_.size() - 1);
        for (std::size_t j = 0; j < vertices_.size(); ++j) {
            if (j != i) face.vertices_.push_back(vertices_[j]);
        }
        out.push_back(std::move(face));
    }
    return out;
}

std::string Simplex::to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
        if (i > 0) out += " ";
        out += std::to_string(vertices_[i]);
    }
    out += "]";
    return out;
}

std::ostream& operator<<(std::ostream& os, const Simplex& s) {
    return os << s.to_string();
}

}  // namespace gact::topo
