// Abstract simplices: finite, sorted, duplicate-free vertex sets.
//
// Paper reference: Section 3.1. A simplex is a finite nonempty subset of
// the vertex set of a complex; its dimension is its cardinality minus one.
// This type also admits the empty simplex, which is convenient as a
// neutral element for joins and as the "carrier of nothing".
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/hash.h"
#include "util/require.h"

namespace gact::topo {

/// Vertex identifier within one simplicial complex.
using VertexId = std::uint32_t;

/// A simplex as a sorted set of vertex ids.
class Simplex {
public:
    /// The empty simplex (dimension -1).
    Simplex() = default;

    /// From an arbitrary list; sorted and deduplicated.
    Simplex(std::initializer_list<VertexId> vertices);
    explicit Simplex(std::vector<VertexId> vertices);

    /// Number of vertices.
    std::size_t size() const noexcept { return vertices_.size(); }
    bool empty() const noexcept { return vertices_.empty(); }

    /// Dimension = |vertices| - 1; the empty simplex has dimension -1.
    int dimension() const noexcept { return static_cast<int>(vertices_.size()) - 1; }

    const std::vector<VertexId>& vertices() const noexcept { return vertices_; }

    bool contains(VertexId v) const noexcept;

    /// Face relation: is this a subset of `other`?
    bool is_face_of(const Simplex& other) const noexcept;

    /// Set operations (all results are valid simplices).
    Simplex union_with(const Simplex& other) const;
    Simplex intersection_with(const Simplex& other) const;
    /// this \ other.
    Simplex difference(const Simplex& other) const;

    Simplex with(VertexId v) const;
    Simplex without(VertexId v) const;

    /// All faces of this simplex, including itself, excluding the empty
    /// simplex. 2^size - 1 results.
    std::vector<Simplex> faces() const;

    /// All faces of exactly dimension d.
    std::vector<Simplex> faces_of_dimension(int d) const;

    /// The codimension-1 faces (boundary facets), in the order obtained by
    /// dropping vertex i; this order defines boundary-operator signs.
    std::vector<Simplex> boundary_faces() const;

    friend bool operator==(const Simplex& a, const Simplex& b) noexcept = default;
    friend bool operator<(const Simplex& a, const Simplex& b) noexcept {
        return a.vertices_ < b.vertices_;
    }

    std::string to_string() const;

private:
    std::vector<VertexId> vertices_;
};

std::ostream& operator<<(std::ostream& os, const Simplex& s);

}  // namespace gact::topo

template <>
struct std::hash<gact::topo::Simplex> {
    std::size_t operator()(const gact::topo::Simplex& s) const noexcept {
        return gact::hash_range(s.vertices());
    }
};
