#include "topology/simplicial_complex.h"

#include <algorithm>
#include <unordered_map>

namespace gact::topo {

SimplicialComplex SimplicialComplex::from_facets(
    const std::vector<Simplex>& facets) {
    SimplicialComplex c;
    for (const Simplex& f : facets) c.add_simplex(f);
    return c;
}

void SimplicialComplex::add_simplex(const Simplex& s) {
    require(!s.empty(), "SimplicialComplex: cannot add the empty simplex");
    if (contains(s)) return;
    for (Simplex& face : s.faces()) simplices_.insert(std::move(face));
}

std::vector<Simplex> SimplicialComplex::simplices_of_dimension(int d) const {
    std::vector<Simplex> out;
    for (const Simplex& s : simplices_) {
        if (s.dimension() == d) out.push_back(s);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Simplex> SimplicialComplex::facets() const {
    // A simplex is maximal iff no coface obtained by adding one vertex of
    // the complex is present. Checking against all vertices is quadratic in
    // the worst case; group by dimension instead: s is a facet iff it is not
    // a face of any simplex of dimension dim(s)+1.
    std::vector<Simplex> out;
    std::unordered_set<Simplex> non_maximal;
    for (const Simplex& s : simplices_) {
        for (const Simplex& b : s.boundary_faces()) {
            if (!b.empty()) non_maximal.insert(b);
        }
    }
    for (const Simplex& s : simplices_) {
        if (non_maximal.count(s) == 0) out.push_back(s);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<VertexId> SimplicialComplex::vertex_ids() const {
    std::vector<VertexId> out;
    for (const Simplex& s : simplices_) {
        if (s.dimension() == 0) out.push_back(s.vertices()[0]);
    }
    std::sort(out.begin(), out.end());
    return out;
}

int SimplicialComplex::dimension() const {
    int d = -1;
    for (const Simplex& s : simplices_) d = std::max(d, s.dimension());
    return d;
}

bool SimplicialComplex::is_pure(int n) const {
    if (dimension() > n) return false;
    // Every simplex must be a face of some n-simplex. It suffices to check
    // maximality: every facet has dimension exactly n.
    for (const Simplex& f : facets()) {
        if (f.dimension() != n) return false;
    }
    return true;
}

SimplicialComplex SimplicialComplex::skeleton(int k) const {
    SimplicialComplex out;
    for (const Simplex& s : simplices_) {
        if (s.dimension() <= k) out.simplices_.insert(s);
    }
    return out;
}

std::vector<Simplex> SimplicialComplex::open_star(const Simplex& s) const {
    std::vector<Simplex> out;
    for (const Simplex& t : simplices_) {
        if (s.is_face_of(t)) out.push_back(t);
    }
    std::sort(out.begin(), out.end());
    return out;
}

SimplicialComplex SimplicialComplex::closed_star(const Simplex& s) const {
    SimplicialComplex out;
    for (const Simplex& t : open_star(s)) out.add_simplex(t);
    return out;
}

SimplicialComplex SimplicialComplex::link(const Simplex& s) const {
    SimplicialComplex out;
    for (const Simplex& t : simplices_) {
        if (t.intersection_with(s).empty() && contains(t.union_with(s))) {
            out.simplices_.insert(t);
        }
    }
    return out;
}

bool SimplicialComplex::is_subcomplex_of(const SimplicialComplex& other) const {
    for (const Simplex& s : simplices_) {
        if (!other.contains(s)) return false;
    }
    return true;
}

long long SimplicialComplex::euler_characteristic() const {
    long long chi = 0;
    for (const Simplex& s : simplices_) {
        chi += (s.dimension() % 2 == 0) ? 1 : -1;
    }
    return chi;
}

std::size_t SimplicialComplex::num_connected_components() const {
    // Union-find over vertices, joined along edges.
    std::vector<VertexId> verts = vertex_ids();
    std::unordered_map<VertexId, std::size_t> index;
    for (std::size_t i = 0; i < verts.size(); ++i) index[verts[i]] = i;

    std::vector<std::size_t> parent(verts.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    const auto find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    for (const Simplex& s : simplices_) {
        if (s.dimension() >= 1) {
            const std::size_t root = find(index.at(s.vertices()[0]));
            for (VertexId v : s.vertices()) parent[find(index.at(v))] = root;
        }
    }

    std::size_t components = 0;
    for (std::size_t i = 0; i < parent.size(); ++i) {
        if (find(i) == i) ++components;
    }
    return components;
}

}  // namespace gact::topo
