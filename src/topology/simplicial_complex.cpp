#include "topology/simplicial_complex.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>

namespace gact::topo {

SimplicialComplex SimplicialComplex::from_facets(
    const std::vector<Simplex>& facets) {
    SimplicialComplex c;
    // Facets with at most 4 vertices (all of subdivision output) take a
    // bulk path: every nonempty vertex subset is packed into a 128-bit
    // key (four 32-bit slots holding vertex id + 1, empty slots zero —
    // distinct subsets give distinct keys), the flat key list is sorted
    // and uniqued, and each distinct simplex is inserted exactly once
    // into a set reserved at its final size. Subset enumeration makes
    // the result downward closed by construction, and sorting flat PODs
    // is much cheaper than hash-probing the growing set once per
    // (facet, face) pair as the closure walk would. Larger facets — and
    // ids that would collide with the +1 encoding — fall back to
    // add_simplex, whose walk dedups against the bulk-inserted set.
    using Key = std::pair<std::uint64_t, std::uint64_t>;
    std::vector<Key> keys;
    std::vector<const Simplex*> big;
    std::size_t subset_count = 0;
    for (const Simplex& f : facets) {
        if (f.size() <= 4) subset_count += (std::size_t{1} << f.size()) - 1;
    }
    keys.reserve(subset_count);
    for (const Simplex& f : facets) {
        const std::vector<VertexId>& fv = f.vertices();
        const std::size_t n = fv.size();
        bool small = n >= 1 && n <= 4;
        if (small) {
            for (VertexId v : fv) {
                if (v == std::numeric_limits<VertexId>::max()) {
                    small = false;
                    break;
                }
            }
        }
        if (!small) {
            big.push_back(&f);
            continue;
        }
        for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
            std::uint64_t slot[4] = {0, 0, 0, 0};
            std::size_t k = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (mask & (1u << i)) {
                    slot[k++] = std::uint64_t{fv[i]} + 1;
                }
            }
            keys.emplace_back((slot[0] << 32) | slot[1],
                              (slot[2] << 32) | slot[3]);
        }
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    c.simplices_.reserve(keys.size() + big.size() * 4);
    for (const Key& key : keys) {
        std::vector<VertexId> verts;
        verts.reserve(4);
        for (std::uint64_t p : {key.first >> 32, key.first & 0xffffffffu,
                                key.second >> 32, key.second & 0xffffffffu}) {
            if (p != 0) verts.push_back(static_cast<VertexId>(p - 1));
        }
        c.simplices_.insert(Simplex(std::move(verts)));
    }
    for (const Simplex* f : big) c.add_simplex(*f);
    return c;
}

SimplicialComplex SimplicialComplex::from_closed(
    std::vector<Simplex> simplices) {
    SimplicialComplex c;
    c.simplices_.reserve(simplices.size());
    for (Simplex& s : simplices) {
        require(!s.empty(),
                "SimplicialComplex: cannot add the empty simplex");
        c.simplices_.insert(std::move(s));
    }
    return c;
}

void SimplicialComplex::add_simplex(const Simplex& s) {
    require(!s.empty(), "SimplicialComplex: cannot add the empty simplex");
    if (contains(s)) return;
    insert_closure(Simplex(s));
}

void SimplicialComplex::insert_closure(Simplex&& s) {
    // Walk the boundary instead of materializing all 2^n - 1 faces up
    // front: a face that is already present has its own closure present
    // (the set is downward closed by construction), so the walk stops at
    // the boundary of what is genuinely new. Adjacent facets share most
    // of their face lattice, which the all-faces version re-built and
    // re-hashed every time; the missing faces are probed through the
    // transparent hash with a reused scratch buffer, so only simplices
    // actually inserted allocate.
    std::vector<Simplex> stack;
    stack.push_back(std::move(s));
    std::vector<VertexId> scratch;
    while (!stack.empty()) {
        Simplex top = std::move(stack.back());
        stack.pop_back();
        // The same missing face can be stacked by several of its
        // cofaces before it lands in the set; later copies are no-ops.
        if (contains(top)) continue;
        const std::vector<VertexId>& tv = top.vertices();
        if (tv.size() > 1) {
            // scratch = tv with a hole, walked from position 0 to n-1.
            scratch.assign(tv.begin() + 1, tv.end());
            for (std::size_t i = 0;; ++i) {
                if (simplices_.find(scratch) == simplices_.end()) {
                    stack.emplace_back(std::vector<VertexId>(scratch));
                }
                if (i + 1 == tv.size()) break;
                scratch[i] = tv[i];
            }
        }
        simplices_.insert(std::move(top));
    }
}

std::vector<Simplex> SimplicialComplex::simplices_of_dimension(int d) const {
    std::vector<Simplex> out;
    for (const Simplex& s : simplices_) {
        if (s.dimension() == d) out.push_back(s);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Simplex> SimplicialComplex::facets() const {
    // A simplex is maximal iff no coface obtained by adding one vertex of
    // the complex is present. Checking against all vertices is quadratic in
    // the worst case; group by dimension instead: s is a facet iff it is not
    // a face of any simplex of dimension dim(s)+1.
    std::vector<Simplex> out;
    std::unordered_set<Simplex> non_maximal;
    for (const Simplex& s : simplices_) {
        for (const Simplex& b : s.boundary_faces()) {
            if (!b.empty()) non_maximal.insert(b);
        }
    }
    for (const Simplex& s : simplices_) {
        if (non_maximal.count(s) == 0) out.push_back(s);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<VertexId> SimplicialComplex::vertex_ids() const {
    std::vector<VertexId> out;
    for (const Simplex& s : simplices_) {
        if (s.dimension() == 0) out.push_back(s.vertices()[0]);
    }
    std::sort(out.begin(), out.end());
    return out;
}

int SimplicialComplex::dimension() const {
    int d = -1;
    for (const Simplex& s : simplices_) d = std::max(d, s.dimension());
    return d;
}

bool SimplicialComplex::is_pure(int n) const {
    if (dimension() > n) return false;
    // Every simplex must be a face of some n-simplex. It suffices to check
    // maximality: every facet has dimension exactly n.
    for (const Simplex& f : facets()) {
        if (f.dimension() != n) return false;
    }
    return true;
}

SimplicialComplex SimplicialComplex::skeleton(int k) const {
    SimplicialComplex out;
    for (const Simplex& s : simplices_) {
        if (s.dimension() <= k) out.simplices_.insert(s);
    }
    return out;
}

std::vector<Simplex> SimplicialComplex::open_star(const Simplex& s) const {
    std::vector<Simplex> out;
    for (const Simplex& t : simplices_) {
        if (s.is_face_of(t)) out.push_back(t);
    }
    std::sort(out.begin(), out.end());
    return out;
}

SimplicialComplex SimplicialComplex::closed_star(const Simplex& s) const {
    SimplicialComplex out;
    for (const Simplex& t : open_star(s)) out.add_simplex(t);
    return out;
}

SimplicialComplex SimplicialComplex::link(const Simplex& s) const {
    SimplicialComplex out;
    for (const Simplex& t : simplices_) {
        if (t.intersection_with(s).empty() && contains(t.union_with(s))) {
            out.simplices_.insert(t);
        }
    }
    return out;
}

bool SimplicialComplex::is_subcomplex_of(const SimplicialComplex& other) const {
    for (const Simplex& s : simplices_) {
        if (!other.contains(s)) return false;
    }
    return true;
}

long long SimplicialComplex::euler_characteristic() const {
    long long chi = 0;
    for (const Simplex& s : simplices_) {
        chi += (s.dimension() % 2 == 0) ? 1 : -1;
    }
    return chi;
}

std::size_t SimplicialComplex::num_connected_components() const {
    // Union-find over vertices, joined along edges.
    std::vector<VertexId> verts = vertex_ids();
    std::unordered_map<VertexId, std::size_t> index;
    for (std::size_t i = 0; i < verts.size(); ++i) index[verts[i]] = i;

    std::vector<std::size_t> parent(verts.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    const auto find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    for (const Simplex& s : simplices_) {
        if (s.dimension() >= 1) {
            const std::size_t root = find(index.at(s.vertices()[0]));
            for (VertexId v : s.vertices()) parent[find(index.at(v))] = root;
        }
    }

    std::size_t components = 0;
    for (std::size_t i = 0; i < parent.size(); ++i) {
        if (find(i) == i) ++components;
    }
    return components;
}

}  // namespace gact::topo
