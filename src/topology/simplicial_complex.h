// Simplicial complexes (paper, Section 3.1).
//
// A complex is stored as the downward-closed set of its simplices. All the
// combinatorial notions of Section 3.1 are provided: faces, skeleta, purity,
// open and closed stars, links, and connectivity of the 1-skeleton.
#pragma once

#include <unordered_set>
#include <vector>

#include "topology/simplex.h"

namespace gact::topo {

/// Transparent hash/equality for sets of simplices: lets the closure
/// builder probe with a raw sorted vertex vector, constructing a Simplex
/// (and allocating) only when the probe misses and an insert follows.
struct SimplexSetHash {
    using is_transparent = void;
    std::size_t operator()(const Simplex& s) const noexcept {
        return gact::hash_range(s.vertices());
    }
    std::size_t operator()(const std::vector<VertexId>& v) const noexcept {
        return gact::hash_range(v);
    }
};
struct SimplexSetEq {
    using is_transparent = void;
    bool operator()(const Simplex& a, const Simplex& b) const noexcept {
        return a == b;
    }
    bool operator()(const std::vector<VertexId>& a, const Simplex& b) const
        noexcept {
        return a == b.vertices();
    }
    bool operator()(const Simplex& a, const std::vector<VertexId>& b) const
        noexcept {
        return a.vertices() == b;
    }
};
using SimplexSet = std::unordered_set<Simplex, SimplexSetHash, SimplexSetEq>;

/// A finite simplicial complex over vertex ids.
class SimplicialComplex {
public:
    SimplicialComplex() = default;

    /// Build the downward closure of the given facets.
    static SimplicialComplex from_facets(const std::vector<Simplex>& facets);

    /// Build from a simplex list that is already closed under faces
    /// (every face of every entry appears in the list). Skips the
    /// per-simplex closure walk of add_simplex — the caller vouches for
    /// closedness, e.g. because the list is the image of a closed set
    /// under a vertex map.
    static SimplicialComplex from_closed(std::vector<Simplex> simplices);

    /// Insert a simplex together with all its faces.
    void add_simplex(const Simplex& s);

    bool contains(const Simplex& s) const { return simplices_.count(s) != 0; }
    bool contains_vertex(VertexId v) const { return contains(Simplex{v}); }

    bool is_empty() const noexcept { return simplices_.empty(); }

    /// Number of simplices (all dimensions).
    std::size_t size() const noexcept { return simplices_.size(); }

    /// All simplices, unordered.
    const SimplexSet& simplices() const noexcept { return simplices_; }

    /// All simplices of dimension d, sorted for determinism.
    std::vector<Simplex> simplices_of_dimension(int d) const;

    /// The maximal simplices, sorted for determinism.
    std::vector<Simplex> facets() const;

    /// Vertex ids present in the complex, sorted.
    std::vector<VertexId> vertex_ids() const;

    /// Largest simplex dimension; -1 for the empty complex.
    int dimension() const;

    /// Is every simplex a face of a simplex of dimension n (and none larger)?
    /// (Paper: "pure of dimension n".)
    bool is_pure(int n) const;

    /// Pure of its own (maximal) dimension.
    bool is_pure() const { return is_empty() || is_pure(dimension()); }

    /// Subcomplex of simplices of dimension <= k ("k-skeleton").
    SimplicialComplex skeleton(int k) const;

    /// Open star of s: all simplices having s as a face. Not a complex.
    std::vector<Simplex> open_star(const Simplex& s) const;

    /// Closed star: smallest subcomplex containing the open star.
    SimplicialComplex closed_star(const Simplex& s) const;

    /// Link of s: closed_star(s) minus open_star(s); equivalently the
    /// simplices t disjoint from s with t ∪ s in the complex.
    SimplicialComplex link(const Simplex& s) const;

    bool is_subcomplex_of(const SimplicialComplex& other) const;

    /// Euler characteristic: sum over d of (-1)^d (#d-simplices).
    long long euler_characteristic() const;

    /// Connected components of the 1-skeleton (isolated vertices count).
    std::size_t num_connected_components() const;

    /// True iff non-empty and a single connected component.
    bool is_connected() const {
        return !is_empty() && num_connected_components() == 1;
    }

    friend bool operator==(const SimplicialComplex& a,
                           const SimplicialComplex& b) {
        return a.simplices_ == b.simplices_;
    }

private:
    /// Insert `s` (known absent) and whatever part of its face closure
    /// is missing, consuming the simplices instead of copying them.
    void insert_closure(Simplex&& s);

    SimplexSet simplices_;
};

}  // namespace gact::topo
