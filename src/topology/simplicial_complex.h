// Simplicial complexes (paper, Section 3.1).
//
// A complex is stored as the downward-closed set of its simplices. All the
// combinatorial notions of Section 3.1 are provided: faces, skeleta, purity,
// open and closed stars, links, and connectivity of the 1-skeleton.
#pragma once

#include <unordered_set>
#include <vector>

#include "topology/simplex.h"

namespace gact::topo {

/// A finite simplicial complex over vertex ids.
class SimplicialComplex {
public:
    SimplicialComplex() = default;

    /// Build the downward closure of the given facets.
    static SimplicialComplex from_facets(const std::vector<Simplex>& facets);

    /// Insert a simplex together with all its faces.
    void add_simplex(const Simplex& s);

    bool contains(const Simplex& s) const { return simplices_.count(s) != 0; }
    bool contains_vertex(VertexId v) const { return contains(Simplex{v}); }

    bool is_empty() const noexcept { return simplices_.empty(); }

    /// Number of simplices (all dimensions).
    std::size_t size() const noexcept { return simplices_.size(); }

    /// All simplices, unordered.
    const std::unordered_set<Simplex>& simplices() const noexcept {
        return simplices_;
    }

    /// All simplices of dimension d, sorted for determinism.
    std::vector<Simplex> simplices_of_dimension(int d) const;

    /// The maximal simplices, sorted for determinism.
    std::vector<Simplex> facets() const;

    /// Vertex ids present in the complex, sorted.
    std::vector<VertexId> vertex_ids() const;

    /// Largest simplex dimension; -1 for the empty complex.
    int dimension() const;

    /// Is every simplex a face of a simplex of dimension n (and none larger)?
    /// (Paper: "pure of dimension n".)
    bool is_pure(int n) const;

    /// Pure of its own (maximal) dimension.
    bool is_pure() const { return is_empty() || is_pure(dimension()); }

    /// Subcomplex of simplices of dimension <= k ("k-skeleton").
    SimplicialComplex skeleton(int k) const;

    /// Open star of s: all simplices having s as a face. Not a complex.
    std::vector<Simplex> open_star(const Simplex& s) const;

    /// Closed star: smallest subcomplex containing the open star.
    SimplicialComplex closed_star(const Simplex& s) const;

    /// Link of s: closed_star(s) minus open_star(s); equivalently the
    /// simplices t disjoint from s with t ∪ s in the complex.
    SimplicialComplex link(const Simplex& s) const;

    bool is_subcomplex_of(const SimplicialComplex& other) const;

    /// Euler characteristic: sum over d of (-1)^d (#d-simplices).
    long long euler_characteristic() const;

    /// Connected components of the 1-skeleton (isolated vertices count).
    std::size_t num_connected_components() const;

    /// True iff non-empty and a single connected component.
    bool is_connected() const {
        return !is_empty() && num_connected_components() == 1;
    }

    friend bool operator==(const SimplicialComplex& a,
                           const SimplicialComplex& b) {
        return a.simplices_ == b.simplices_;
    }

private:
    std::unordered_set<Simplex> simplices_;
};

}  // namespace gact::topo
