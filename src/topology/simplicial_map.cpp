#include "topology/simplicial_map.h"

#include <map>

namespace gact::topo {

VertexId SimplicialMap::apply(VertexId v) const {
    const auto it = vertex_map_.find(v);
    require(it != vertex_map_.end(), "SimplicialMap: vertex not in domain");
    return it->second;
}

Simplex SimplicialMap::apply(const Simplex& s) const {
    std::vector<VertexId> image;
    image.reserve(s.size());
    for (VertexId v : s.vertices()) image.push_back(apply(v));
    return Simplex(std::move(image));
}

BaryPoint SimplicialMap::apply(const BaryPoint& p) const {
    std::map<VertexId, Rational> acc;
    for (const auto& [v, w] : p.coords()) acc[apply(v)] += w;
    std::vector<std::pair<VertexId, Rational>> coords(acc.begin(), acc.end());
    return BaryPoint(std::move(coords));
}

SimplicialMap SimplicialMap::then(const SimplicialMap& g) const {
    std::unordered_map<VertexId, VertexId> composed;
    composed.reserve(vertex_map_.size());
    for (const auto& [v, image] : vertex_map_) composed[v] = g.apply(image);
    return SimplicialMap(std::move(composed));
}

bool SimplicialMap::is_simplicial(const SimplicialComplex& domain,
                                  const SimplicialComplex& codomain) const {
    for (VertexId v : domain.vertex_ids()) {
        if (!is_defined_at(v)) return false;
        if (!codomain.contains_vertex(apply(v))) return false;
    }
    // It suffices to check facets: images of faces are faces of images.
    for (const Simplex& f : domain.facets()) {
        if (!codomain.contains(apply(f))) return false;
    }
    return true;
}

bool SimplicialMap::is_noncollapsing(const SimplicialComplex& domain) const {
    for (const Simplex& f : domain.facets()) {
        if (apply(f).dimension() != f.dimension()) return false;
    }
    return true;
}

bool SimplicialMap::is_chromatic(const ChromaticComplex& domain,
                                 const ChromaticComplex& codomain) const {
    for (VertexId v : domain.vertex_ids()) {
        if (!is_defined_at(v)) return false;
        if (domain.color(v) != codomain.color(apply(v))) return false;
    }
    return true;
}

}  // namespace gact::topo
