// Simplicial and chromatic maps (paper, Sections 3.1-3.2).
//
// A simplicial map is induced by a vertex map; it is chromatic when it
// preserves colors (and is then automatically noncollapsing). The geometric
// realization |f| acts on barycentric points by pushing weights forward.
#pragma once

#include <unordered_map>

#include "topology/chromatic_complex.h"
#include "topology/geometry.h"

namespace gact::topo {

/// A vertex-induced map between simplicial complexes.
class SimplicialMap {
public:
    SimplicialMap() = default;

    explicit SimplicialMap(std::unordered_map<VertexId, VertexId> vertex_map)
        : vertex_map_(std::move(vertex_map)) {}

    /// Define (or redefine) the image of one vertex.
    void set(VertexId v, VertexId image) { vertex_map_[v] = image; }

    bool is_defined_at(VertexId v) const { return vertex_map_.count(v) != 0; }

    VertexId apply(VertexId v) const;

    /// Image of a simplex: the union of its vertex images.
    Simplex apply(const Simplex& s) const;

    /// Push a barycentric point forward: |f|(alpha)(v') = sum over
    /// preimages of v' of alpha(v).
    BaryPoint apply(const BaryPoint& p) const;

    /// g after f (this is f).
    SimplicialMap then(const SimplicialMap& g) const;

    std::size_t size() const noexcept { return vertex_map_.size(); }
    const std::unordered_map<VertexId, VertexId>& vertex_map() const noexcept {
        return vertex_map_;
    }

    /// Is this a simplicial map from `domain` into `codomain`? Requires
    /// every vertex of domain to be mapped and every simplex image to be a
    /// simplex of codomain.
    bool is_simplicial(const SimplicialComplex& domain,
                       const SimplicialComplex& codomain) const;

    /// Does the map preserve simplex dimension on `domain`?
    bool is_noncollapsing(const SimplicialComplex& domain) const;

    /// Does the map preserve colors?
    bool is_chromatic(const ChromaticComplex& domain,
                      const ChromaticComplex& codomain) const;

private:
    std::unordered_map<VertexId, VertexId> vertex_map_;
};

}  // namespace gact::topo
