#include "topology/subdivision.h"

#include <algorithm>

#include "exec/for_index.h"
#include "topology/combinatorics.h"

namespace gact::topo {

SubdividedComplex SubdividedComplex::identity(const ChromaticComplex& base) {
    SubdividedComplex out;
    out.base_ = base;
    out.complex_ = base;
    const std::vector<VertexId> verts = base.vertex_ids();
    VertexId max_id = 0;
    for (VertexId v : verts) max_id = std::max(max_id, v);
    out.position_.resize(verts.empty() ? 0 : max_id + 1);
    for (VertexId v : verts) {
        out.position_[v] = BaryPoint::vertex(v);
        out.position_index_.emplace(
            std::make_pair(out.position_[v], base.color(v)), v);
    }
    out.depth_ = 0;
    return out;
}

SubdividedComplex SubdividedComplex::chromatic_subdivision(
    unsigned num_threads) const {
    return subdivide_impl([](const Simplex&) { return false; },
                          num_threads);
}

SubdividedComplex SubdividedComplex::chromatic_subdivision_with_termination(
    const std::function<bool(const Simplex&)>& terminated,
    unsigned num_threads) const {
    return subdivide_impl(terminated, num_threads);
}

SubdividedComplex SubdividedComplex::subdivide_impl(
    const std::function<bool(const Simplex&)>& terminated,
    unsigned num_threads) const {
    SubdividedComplex out;
    out.base_ = base_;
    out.depth_ = depth_ + 1;


    using Key = std::pair<VertexId, Simplex>;

    // Key for a subdivision vertex: the pair (p, tau) with the collapse
    // rule of Section 6.1 applied: a terminated non-singleton tau collapses
    // the pair onto (p, {p}).
    const auto canonical_key = [&](VertexId p, const Simplex& tau) -> Key {
        if (tau.size() > 1 && terminated(tau)) return {p, Simplex{p}};
        return {p, tau};
    };

    // Phase 1 — generate the facets of the (partial) subdivision as
    // canonical-key tuples, one work unit per parent facet: for every
    // ordered partition of the parent's vertices, the simplex of pairs
    // (v, prefix-union up to v's block), collapsed where terminated.
    // Pure reads of immutable state, so the units shard across threads;
    // the partition tables are precomputed once per facet size instead
    // of per facet.
    const std::vector<Simplex> parents = complex_.facets();
    // Per facet size n: each ordered partition flattened to the sequence
    // of (vertex index, prefix-union bitmask) pairs its keys come from.
    // The pair tables depend only on n, so per parent the keys reduce to
    // table lookups instead of re-deriving prefix simplices per tuple.
    using KeyRef = std::pair<std::uint32_t, std::uint32_t>;
    std::map<std::size_t, std::vector<std::vector<KeyRef>>> pairs_by_size;
    for (const Simplex& parent : parents) {
        const std::size_t n = parent.size();
        if (pairs_by_size.find(n) != pairs_by_size.end()) continue;
        std::vector<std::vector<KeyRef>> pair_parts;
        for (const OrderedIndexPartition& part : ordered_partitions(n)) {
            std::vector<KeyRef> refs;
            refs.reserve(n);
            std::uint32_t mask = 0;
            for (const std::vector<std::size_t>& block : part) {
                for (std::size_t i : block) mask |= std::uint32_t{1} << i;
                for (std::size_t i : block) {
                    refs.emplace_back(static_cast<std::uint32_t>(i), mask);
                }
            }
            pair_parts.push_back(std::move(refs));
        }
        pairs_by_size.emplace(n, std::move(pair_parts));
    }
    // Per parent: the distinct canonical keys in first-occurrence order,
    // plus the facet tuples as indices into that table. A parent of size
    // n has at most n * 2^(n-1) distinct (p, tau) pairs but n * |ordered
    // partitions| key slots, so deduplicating locally — and calling
    // `terminated` once per distinct prefix, not once per slot — is
    // where the per-facet work collapses.
    struct ParentKeys {
        std::vector<Key> table;  // distinct keys, first-occurrence order
        std::vector<std::vector<std::uint32_t>> tuples;  // table indices
    };
    std::vector<ParentKeys> generated(parents.size());
    exec::for_index(exec::Scheduler::shared(), parents.size(), num_threads,
                    [&](std::size_t pi) {
        const std::vector<VertexId>& pv = parents[pi].vertices();
        const std::size_t n = pv.size();
        const std::vector<std::vector<KeyRef>>& parts = pairs_by_size.at(n);
        ParentKeys& pk = generated[pi];
        // A terminated parent collapses wholesale: every prefix union tau
        // is a face of the parent, hence terminated (the predicate is
        // face-closed), so every key collapses to (p, {p}) and all
        // partitions produce the same facet — the parent itself. Emit it
        // once, with keys in the first partition's block order, which is
        // exactly the first-occurrence order the full enumeration would
        // have produced: vertex ids, facets, and geometry stay
        // bit-identical while the per-facet work drops from
        // |partitions| tuples to one.
        if (n > 1 && terminated(parents[pi])) {
            std::vector<std::uint32_t> tuple;
            tuple.reserve(n);
            for (const KeyRef& ref : parts.front()) {
                tuple.push_back(static_cast<std::uint32_t>(pk.table.size()));
                pk.table.push_back({pv[ref.first], Simplex{pv[ref.first]}});
            }
            pk.tuples.push_back(std::move(tuple));
            return;
        }
        std::vector<std::int32_t> slot_of(n << n, -1);  // (i, mask) slots
        pk.tuples.reserve(parts.size());
        for (const std::vector<KeyRef>& part : parts) {
            std::vector<std::uint32_t> tuple;
            tuple.reserve(n);
            for (const KeyRef& ref : part) {
                std::int32_t& slot =
                    slot_of[(static_cast<std::size_t>(ref.first) << n) |
                            ref.second];
                if (slot < 0) {
                    std::vector<VertexId> tau;
                    for (std::size_t b = 0; b < n; ++b) {
                        if (ref.second & (std::uint32_t{1} << b)) {
                            tau.push_back(pv[b]);
                        }
                    }
                    slot = static_cast<std::int32_t>(pk.table.size());
                    pk.table.push_back(canonical_key(
                        pv[ref.first], Simplex{std::move(tau)}));
                }
                tuple.push_back(static_cast<std::uint32_t>(slot));
            }
            pk.tuples.push_back(std::move(tuple));
        }
    });


    // Phase 2 — intern the keys in (parent, partition, block) order:
    // first-occurrence order, and with it every vertex id, matches the
    // sequential build exactly whatever num_threads was. (A duplicate in
    // a parent's table — two prefixes collapsing onto the same (p, {p})
    // — interns to the already-assigned id, so per-parent deduplication
    // preserves that order.) Geometry is deferred to phase 3 so the
    // exact rational arithmetic also shards.
    std::unordered_map<VertexId, Color> colors;
    std::vector<Simplex> facets;
    std::vector<const Key*> key_of;  // new vertex id -> its map key
    const auto intern = [&](const Key& key) -> VertexId {
        const auto it = out.vertex_index_.find(key);
        if (it != out.vertex_index_.end()) return it->second;
        const VertexId id = static_cast<VertexId>(key_of.size());
        const auto inserted = out.vertex_index_.emplace(key, id).first;
        key_of.push_back(&inserted->first);  // map nodes are stable
        out.provenance_.push_back(Provenance{key.first, key.second});
        colors[id] = complex_.color(key.first);
        return id;
    };
    std::vector<VertexId> global_of;
    for (const ParentKeys& pk : generated) {
        global_of.clear();
        global_of.reserve(pk.table.size());
        for (const Key& key : pk.table) global_of.push_back(intern(key));
        for (const std::vector<std::uint32_t>& tuple : pk.tuples) {
            std::vector<VertexId> verts;
            verts.reserve(tuple.size());
            for (std::uint32_t ti : tuple) verts.push_back(global_of[ti]);
            facets.emplace_back(std::move(verts));
        }
    }


    // Phase 3 — exact positions per Section 3.2, one work unit per new
    // vertex (a singleton tau keeps the parent vertex's position), then
    // the (position, color) index, inserted in ascending id order so
    // find_vertex keeps returning the smallest matching id.
    out.position_.resize(key_of.size());
    exec::for_index(exec::Scheduler::shared(), key_of.size(), num_threads,
                    [&](std::size_t id) {
        const auto& [p, t] = *key_of[id];
        if (t.size() == 1) {
            out.position_[id] = position(p);
            return;
        }
        const auto k = static_cast<std::int64_t>(t.size());
        std::vector<BaryPoint> pts;
        std::vector<Rational> weights;
        pts.push_back(position(p));
        weights.emplace_back(1, 2 * k - 1);
        for (VertexId q : t.vertices()) {
            if (q == p) continue;
            pts.push_back(position(q));
            weights.emplace_back(2, 2 * k - 1);
        }
        out.position_[id] = BaryPoint::combination(pts, weights);
    });
    for (std::size_t id = 0; id < out.position_.size(); ++id) {
        out.position_index_.emplace(
            std::make_pair(out.position_[id],
                           colors.at(static_cast<VertexId>(id))),
            static_cast<VertexId>(id));
    }

    std::sort(facets.begin(), facets.end());
    facets.erase(std::unique(facets.begin(), facets.end()), facets.end());

    SimplicialComplex closure = SimplicialComplex::from_facets(facets);
    // Trusted: the chromatic subdivision colors each new vertex with the
    // color of the original-complex vertex it replaces, facet by facet —
    // proper coloring is structural here.
    out.complex_ =
        ChromaticComplex::trusted(std::move(closure), std::move(colors));
    return out;
}

SubdividedComplex SubdividedComplex::iterated_chromatic(
    const ChromaticComplex& base, int k) {
    require(k >= 0, "iterated_chromatic: negative depth");
    SubdividedComplex out = identity(base);
    for (int i = 0; i < k; ++i) out = out.chromatic_subdivision();
    return out;
}

SubdividedComplex SubdividedComplex::barycentric_subdivision() const {
    SubdividedComplex out;
    out.base_ = base_;
    out.depth_ = depth_ + 1;

    std::unordered_map<VertexId, Color> colors;
    std::map<Simplex, VertexId> barycenter_id;
    const auto intern = [&](const Simplex& sigma) -> VertexId {
        const auto it = barycenter_id.find(sigma);
        if (it != barycenter_id.end()) return it->second;
        const VertexId id = static_cast<VertexId>(out.position_.size());
        barycenter_id.emplace(sigma, id);
        // Barycenter position, expressed in base coordinates.
        std::vector<BaryPoint> pts;
        std::vector<Rational> weights;
        const Rational w(1, static_cast<std::int64_t>(sigma.size()));
        for (VertexId v : sigma.vertices()) {
            pts.push_back(position(v));
            weights.push_back(w);
        }
        out.position_.push_back(BaryPoint::combination(pts, weights));
        out.provenance_.push_back(
            Provenance{sigma.vertices().front(), sigma});
        out.vertex_index_.emplace(
            std::make_pair(sigma.vertices().front(), sigma), id);
        colors[id] = static_cast<Color>(sigma.dimension());
        out.position_index_.emplace(
            std::make_pair(out.position_.back(), colors[id]), id);
        return id;
    };

    // Facets of Bary(C): flags sigma_0 < sigma_1 < ... < sigma_m of
    // simplices of C with sigma_m a facet.
    std::vector<Simplex> facets;
    for (const Simplex& f : complex_.facets()) {
        // Enumerate flags ending at f: permutations of f's vertices define
        // maximal flags; build them from vertex orderings.
        const std::vector<VertexId>& pv = f.vertices();
        for (const std::vector<std::size_t>& perm : all_permutations(pv.size())) {
            std::vector<VertexId> verts;
            Simplex prefix;
            for (std::size_t i : perm) {
                prefix = prefix.with(pv[i]);
                verts.push_back(intern(prefix));
            }
            facets.emplace_back(std::move(verts));
        }
    }
    std::sort(facets.begin(), facets.end());
    facets.erase(std::unique(facets.begin(), facets.end()), facets.end());

    out.complex_ = ChromaticComplex(SimplicialComplex::from_facets(facets),
                                    std::move(colors));
    return out;
}

const BaryPoint& SubdividedComplex::position(VertexId v) const {
    require(v < position_.size(), "SubdividedComplex: unknown vertex");
    return position_[v];
}

Simplex SubdividedComplex::carrier_of(const Simplex& s) const {
    Simplex out;
    for (VertexId v : s.vertices()) out = out.union_with(carrier(v));
    return out;
}

std::vector<BaryPoint> SubdividedComplex::positions_of(const Simplex& s) const {
    std::vector<BaryPoint> out;
    out.reserve(s.size());
    for (VertexId v : s.vertices()) out.push_back(position(v));
    return out;
}

const SubdividedComplex::Provenance& SubdividedComplex::provenance(
    VertexId v) const {
    require(depth_ > 0, "SubdividedComplex: no provenance at depth 0");
    require(v < provenance_.size(), "SubdividedComplex: unknown vertex");
    return provenance_[v];
}

VertexId SubdividedComplex::vertex_for(VertexId parent_vertex,
                                       const Simplex& parent_simplex) const {
    require(depth_ > 0, "SubdividedComplex: vertex_for requires depth > 0");
    const auto it =
        vertex_index_.find(std::make_pair(parent_vertex, parent_simplex));
    require(it != vertex_index_.end(),
            "SubdividedComplex: no vertex for (p, tau); tau may be terminated");
    return it->second;
}

std::optional<VertexId> SubdividedComplex::find_vertex(
    const BaryPoint& position, Color color) const {
    const auto it = position_index_.find(std::make_pair(position, color));
    if (it == position_index_.end()) return std::nullopt;
    return it->second;
}

Simplex SubdividedComplex::facet_for_partition(
    const Simplex& parent_facet,
    const std::vector<std::vector<VertexId>>& blocks) const {
    require(depth_ > 0, "facet_for_partition requires depth > 0");
    std::vector<VertexId> verts;
    Simplex prefix;
    std::size_t covered = 0;
    for (const std::vector<VertexId>& block : blocks) {
        require(!block.empty(), "facet_for_partition: empty block");
        for (VertexId v : block) {
            require(parent_facet.contains(v),
                    "facet_for_partition: block vertex not in facet");
            prefix = prefix.with(v);
        }
        covered += block.size();
        for (VertexId v : block) {
            // Look up through the canonical (collapsed) key.
            auto it = vertex_index_.find(std::make_pair(v, prefix));
            if (it == vertex_index_.end()) {
                it = vertex_index_.find(std::make_pair(v, Simplex{v}));
            }
            require(it != vertex_index_.end(),
                    "facet_for_partition: missing subdivision vertex");
            verts.push_back(it->second);
        }
    }
    require(covered == parent_facet.size(),
            "facet_for_partition: blocks must partition the facet");
    return Simplex(std::move(verts));
}

SimplicialMap SubdividedComplex::retraction_to_parent(
    const ChromaticComplex& parent) const {
    require(depth_ > 0, "retraction_to_parent requires depth > 0");
    std::unordered_map<VertexId, VertexId> vm;
    for (VertexId v : complex_.vertex_ids()) {
        vm[v] = provenance_[v].parent_vertex;
    }
    SimplicialMap map(std::move(vm));
    ensure(map.is_simplicial(complex_.complex(), parent.complex()),
           "retraction_to_parent: not simplicial");
    return map;
}

std::vector<Simplex> SubdividedComplex::facets_containing(
    const BaryPoint& p) const {
    std::vector<Simplex> out;
    for (const Simplex& f : complex_.facets()) {
        if (point_in_simplex(p, positions_of(f))) out.push_back(f);
    }
    return out;
}

void SubdividedComplex::verify_subdivision_exactness() const {
    // Every facet must be non-degenerate within its carrier.
    for (const Simplex& f : complex_.facets()) {
        const Simplex c = carrier_of(f);
        ensure(f.dimension() == c.dimension(),
               "subdivision exactness: facet " + f.to_string() +
                   " degenerate in carrier " + c.to_string());
        ensure(!relative_volume(positions_of(f), c).is_zero(),
               "subdivision exactness: zero-volume facet " + f.to_string());
    }
    for (const Simplex& base_facet : base_.facets()) {
        Rational total;
        for (const Simplex& f : complex_.facets()) {
            if (!carrier_of(f).is_face_of(base_facet)) continue;
            // Only full-dimensional pieces contribute volume.
            if (f.dimension() != base_facet.dimension()) continue;
            if (!(carrier_of(f) == base_facet)) continue;
            const Rational vol = relative_volume(positions_of(f), base_facet);
            ensure(!vol.is_zero(),
                   "subdivision exactness: degenerate facet " + f.to_string());
            total += vol;
        }
        ensure(total == Rational(1),
               "subdivision exactness: volumes sum to " + total.to_string() +
                   " on base facet " + base_facet.to_string());
    }
}

}  // namespace gact::topo
