// Standard chromatic subdivisions with exact geometry (paper, Section 3.2),
// plus the partial ("terminating") variant of Section 6.1.
//
// A SubdividedComplex is a chromatic complex together with
//  * a base chromatic complex it subdivides,
//  * an exact rational position in |base| for every vertex (from which the
//    carrier in the base complex is the coordinate support), and
//  * for complexes produced by a subdivision step, the provenance of every
//    vertex: the pair (p, tau) of Section 3.2, where tau is a simplex of
//    the parent complex and p a vertex of tau.
//
// The vertices of Chr C are the pairs (p, tau); the vertex (p, {p}) is
// identified with the parent vertex p. The facets of Chr C inside a parent
// facet F correspond to the ordered set partitions of F's vertices: for
// partition (B_1, .., B_r), the facet is { (v, B_1 ∪ .. ∪ B_{j(v)}) } where
// j(v) is v's block. Geometrically, vertex (p, tau) sits at
//   1/(2k-1) * pos(p) + 2/(2k-1) * sum_{q in tau, q != p} pos(q),
// with k = |tau| (paper, Section 3.2).
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "topology/chromatic_complex.h"
#include "topology/geometry.h"
#include "topology/simplicial_map.h"

namespace gact::topo {

/// A chromatic complex realized as a subdivision of a base complex.
class SubdividedComplex {
public:
    /// An empty placeholder; assign a real subdivision before use.
    SubdividedComplex() = default;

    /// The trivial subdivision: the base complex itself.
    static SubdividedComplex identity(const ChromaticComplex& base);

    /// One standard chromatic subdivision step applied to this complex.
    /// `num_threads > 1` shards the build into per-parent-facet work
    /// units (see chromatic_subdivision_with_termination).
    SubdividedComplex chromatic_subdivision(unsigned num_threads = 1) const;

    /// One *partial* chromatic subdivision step (Section 6.1): simplices
    /// for which `terminated` returns true are not subdivided. A vertex
    /// (p, tau) with tau terminated and |tau| > 1 is collapsed onto the
    /// parent vertex p; facets are the images of the ordinary Chr facets
    /// under this collapse. `terminated` must be closed under faces on the
    /// simplices where it returns true (a subcomplex predicate).
    ///
    /// `num_threads > 1` shards the build across a self-scheduling pool
    /// in per-parent-facet work units: facet-key generation and the
    /// exact rational vertex geometry run in parallel, with vertex
    /// interning merged in the sequential build's enumeration order —
    /// the result (every vertex id, facet, position, provenance) is
    /// bit-identical to the single-threaded build. `terminated` must
    /// then be safe for concurrent calls (a pure predicate over an
    /// immutable complex is).
    SubdividedComplex chromatic_subdivision_with_termination(
        const std::function<bool(const Simplex&)>& terminated,
        unsigned num_threads = 1) const;

    /// k iterated chromatic subdivisions of the base complex.
    static SubdividedComplex iterated_chromatic(const ChromaticComplex& base,
                                                int k);

    /// The barycentric subdivision, colored by simplex dimension (the
    /// barycenter of a d-simplex gets color d; flags make this proper).
    /// Note this changes the coloring scheme; it is provided for the
    /// classical approximation results of Section 8.1.
    SubdividedComplex barycentric_subdivision() const;

    const ChromaticComplex& base() const noexcept { return base_; }
    const ChromaticComplex& complex() const noexcept { return complex_; }

    /// Number of subdivision steps applied since `identity` (0 for it).
    int depth() const noexcept { return depth_; }

    /// Exact position of a subdivision vertex in |base|.
    const BaryPoint& position(VertexId v) const;

    /// Carrier of a vertex: the minimal base simplex containing it.
    Simplex carrier(VertexId v) const { return position(v).support(); }

    /// Carrier of a simplex: the minimal base simplex containing all its
    /// vertices (the union of vertex carriers).
    Simplex carrier_of(const Simplex& s) const;

    /// Positions of all vertices of a simplex, in vertex order.
    std::vector<BaryPoint> positions_of(const Simplex& s) const;

    /// Provenance of a vertex created by the last subdivision step:
    /// the pair (parent vertex p, parent simplex tau). Unset for depth 0.
    struct Provenance {
        VertexId parent_vertex;
        Simplex parent_simplex;
    };
    const Provenance& provenance(VertexId v) const;

    /// The vertex (p, tau) created by the last subdivision step. For
    /// |tau| == 1 this is the surviving parent vertex. Requires depth > 0
    /// and, for the terminated variant, tau not terminated (or singleton).
    VertexId vertex_for(VertexId parent_vertex,
                        const Simplex& parent_simplex) const;

    /// Looks up a vertex by exact position and color. O(log n) through
    /// the maintained (position, color) index — the terminating
    /// subdivision's stable-persistence pass calls this once per stable
    /// vertex per stage, and the index is what keeps heavy stages (L_t
    /// at n = 3) from going quadratic in the stage complex.
    std::optional<VertexId> find_vertex(const BaryPoint& position,
                                        Color color) const;

    /// The facet of this subdivision corresponding to one ordered partition
    /// (by *vertex* blocks) of a parent facet; see the header comment.
    /// Requires depth > 0.
    Simplex facet_for_partition(
        const Simplex& parent_facet,
        const std::vector<std::vector<VertexId>>& blocks) const;

    /// The canonical chromatic retraction Chr C -> C mapping (p, tau) to p.
    /// Requires depth > 0.
    SimplicialMap retraction_to_parent(const ChromaticComplex& parent) const;

    /// All facets of this complex whose realization contains `p`.
    std::vector<Simplex> facets_containing(const BaryPoint& p) const;

    /// Subdivision-exactness check: for every base facet F, the facets of
    /// this complex carried by F have positive volume and their volumes sum
    /// to vol(F); throws invariant_error otherwise. Exact arithmetic.
    void verify_subdivision_exactness() const;

private:
    SubdividedComplex subdivide_impl(
        const std::function<bool(const Simplex&)>& terminated,
        unsigned num_threads) const;

    ChromaticComplex base_;
    ChromaticComplex complex_;
    std::vector<BaryPoint> position_;           // indexed by VertexId
    std::vector<Provenance> provenance_;        // indexed by VertexId
    std::map<std::pair<VertexId, Simplex>, VertexId> vertex_index_;
    /// (position, color) -> smallest vertex id there; kept in lockstep
    /// with position_ so find_vertex is a map probe, not a linear scan
    /// with exact rational comparisons per candidate.
    std::map<std::pair<BaryPoint, Color>, VertexId> position_index_;
    int depth_ = 0;
};

}  // namespace gact::topo
