// Hash combining helpers shared across the library.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace gact {

/// Combine a hash value into a seed (boost::hash_combine recipe).
inline void hash_combine(std::size_t& seed, std::size_t value) noexcept {
    seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hash a contiguous range of hashable values.
template <typename T>
std::size_t hash_range(const std::vector<T>& values) noexcept {
    std::size_t seed = values.size();
    for (const T& v : values) hash_combine(seed, std::hash<T>{}(v));
    return seed;
}

}  // namespace gact
