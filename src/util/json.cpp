#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/require.h"

namespace gact::util {

Json::Json(std::uint64_t u) : type_(Type::kInt) {
    require(u <= static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max()),
            "Json: unsigned value exceeds the int64 range");
    int_ = static_cast<std::int64_t>(u);
}

bool Json::as_bool() const {
    require(is_bool(), "Json::as_bool: not a bool");
    return bool_;
}

std::int64_t Json::as_int() const {
    require(is_int(), "Json::as_int: not an integer");
    return int_;
}

double Json::as_double() const {
    require(is_number(), "Json::as_double: not a number");
    return is_int() ? static_cast<double>(int_) : double_;
}

const std::string& Json::as_string() const {
    require(is_string(), "Json::as_string: not a string");
    return string_;
}

const Json::Array& Json::as_array() const {
    require(is_array(), "Json::as_array: not an array");
    return array_;
}

const Json::Object& Json::as_object() const {
    require(is_object(), "Json::as_object: not an object");
    return object_;
}

void Json::push_back(Json value) {
    require(is_array(), "Json::push_back: not an array");
    array_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
    require(is_object(), "Json::set: not an object");
    object_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::find(const std::string& key) const noexcept {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : object_) {
        if (k == key) return &v;
    }
    return nullptr;
}

bool Json::operator==(const Json& o) const noexcept {
    if (type_ != o.type_) return false;
    switch (type_) {
        case Type::kNull:
            return true;
        case Type::kBool:
            return bool_ == o.bool_;
        case Type::kInt:
            return int_ == o.int_;
        case Type::kDouble:
            return double_ == o.double_;
        case Type::kString:
            return string_ == o.string_;
        case Type::kArray:
            return array_ == o.array_;
        case Type::kObject:
            return object_ == o.object_;
    }
    return false;
}

// ----------------------------------------------------------- serialization

namespace {

void dump_string(const std::string& s, std::string& out) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\b':
                out += "\\b";
                break;
            case '\f':
                out += "\\f";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\r':
                out += "\\r";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;  // UTF-8 bytes pass through untouched
                }
        }
    }
    out += '"';
}

void dump_value(const Json& j, std::string& out) {
    switch (j.type()) {
        case Json::Type::kNull:
            out += "null";
            return;
        case Json::Type::kBool:
            out += j.as_bool() ? "true" : "false";
            return;
        case Json::Type::kInt:
            out += std::to_string(j.as_int());
            return;
        case Json::Type::kDouble: {
            const double d = j.as_double();
            // JSON has no NaN/Inf; the engine never produces them, but a
            // serializer must not emit unparseable text either way.
            if (!std::isfinite(d)) {
                out += "null";
                return;
            }
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", d);
            out += buf;
            return;
        }
        case Json::Type::kString:
            dump_string(j.as_string(), out);
            return;
        case Json::Type::kArray: {
            out += '[';
            bool first = true;
            for (const Json& e : j.as_array()) {
                if (!first) out += ',';
                first = false;
                dump_value(e, out);
            }
            out += ']';
            return;
        }
        case Json::Type::kObject: {
            out += '{';
            bool first = true;
            for (const auto& [k, v] : j.as_object()) {
                if (!first) out += ',';
                first = false;
                dump_string(k, out);
                out += ':';
                dump_value(v, out);
            }
            out += '}';
            return;
        }
    }
}

}  // namespace

std::string Json::dump() const {
    std::string out;
    dump_value(*this, out);
    return out;
}

// ----------------------------------------------------------------- parsing

namespace {

/// Recursive-descent parser over the input bytes. Depth-limited so a
/// hostile frame of ten thousand '[' characters cannot overflow the
/// stack of a service thread.
class Parser {
public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error) {}

    std::optional<Json> run() {
        std::optional<Json> value = parse_value(0);
        if (!value.has_value()) return std::nullopt;
        skip_whitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after the JSON value");
            return std::nullopt;
        }
        return value;
    }

private:
    static constexpr int kMaxDepth = 64;

    void fail(const std::string& what) {
        if (error_ != nullptr && error_->empty()) {
            *error_ = what + " at byte " + std::to_string(pos_);
        }
    }

    void skip_whitespace() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool consume(char expect) {
        if (pos_ < text_.size() && text_[pos_] == expect) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool consume_literal(const char* literal) {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) != 0) return false;
        pos_ += len;
        return true;
    }

    std::optional<Json> parse_value(int depth) {
        if (depth > kMaxDepth) {
            fail("nesting deeper than " + std::to_string(kMaxDepth));
            return std::nullopt;
        }
        skip_whitespace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        switch (text_[pos_]) {
            case 'n':
                if (consume_literal("null")) return Json();
                break;
            case 't':
                if (consume_literal("true")) return Json(true);
                break;
            case 'f':
                if (consume_literal("false")) return Json(false);
                break;
            case '"':
                return parse_string_value();
            case '[':
                return parse_array(depth);
            case '{':
                return parse_object(depth);
            default:
                return parse_number();
        }
        fail("invalid token");
        return std::nullopt;
    }

    std::optional<Json> parse_array(int depth) {
        ++pos_;  // '['
        Json out = Json::array();
        skip_whitespace();
        if (consume(']')) return out;
        while (true) {
            std::optional<Json> element = parse_value(depth + 1);
            if (!element.has_value()) return std::nullopt;
            out.push_back(std::move(*element));
            skip_whitespace();
            if (consume(']')) return out;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return std::nullopt;
            }
        }
    }

    std::optional<Json> parse_object(int depth) {
        ++pos_;  // '{'
        Json out = Json::object();
        skip_whitespace();
        if (consume('}')) return out;
        while (true) {
            skip_whitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected a string key in object");
                return std::nullopt;
            }
            std::optional<std::string> key = parse_string_raw();
            if (!key.has_value()) return std::nullopt;
            skip_whitespace();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return std::nullopt;
            }
            std::optional<Json> value = parse_value(depth + 1);
            if (!value.has_value()) return std::nullopt;
            out.set(std::move(*key), std::move(*value));
            skip_whitespace();
            if (consume('}')) return out;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return std::nullopt;
            }
        }
    }

    std::optional<Json> parse_string_value() {
        std::optional<std::string> s = parse_string_raw();
        if (!s.has_value()) return std::nullopt;
        return Json(std::move(*s));
    }

    /// Append Unicode code point `cp` as UTF-8.
    static void append_utf8(std::uint32_t cp, std::string& out) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parse_hex4(std::uint32_t& out) {
        if (pos_ + 4 > text_.size()) return false;
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            out <<= 4;
            if (c >= '0' && c <= '9') {
                out |= static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            } else {
                return false;
            }
        }
        pos_ += 4;
        return true;
    }

    std::optional<std::string> parse_string_raw() {
        ++pos_;  // opening '"'
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return std::nullopt;
            }
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("dangling escape");
                return std::nullopt;
            }
            const char esc = text_[pos_++];
            switch (esc) {
                case '"':
                    out += '"';
                    break;
                case '\\':
                    out += '\\';
                    break;
                case '/':
                    out += '/';
                    break;
                case 'b':
                    out += '\b';
                    break;
                case 'f':
                    out += '\f';
                    break;
                case 'n':
                    out += '\n';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'u': {
                    std::uint32_t cp = 0;
                    if (!parse_hex4(cp)) {
                        fail("bad \\u escape");
                        return std::nullopt;
                    }
                    // Surrogate pair: a high surrogate must be followed
                    // by an escaped low surrogate.
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        std::uint32_t low = 0;
                        if (!consume('\\') || !consume('u') ||
                            !parse_hex4(low) || low < 0xDC00 ||
                            low > 0xDFFF) {
                            fail("bad surrogate pair");
                            return std::nullopt;
                        }
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (low - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        fail("lone low surrogate");
                        return std::nullopt;
                    }
                    append_utf8(cp, out);
                    break;
                }
                default:
                    fail("unknown escape");
                    return std::nullopt;
            }
        }
    }

    std::optional<Json> parse_number() {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        if (pos_ >= text_.size() ||
            !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
            fail("invalid number");
            return std::nullopt;
        }
        // Leading zeros are invalid JSON ("01"); a lone zero is fine.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
            fail("leading zero in number");
            return std::nullopt;
        }
        bool is_integer = true;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            is_integer = false;
            ++pos_;
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
                fail("digits required after decimal point");
                return std::nullopt;
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            is_integer = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
                fail("digits required in exponent");
                return std::nullopt;
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (is_integer) {
            errno = 0;
            char* end = nullptr;
            const long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end != nullptr && *end == '\0') {
                return Json(static_cast<std::int64_t>(v));
            }
            // Out of int64 range: fall through to double (lossy but
            // parseable, matching common JSON implementations).
        }
        errno = 0;
        char* end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("invalid number");
            return std::nullopt;
        }
        return Json(d);
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text,
                                std::string* error) {
    if (error != nullptr) error->clear();
    Parser parser(text, error);
    std::optional<Json> out = parser.run();
    if (!out.has_value() && error != nullptr && error->empty()) {
        *error = "invalid JSON";
    }
    return out;
}

}  // namespace gact::util
