// A minimal JSON value: parse, build, serialize — nothing else.
//
// The service layer (src/service/) speaks length-prefixed JSON frames
// and the engine serializes SolveReports for the CLI's --json flag; both
// need a JSON value type, and the build policy is "no new dependencies",
// so this is the smallest one that covers the wire format: null, bool,
// integer, double, string, array, object. Objects preserve insertion
// order (a vector of pairs, not a map) so serialized output is
// deterministic and diffs/tests stay readable. Integers are kept
// distinct from doubles — the counters the service reports are
// std::size_t tallies that must round-trip exactly, not through a
// double's 53-bit mantissa.
//
// Parsing is strict UTF-8-agnostic byte parsing of the JSON grammar
// (RFC 8259 structure; \uXXXX escapes are validated and passed through
// as their UTF-8 encoding). parse() never throws: a malformed payload
// from the network is an expected input, reported as an error string
// the service turns into a bad-request reply.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gact::util {

class Json {
public:
    enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

    using Array = std::vector<Json>;
    /// Insertion-ordered: serialization order is the build order, so
    /// wire output is deterministic across runs and platforms.
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() = default;  // null
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(std::int64_t i) : type_(Type::kInt), int_(i) {}
    Json(int i) : Json(static_cast<std::int64_t>(i)) {}
    // Covers std::size_t too (the same type on LP64). Values above
    // int64 max are rejected — kInt is the only integer representation.
    Json(std::uint64_t u);
    Json(double d) : type_(Type::kDouble), double_(d) {}
    Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
    Json(const char* s) : Json(std::string(s)) {}

    static Json array() {
        Json j;
        j.type_ = Type::kArray;
        return j;
    }
    static Json object() {
        Json j;
        j.type_ = Type::kObject;
        return j;
    }

    Type type() const noexcept { return type_; }
    bool is_null() const noexcept { return type_ == Type::kNull; }
    bool is_bool() const noexcept { return type_ == Type::kBool; }
    bool is_int() const noexcept { return type_ == Type::kInt; }
    bool is_double() const noexcept { return type_ == Type::kDouble; }
    /// Any JSON number (integer- or double-typed).
    bool is_number() const noexcept { return is_int() || is_double(); }
    bool is_string() const noexcept { return type_ == Type::kString; }
    bool is_array() const noexcept { return type_ == Type::kArray; }
    bool is_object() const noexcept { return type_ == Type::kObject; }

    // Typed accessors: precondition is holding that type (checked,
    // throws gact::precondition_error) — callers validate with the
    // is_*() predicates first when the value came off the wire.
    bool as_bool() const;
    std::int64_t as_int() const;    // kInt only
    double as_double() const;       // kInt or kDouble
    const std::string& as_string() const;
    const Array& as_array() const;
    const Object& as_object() const;

    /// Append to an array value.
    void push_back(Json value);
    /// Append a key (no de-duplication — callers build each key once).
    void set(std::string key, Json value);
    /// Object lookup; nullptr when absent or not an object.
    const Json* find(const std::string& key) const noexcept;

    /// Compact serialization (no whitespace), deterministic: object
    /// keys serialize in insertion order.
    std::string dump() const;

    /// Strict parse of exactly one JSON value spanning the whole input
    /// (trailing non-whitespace is an error). On failure returns
    /// nullopt and, when `error` is non-null, a one-line diagnostic
    /// with the byte offset.
    static std::optional<Json> parse(const std::string& text,
                                     std::string* error = nullptr);

    bool operator==(const Json& o) const noexcept;

private:
    Type type_ = Type::kNull;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

}  // namespace gact::util
