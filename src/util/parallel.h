// A self-scheduling parallel-for over an index range.
//
// The library's parallelism is all the same shape: N independent work
// units, workers pulling the next unit off an atomic counter so long
// units overlap short ones instead of serializing behind a static
// partition. This header is the historical spelling of that shape; it
// is now a thin alias of exec::for_index on the process-wide resident
// scheduler (src/exec/) — same semantics, no thread spawn-and-join per
// call. New call sites that want to name their pool (tests, the solve
// server) should call exec::for_index directly.
//
// The pinned contract (tests/parallel_test.cpp) is unchanged:
//  * num_threads <= 1 (or n < 2) runs the loop inline, byte-for-byte
//    the sequential behavior;
//  * each worker slot records at most ONE exception — its first — and
//    raises an advisory stop flag (claimed units may finish, unclaimed
//    units never start);
//  * after the join, the LOWEST-slot exception is rethrown as the one
//    representative failure.
#pragma once

#include <cstddef>
#include <utility>

#include "exec/for_index.h"
#include "exec/scheduler.h"

namespace gact {

/// Run `fn(i)` for every i in [0, n), at most `num_threads` units in
/// flight on the shared scheduler. `fn` must be safe to call
/// concurrently on distinct indices; deterministic results are the
/// caller's business — write into preallocated per-index slots and
/// merge in index order.
template <typename Fn>
void parallel_for_index(std::size_t n, unsigned num_threads, Fn&& fn) {
    exec::for_index(exec::Scheduler::shared(), n, num_threads,
                    std::forward<Fn>(fn));
}

}  // namespace gact
