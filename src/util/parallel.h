// A self-scheduling parallel-for over an index range.
//
// The library's parallelism is all the same shape: N independent work
// units, workers pulling the next unit off an atomic counter so long
// units overlap short ones instead of serializing behind a static
// partition (the Engine::solve_batch shard pool introduced the pattern;
// the terminating-subdivision sharding reuses it per facet). This header
// is that shape, once: deterministic results are the caller's business —
// write into preallocated per-index slots and merge in index order.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace gact {

/// Run `fn(i)` for every i in [0, n), sharded across `num_threads`
/// workers by a self-scheduling atomic index. With num_threads <= 1 (or
/// fewer than two units) the loop runs inline — byte-for-byte the
/// sequential behavior, no threads spawned. `fn` must be safe to call
/// concurrently on distinct indices.
///
/// Exception semantics (pinned by tests/parallel_test.cpp): each worker
/// records at most ONE exception — its first — and sets the stop flag,
/// so the remaining workers finish their in-flight unit and take no new
/// ones (units already claimed may still run to completion; units never
/// claimed never run). After the join, the recorded exception of the
/// LOWEST-numbered worker that threw is rethrown; any others are
/// dropped. "Lowest worker index" is deliberate and deterministic given
/// which workers threw — it is NOT "first thrown in time": wall-clock
/// order of concurrent throws is meaningless, and callers must treat
/// the propagated exception as "one representative failure", not "the
/// root cause".
///
/// Memory ordering: both `stop` and `next` are relaxed on purpose. The
/// stop flag is advisory (a worker observing it late merely runs one
/// more unit — the same unit-level uncertainty self-scheduling has
/// anyway), and no data flows through either atomic: every cross-thread
/// result — the errors array and whatever `fn` wrote — is published by
/// the thread join, which fully synchronizes before anything is read.
template <typename Fn>
void parallel_for_index(std::size_t n, unsigned num_threads, Fn&& fn) {
    if (num_threads <= 1 || n < 2) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, n));
    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            try {
                while (!stop.load(std::memory_order_relaxed)) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= n) break;
                    fn(i);
                }
            } catch (...) {
                // One slot per worker: a worker that threw stops
                // pulling units, so this assignment can happen at most
                // once per slot.
                errors[w] = std::current_exception();
                stop.store(true, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread& t : pool) t.join();
    // Deterministic representative: the lowest-indexed worker's
    // exception (see the header comment), scanned after the join has
    // published every slot.
    for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
    }
}

}  // namespace gact
