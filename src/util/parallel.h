// A self-scheduling parallel-for over an index range.
//
// The library's parallelism is all the same shape: N independent work
// units, workers pulling the next unit off an atomic counter so long
// units overlap short ones instead of serializing behind a static
// partition (the Engine::solve_batch shard pool introduced the pattern;
// the terminating-subdivision sharding reuses it per facet). This header
// is that shape, once: deterministic results are the caller's business —
// write into preallocated per-index slots and merge in index order.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace gact {

/// Run `fn(i)` for every i in [0, n), sharded across `num_threads`
/// workers by a self-scheduling atomic index. With num_threads <= 1 (or
/// fewer than two units) the loop runs inline — byte-for-byte the
/// sequential behavior, no threads spawned. `fn` must be safe to call
/// concurrently on distinct indices; the first exception thrown by any
/// worker stops the pool and is rethrown to the caller.
template <typename Fn>
void parallel_for_index(std::size_t n, unsigned num_threads, Fn&& fn) {
    if (num_threads <= 1 || n < 2) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, n));
    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            try {
                while (!stop.load(std::memory_order_relaxed)) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= n) break;
                    fn(i);
                }
            } catch (...) {
                errors[w] = std::current_exception();
                stop.store(true, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread& t : pool) t.join();
    for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
    }
}

}  // namespace gact
