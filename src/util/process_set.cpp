#include "util/process_set.h"

#include <algorithm>
#include <ostream>

namespace gact {

std::string ProcessSet::to_string() const {
    std::string out = "{";
    bool first = true;
    for (ProcessId p : members()) {
        if (!first) out += ",";
        out += std::to_string(p);
        first = false;
    }
    out += "}";
    return out;
}

std::ostream& operator<<(std::ostream& os, ProcessSet s) {
    return os << s.to_string();
}

std::vector<ProcessSet> nonempty_subsets(ProcessSet universe) {
    std::vector<ProcessSet> out;
    const std::uint32_t u = universe.bits();
    // Standard subset-enumeration trick: step through submasks of u.
    for (std::uint32_t sub = u; sub != 0; sub = (sub - 1) & u) {
        out.push_back(ProcessSet::from_bits(sub));
    }
    // The loop visits submasks in decreasing order; reverse for stability.
    std::reverse(out.begin(), out.end());
    return out;
}

}  // namespace gact
