// Sets of process identifiers, represented as bitmasks.
//
// The paper works with n + 1 processes p_0 .. p_n; every model definition
// (participating sets, fast/slow sets, adversaries) is phrased in terms of
// subsets of {0, .., n}. A 32-bit mask supports up to 32 processes, far
// beyond what any construction in this library materializes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/require.h"

namespace gact {

/// Process identifier; process i is the process with color i.
using ProcessId = std::uint32_t;

/// Maximum number of processes supported by ProcessSet.
inline constexpr ProcessId kMaxProcesses = 32;

/// An immutable-style value type for subsets of {0, .., kMaxProcesses-1}.
class ProcessSet {
public:
    constexpr ProcessSet() noexcept : bits_(0) {}

    /// The singleton {p}.
    static ProcessSet single(ProcessId p) {
        require(p < kMaxProcesses, "ProcessSet: process id out of range");
        ProcessSet s;
        s.bits_ = std::uint32_t{1} << p;
        return s;
    }

    /// The full set {0, .., count-1}.
    static ProcessSet full(std::uint32_t count) {
        require(count <= kMaxProcesses, "ProcessSet: too many processes");
        ProcessSet s;
        s.bits_ = count == kMaxProcesses ? ~std::uint32_t{0}
                                         : (std::uint32_t{1} << count) - 1;
        return s;
    }

    /// Build from an explicit list of ids.
    static ProcessSet of(std::initializer_list<ProcessId> ids) {
        ProcessSet s;
        for (ProcessId p : ids) s = s.with(p);
        return s;
    }

    /// Build from a raw bitmask.
    static constexpr ProcessSet from_bits(std::uint32_t bits) noexcept {
        ProcessSet s;
        s.bits_ = bits;
        return s;
    }

    std::uint32_t bits() const noexcept { return bits_; }
    bool empty() const noexcept { return bits_ == 0; }
    std::uint32_t size() const noexcept { return __builtin_popcount(bits_); }

    bool contains(ProcessId p) const noexcept {
        return p < kMaxProcesses && (bits_ & (std::uint32_t{1} << p)) != 0;
    }
    bool contains_all(ProcessSet other) const noexcept {
        return (bits_ & other.bits_) == other.bits_;
    }
    bool intersects(ProcessSet other) const noexcept {
        return (bits_ & other.bits_) != 0;
    }

    ProcessSet with(ProcessId p) const {
        require(p < kMaxProcesses, "ProcessSet: process id out of range");
        return from_bits(bits_ | (std::uint32_t{1} << p));
    }
    ProcessSet without(ProcessId p) const noexcept {
        return from_bits(bits_ & ~(std::uint32_t{1} << p));
    }

    friend ProcessSet operator|(ProcessSet a, ProcessSet b) noexcept {
        return from_bits(a.bits_ | b.bits_);
    }
    friend ProcessSet operator&(ProcessSet a, ProcessSet b) noexcept {
        return from_bits(a.bits_ & b.bits_);
    }
    /// Set difference a \ b.
    friend ProcessSet operator-(ProcessSet a, ProcessSet b) noexcept {
        return from_bits(a.bits_ & ~b.bits_);
    }

    friend bool operator==(ProcessSet a, ProcessSet b) noexcept = default;

    /// Total order (by bitmask) so sets can key ordered containers.
    friend bool operator<(ProcessSet a, ProcessSet b) noexcept {
        return a.bits_ < b.bits_;
    }

    /// The lowest process id in the set. Requires non-empty.
    ProcessId min() const {
        require(!empty(), "ProcessSet::min on empty set");
        return static_cast<ProcessId>(__builtin_ctz(bits_));
    }

    /// Members in increasing order.
    std::vector<ProcessId> members() const {
        std::vector<ProcessId> out;
        out.reserve(size());
        for (std::uint32_t b = bits_; b != 0; b &= b - 1) {
            out.push_back(static_cast<ProcessId>(__builtin_ctz(b)));
        }
        return out;
    }

    /// "{0,2,3}".
    std::string to_string() const;

private:
    std::uint32_t bits_;
};

std::ostream& operator<<(std::ostream& os, ProcessSet s);

/// Enumerate all non-empty subsets of `universe`, in increasing bitmask order.
std::vector<ProcessSet> nonempty_subsets(ProcessSet universe);

}  // namespace gact

template <>
struct std::hash<gact::ProcessSet> {
    std::size_t operator()(gact::ProcessSet s) const noexcept {
        return std::hash<std::uint32_t>{}(s.bits());
    }
};
