#include "util/rational.h"

#include <numeric>
#include <ostream>

#include "util/require.h"

namespace gact {

namespace {

using int128 = __int128;

constexpr int128 kMin64 = std::numeric_limits<std::int64_t>::min();
constexpr int128 kMax64 = std::numeric_limits<std::int64_t>::max();

std::int64_t narrow(int128 v, const char* context) {
    if (v < kMin64 || v > kMax64) {
        throw overflow_error(std::string("Rational overflow in ") + context);
    }
    return static_cast<std::int64_t>(v);
}

int128 abs128(int128 v) { return v < 0 ? -v : v; }

int128 gcd128(int128 a, int128 b) {
    a = abs128(a);
    b = abs128(b);
    while (b != 0) {
        const int128 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
    require(den != 0, "Rational: zero denominator");
    int128 n = num;
    int128 d = den;
    if (d < 0) {
        n = -n;
        d = -d;
    }
    if (n == 0) {
        d = 1;
    } else {
        const int128 g = gcd128(n, d);
        n /= g;
        d /= g;
    }
    num_ = narrow(n, "constructor");
    den_ = narrow(d, "constructor");
}

Rational Rational::operator-() const {
    Rational r;
    r.num_ = narrow(-static_cast<int128>(num_), "negation");
    r.den_ = den_;
    return r;
}

Rational& Rational::operator+=(const Rational& other) {
    const int128 n = static_cast<int128>(num_) * other.den_ +
                     static_cast<int128>(other.num_) * den_;
    const int128 d = static_cast<int128>(den_) * other.den_;
    const int128 g = n == 0 ? d : gcd128(n, d);
    num_ = narrow(n / g, "addition");
    den_ = narrow(d / g, "addition");
    return *this;
}

Rational& Rational::operator-=(const Rational& other) {
    return *this += -other;
}

Rational& Rational::operator*=(const Rational& other) {
    // Cross-reduce before multiplying to keep intermediates small.
    const int128 g1 = gcd128(num_, other.den_);
    const int128 g2 = gcd128(other.num_, den_);
    const int128 n = (static_cast<int128>(num_) / g1) * (other.num_ / g2);
    const int128 d = (static_cast<int128>(den_) / g2) * (other.den_ / g1);
    num_ = narrow(n, "multiplication");
    den_ = narrow(d, "multiplication");
    return *this;
}

Rational& Rational::operator/=(const Rational& other) {
    require(!other.is_zero(), "Rational: division by zero");
    Rational inverse;
    // Build the inverse without renormalizing through the constructor twice.
    if (other.num_ < 0) {
        inverse.num_ = narrow(-static_cast<int128>(other.den_), "division");
        inverse.den_ = narrow(-static_cast<int128>(other.num_), "division");
    } else {
        inverse.num_ = other.den_;
        inverse.den_ = other.num_;
    }
    return *this *= inverse;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
    const int128 lhs = static_cast<int128>(a.num_) * b.den_;
    const int128 rhs = static_cast<int128>(b.num_) * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
}

Rational Rational::abs() const {
    return is_negative() ? -*this : *this;
}

std::string Rational::to_string() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
    return os << r.to_string();
}

std::size_t hash_value(const Rational& r) noexcept {
    const std::size_t h1 = std::hash<std::int64_t>{}(r.num());
    const std::size_t h2 = std::hash<std::int64_t>{}(r.den());
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
}

}  // namespace gact
