// Exact rational arithmetic for geometric realizations of chromatic
// subdivisions.
//
// Vertex coordinates in |Chr^k s| are rationals whose denominators are
// products of odd numbers (2j - 1) with j <= n + 1 (paper, Section 3.2).
// For the subdivision depths this library materializes, numerators and
// denominators fit comfortably in 64 bits; all operations are computed in
// 128-bit intermediates and checked, so an overflow is reported as
// gact::overflow_error instead of silent wraparound.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>

namespace gact {

/// An exact rational number with checked 64-bit numerator/denominator.
///
/// Invariants: the denominator is strictly positive and gcd(num, den) == 1.
class Rational {
public:
    /// Zero.
    constexpr Rational() noexcept : num_(0), den_(1) {}

    /// The integer n.
    constexpr Rational(std::int64_t n) noexcept : num_(n), den_(1) {}

    /// num/den, reduced to lowest terms. Requires den != 0.
    Rational(std::int64_t num, std::int64_t den);

    std::int64_t num() const noexcept { return num_; }
    std::int64_t den() const noexcept { return den_; }

    bool is_zero() const noexcept { return num_ == 0; }
    bool is_negative() const noexcept { return num_ < 0; }
    bool is_integer() const noexcept { return den_ == 1; }

    Rational operator-() const;

    Rational& operator+=(const Rational& other);
    Rational& operator-=(const Rational& other);
    Rational& operator*=(const Rational& other);
    /// Requires other != 0.
    Rational& operator/=(const Rational& other);

    friend Rational operator+(Rational a, const Rational& b) { return a += b; }
    friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
    friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
    friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

    friend bool operator==(const Rational& a, const Rational& b) noexcept {
        return a.num_ == b.num_ && a.den_ == b.den_;
    }
    friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

    /// Absolute value.
    Rational abs() const;

    /// Lossy conversion for diagnostics and heuristics only.
    double to_double() const noexcept {
        return static_cast<double>(num_) / static_cast<double>(den_);
    }

    /// "num/den" (or just "num" for integers).
    std::string to_string() const;

private:
    std::int64_t num_;
    std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// FNV-style hash usable in unordered containers.
std::size_t hash_value(const Rational& r) noexcept;

}  // namespace gact

template <>
struct std::hash<gact::Rational> {
    std::size_t operator()(const gact::Rational& r) const noexcept {
        return gact::hash_value(r);
    }
};
