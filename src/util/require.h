// Checked preconditions and invariants for the gact library.
//
// Following the C++ Core Guidelines (I.6, E.12) we report contract
// violations by throwing: callers of this library are research harnesses
// and test drivers that want a diagnosable failure, not process death.
#pragma once

#include <stdexcept>
#include <string>

namespace gact {

/// Thrown when a caller violates a documented precondition.
class precondition_error : public std::invalid_argument {
public:
    using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails; indicates a library bug.
class invariant_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Thrown when an arithmetic operation would overflow its representation.
class overflow_error : public std::overflow_error {
public:
    using std::overflow_error::overflow_error;
};

/// Check a caller-facing precondition.
inline void require(bool condition, const std::string& what) {
    if (!condition) throw precondition_error(what);
}

/// Check an internal invariant.
inline void ensure(bool condition, const std::string& what) {
    if (!condition) throw invariant_error(what);
}

}  // namespace gact
