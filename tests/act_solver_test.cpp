#include "core/act_solver.h"

#include "tasks/standard_tasks.h"

#include <gtest/gtest.h>

namespace gact::core {
namespace {

/// The historical solve_act defaults (deprecated shim), spelled through
/// the primary entry point.
ActResult search_wait_free(const tasks::Task& task, int max_k) {
    return run_act_search(task, max_k, SolverConfig::fast(2000000));
}

TEST(ActSolver, ImmediateSnapshotTaskSolvableAtDepthOne) {
    const tasks::AffineTask is = tasks::immediate_snapshot_task(2);
    const ActResult result = search_wait_free(is.task, 2);
    ASSERT_TRUE(result.solvable);
    EXPECT_EQ(result.witness_depth, 1);
    // The identity on Chr s is a witness; whatever the search found must
    // pass the full Corollary 7.1 check (done inside the solver), and the
    // k = 0 attempt must have been exhausted.
    EXPECT_GE(result.backtracks_per_depth.size(), 2u);
}

TEST(ActSolver, ChrSquaredTaskSolvableAtDepthTwo) {
    // L_n for t = n is all of Chr^2 s: wait-free solvable at k = 2 (and
    // not before: corners of s are not adjacent in Chr or Chr^2).
    const tasks::AffineTask ln = tasks::t_resilience_task(1, 1);
    const ActResult result = search_wait_free(ln.task, 3);
    ASSERT_TRUE(result.solvable);
    EXPECT_EQ(result.witness_depth, 2);
}

TEST(ActSolver, TotalOrderNotWaitFreeSolvable) {
    // L_ord embeds leader election: no chromatic carrier-preserving map
    // from any Chr^k of the edge onto the two disjoint end edges.
    const tasks::AffineTask lord = tasks::total_order_task(1);
    const ActResult result = search_wait_free(lord.task, 3);
    EXPECT_FALSE(result.solvable);
    EXPECT_TRUE(result.exhausted_all_depths);
}

TEST(ActSolver, BinaryConsensusTwoProcessesUnsolvable) {
    // FLP for two processes: every depth exhausts without a witness.
    const tasks::Task consensus = tasks::consensus_task(2, 2);
    const ActResult result = search_wait_free(consensus, 3);
    EXPECT_FALSE(result.solvable);
    EXPECT_TRUE(result.exhausted_all_depths);
    EXPECT_EQ(result.backtracks_per_depth.size(), 4u);
}

TEST(ActSolver, SoloConsensusTrivial) {
    // One process decides its own input at depth 0.
    const tasks::Task consensus = tasks::consensus_task(1, 3);
    const ActResult result = search_wait_free(consensus, 1);
    ASSERT_TRUE(result.solvable);
    EXPECT_EQ(result.witness_depth, 0);
    // The witness is the identity on the input vertices.
    for (std::uint32_t v = 0; v < 3; ++v) {
        EXPECT_EQ(result.eta->apply(topo::VertexId{v}), v);
    }
}

TEST(ActSolver, TrivialSetAgreementSolvableAtDepthZero) {
    // (n+1)-set agreement: deciding your own input is a witness at k = 0.
    const tasks::Task trivial = tasks::k_set_agreement_task(2, 3, 2);
    const ActResult result = search_wait_free(trivial, 1);
    ASSERT_TRUE(result.solvable);
    EXPECT_EQ(result.witness_depth, 0);
}

TEST(ActSolver, WitnessIsACorollary71Map) {
    const tasks::AffineTask is = tasks::immediate_snapshot_task(1);
    const ActResult result = search_wait_free(is.task, 2);
    ASSERT_TRUE(result.solvable);
    const ChromaticMapProblem problem = act_problem(is.task, result.domain);
    EXPECT_EQ(check_chromatic_map(problem, *result.eta), "");
}

TEST(ActSolver, InvalidTaskRejected) {
    tasks::Task broken = tasks::consensus_task(2, 2);
    broken.outputs = topo::ChromaticComplex::standard_simplex(0);
    EXPECT_THROW(search_wait_free(broken, 1), precondition_error);
}

// The deprecated shim must stay behaviorally identical to the primary
// entry point while it exists.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ActSolver, DeprecatedShimMatchesPrimaryEntryPoint) {
    const tasks::AffineTask is = tasks::immediate_snapshot_task(2);
    const ActResult via_shim = solve_act(is.task, 2);
    const ActResult primary =
        run_act_search(is.task, 2, SolverConfig::fast(2000000));
    EXPECT_EQ(via_shim.solvable, primary.solvable);
    EXPECT_EQ(via_shim.witness_depth, primary.witness_depth);
    EXPECT_EQ(via_shim.backtracks_per_depth, primary.backtracks_per_depth);
    ASSERT_TRUE(via_shim.eta.has_value());
    EXPECT_EQ(via_shim.eta->vertex_map(), primary.eta->vertex_map());
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace gact::core
