#include "topology/adjacency_index.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace gact::topo {
namespace {

TEST(AdjacencyIndex, EmptyComplex) {
    const AdjacencyIndex index{SimplicialComplex{}};
    EXPECT_TRUE(index.incident_simplices(0).empty());
    EXPECT_TRUE(index.neighbors(0).empty());
    EXPECT_EQ(index.degree(0), 0u);
}

TEST(AdjacencyIndex, TriangleIncidence) {
    const SimplicialComplex triangle =
        SimplicialComplex::from_facets({Simplex{0, 1, 2}});
    const AdjacencyIndex index(triangle);
    // Vertex 0 lies in the triangle and its two incident edges.
    EXPECT_EQ(index.incident_simplices(0).size(), 3u);
    EXPECT_EQ(index.neighbors(0), (std::vector<VertexId>{1, 2}));
    EXPECT_EQ(index.degree(1), 2u);
    // 0-simplices are not constraints, so they are not indexed.
    for (const Simplex* sigma : index.incident_simplices(0)) {
        EXPECT_GE(sigma->dimension(), 1);
        EXPECT_TRUE(sigma->contains(0));
    }
}

TEST(AdjacencyIndex, IsolatedVertexHasNoIncidence) {
    SimplicialComplex cx =
        SimplicialComplex::from_facets({Simplex{0, 1}, Simplex{5}});
    const AdjacencyIndex index(cx);
    EXPECT_TRUE(index.incident_simplices(5).empty());
    EXPECT_EQ(index.degree(5), 0u);
    EXPECT_EQ(index.neighbors(0), (std::vector<VertexId>{1}));
}

TEST(AdjacencyIndex, NeighborsAreSortedAndUnique) {
    // Two facets sharing vertex 1: neighbor lists must dedupe shared
    // edges and come back sorted.
    const SimplicialComplex cx = SimplicialComplex::from_facets(
        {Simplex{0, 1, 2}, Simplex{1, 2, 3}});
    const AdjacencyIndex index(cx);
    EXPECT_EQ(index.neighbors(1), (std::vector<VertexId>{0, 2, 3}));
    EXPECT_EQ(index.neighbors(2), (std::vector<VertexId>{0, 1, 3}));
    const auto& inc = index.incident_simplices(1);
    // Edges {0,1},{1,2},{1,3} plus triangles {0,1,2},{1,2,3}.
    EXPECT_EQ(inc.size(), 5u);
}

TEST(AdjacencyIndex, NeighborsOnlyModeSkipsSimplexLists) {
    const SimplicialComplex triangle =
        SimplicialComplex::from_facets({Simplex{0, 1, 2}});
    const AdjacencyIndex index(triangle, /*index_simplices=*/false);
    EXPECT_TRUE(index.incident_simplices(0).empty());
    EXPECT_EQ(index.neighbors(0), (std::vector<VertexId>{1, 2}));
    EXPECT_EQ(index.degree(2), 2u);
}

}  // namespace
}  // namespace gact::topo
