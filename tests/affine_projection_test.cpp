#include "iis/affine_projection.h"

#include <gtest/gtest.h>

#include "core/lt_pipeline.h"
#include "iis/projection.h"
#include "iis/run_enumeration.h"

// This suite intentionally exercises the deprecated build_lt_pipeline
// shim (its contract is still covered while it exists).
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"


namespace gact::iis {
namespace {

OrderedPartition conc(std::initializer_list<ProcessId> procs) {
    return OrderedPartition::concurrent(ProcessSet::of(procs));
}

OrderedPartition seq(std::initializer_list<ProcessId> order) {
    return OrderedPartition::sequential(std::vector<ProcessId>(order));
}

TEST(AffineProjection, SoloRunProjectsToItsCorner) {
    const iis::Run solo = iis::Run::forever(3, conc({1}));
    EXPECT_EQ(affine_projection(solo), topo::BaryPoint::vertex(1));
}

TEST(AffineProjection, LockstepRunProjectsToBarycenter) {
    const iis::Run lockstep = iis::Run::forever(3, conc({0, 1, 2}));
    EXPECT_EQ(affine_projection(lockstep),
              topo::BaryPoint::barycenter(topo::Simplex{0, 1, 2}));
}

TEST(AffineProjection, LeaderAheadProjectsToLeaderCorner) {
    // fast = {0}: the projection ignores the followers entirely.
    const iis::Run r = iis::Run::forever(
        3, OrderedPartition({ProcessSet::of({0}), ProcessSet::of({1, 2})}));
    EXPECT_EQ(affine_projection(r), topo::BaryPoint::vertex(0));
}

TEST(AffineProjection, StationaryWeightsArePositiveAndSumToOne) {
    const iis::Run r(3, {seq({2, 0, 1})}, {seq({0, 1, 2}), seq({1, 0, 2})});
    Rational total;
    for (const auto& [p, w] : tail_stationary_distribution(r)) {
        EXPECT_FALSE(w.is_negative());
        EXPECT_FALSE(w.is_zero());  // irreducible chain: full support
        total += w;
    }
    EXPECT_EQ(total, Rational(1));
}

TEST(AffineProjection, ProjectionLiesInEverySigmaK) {
    // pi(r) is the limit of the nested simplex chain, so it lies in the
    // hull of the round-k views for every k.
    const std::vector<topo::VertexId> inputs = {0, 1, 2};
    const std::vector<iis::Run> samples = {
        iis::Run::forever(3, conc({0, 1, 2})),
        iis::Run::forever(3, seq({1, 2, 0})),
        iis::Run(3, {seq({2, 0, 1})}, {conc({0, 1})}),
        iis::Run(3, {}, {seq({0, 1}), seq({1, 0})}),
    };
    for (const iis::Run& r : samples) {
        const topo::BaryPoint pi = affine_projection(r);
        for (std::size_t k = 1; k <= 5; ++k) {
            const auto points = run_simplex_positions(r, k, inputs);
            EXPECT_TRUE(topo::point_in_simplex(pi, points))
                << r.to_string() << " at round " << k;
        }
    }
}

TEST(AffineProjection, InvariantUnderMinimal) {
    // The paper identifies pi(r) with minimal(r): both have the same
    // projection.
    for (const iis::Run& r : enumerate_stabilized_runs(3, 1)) {
        EXPECT_EQ(affine_projection(r), affine_projection(r.minimal()))
            << r.to_string();
    }
}

TEST(AffineProjection, AlternatingPairConvergesInsideTheEdge) {
    // Period-2 alternation between ({0}|{1}) and ({1}|{0}): both
    // processes are fast; the limit is an interior point of edge {0,1}.
    const iis::Run r(2, {}, {seq({0, 1}), seq({1, 0})});
    EXPECT_EQ(r.fast(), ProcessSet::full(2));
    const topo::BaryPoint pi = affine_projection(r);
    EXPECT_EQ(pi.support(), topo::Simplex({0, 1}));
    // Process 0 moved first in the cycle, so the limit leans toward 0's
    // corner being seen more: check it is a genuine mix.
    EXPECT_GT(pi.coord(0), Rational(0));
    EXPECT_GT(pi.coord(1), Rational(0));
}

TEST(AffineProjection, LandingSimplicesContainTheProjection) {
    // Cross-module: the L_1 pipeline's landing simplex of a run contains
    // pi(r) — landing localizes the limit point.
    const core::LtPipeline p = core::build_lt_pipeline(2, 1, 2);
    const iis::TResilientModel res1(3, 1);
    std::size_t checked = 0;
    for (const iis::Run& r :
         filter_by_model(enumerate_stabilized_runs(3, 0), res1)) {
        const auto landing = core::find_landing(p.tsub, r, 8);
        ASSERT_TRUE(landing.has_value()) << r.to_string();
        EXPECT_TRUE(p.tsub.stable_simplex_contains(landing->stable_facet,
                                                   {affine_projection(r)}))
            << r.to_string();
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

TEST(AffineProjection, GeometricModelMembership) {
    // The geometric model pi^{-1}(|L_1|): runs converging into the
    // figure's central region.
    const core::LtPipeline p = core::build_lt_pipeline(2, 1, 1);
    const GeometricModel into_l1(
        "pi^-1(L_1)", [&p](const topo::BaryPoint& x) {
            return core::point_in_l(p.task, x);
        });
    EXPECT_TRUE(into_l1.contains(iis::Run::forever(3, conc({0, 1, 2}))));
    EXPECT_FALSE(into_l1.contains(iis::Run::forever(3, conc({0}))));
    // Every Res_1 run projects into the complement of the corners; most
    // land in L_1 or its collar.
    EXPECT_EQ(into_l1.name(), "pi^-1(L_1)");
}

TEST(AffineProjection, GeometricVsAdversarialResilience) {
    // Res_1 is geometric (Section 5): its runs are exactly those whose
    // projection avoids the corner cells. We check one inclusion on the
    // enumeration: Res_1 runs never project to a corner.
    const iis::TResilientModel res1(3, 1);
    for (const iis::Run& r :
         filter_by_model(enumerate_stabilized_runs(3, 1), res1)) {
        const topo::BaryPoint pi = affine_projection(r);
        EXPECT_GE(pi.support().dimension(), 1) << r.to_string();
    }
}

}  // namespace
}  // namespace gact::iis
